//! N-Body molecular-dynamics kernel (§4.1.4).
//!
//! Simulates liquid-argon atoms under the Lennard-Jones pair potential
//! (Eq. 13) in reduced units (`σ = ε = m = 1`), integrating with velocity
//! Verlet. The significance analysis confirms domain wisdom: an atom's
//! influence on another falls off steeply with distance (the `r⁻⁷` force
//! tail). The tasked version partitions the box into regions; for each
//! atom one task per region accumulates that region's force
//! contribution, with significance decreasing in the atom–region
//! distance. The approximate task body collapses the region to its
//! centre of mass (one interaction instead of many) — cheap, and
//! asymptotically exact for far regions.

// Index loops below walk several parallel arrays at once; zipped
// iterators would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scorpio_core::{Analysis, AnalysisError, Ctx, Report};
use scorpio_interval::Interval;
use scorpio_runtime::perforation::Perforator;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Atoms per box edge (total atoms = `edge³`).
    pub edge: usize,
    /// Lattice spacing in reduced units (≥ 2^(1/6) ≈ 1.122 keeps the
    /// initial state near the potential minimum).
    pub spacing: f64,
    /// Regions per box edge (total regions = `regions³`).
    pub regions: usize,
    /// Verlet time step.
    pub dt: f64,
    /// Number of integration steps.
    pub steps: usize,
    /// RNG seed for the initial thermal velocities.
    pub seed: u64,
}

impl Params {
    /// A small, fast configuration for tests.
    pub fn small() -> Params {
        Params {
            edge: 5,
            spacing: 1.2,
            regions: 3,
            dt: 0.002,
            steps: 4,
            seed: 42,
        }
    }

    /// A coarse-grained configuration (few regions, many atoms per
    /// region) where compute dominates task overhead — used by the
    /// energy-reduction tests.
    pub fn coarse() -> Params {
        Params {
            edge: 8,
            spacing: 1.2,
            regions: 2,
            dt: 0.002,
            steps: 2,
            seed: 42,
        }
    }

    /// The evaluation configuration for the Fig. 7 harness.
    pub fn evaluation() -> Params {
        Params {
            edge: 12,
            spacing: 1.2,
            regions: 3,
            dt: 0.002,
            steps: 4,
            seed: 7,
        }
    }

    /// Total number of atoms.
    pub fn atoms(&self) -> usize {
        self.edge * self.edge * self.edge
    }

    /// Box edge length.
    pub fn box_len(&self) -> f64 {
        self.edge as f64 * self.spacing
    }
}

/// Particle state: positions and velocities, structure-of-arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Positions, `[x, y, z]` per atom.
    pub pos: Vec<[f64; 3]>,
    /// Velocities, `[vx, vy, vz]` per atom.
    pub vel: Vec<[f64; 3]>,
}

impl State {
    /// Flattens positions and velocities into one signal for the
    /// relative-error quality metric.
    pub fn flatten(&self) -> Vec<f64> {
        self.pos
            .iter()
            .chain(self.vel.iter())
            .flat_map(|v| v.iter().copied())
            .collect()
    }
}

/// Builds the initial state: a cubic lattice with small random thermal
/// velocities (zero net momentum).
pub fn initial_state(params: &Params) -> State {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.atoms();
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    for i in 0..params.edge {
        for j in 0..params.edge {
            for k in 0..params.edge {
                pos.push([
                    (i as f64 + 0.5) * params.spacing,
                    (j as f64 + 0.5) * params.spacing,
                    (k as f64 + 0.5) * params.spacing,
                ]);
                vel.push([
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                ]);
            }
        }
    }
    // Remove net momentum.
    let mut mean = [0.0; 3];
    for v in &vel {
        for d in 0..3 {
            mean[d] += v[d];
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    for v in &mut vel {
        for d in 0..3 {
            v[d] -= mean[d];
        }
    }
    State { pos, vel }
}

/// Lennard-Jones pair potential `V(r) = 4(r⁻¹² − r⁻⁶)` (Eq. 13 in
/// reduced units).
#[inline]
pub fn lj_potential(r: f64) -> f64 {
    let inv6 = r.powi(-6);
    4.0 * (inv6 * inv6 - inv6)
}

/// Physical observables of a [`State`] — the quantities a molecular-
/// dynamics practitioner checks to trust a simulation (and the basis of
/// the energy-conservation tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observables {
    /// Total kinetic energy `Σ ½m v²`.
    pub kinetic: f64,
    /// Total Lennard-Jones potential energy (all pairs).
    pub potential: f64,
    /// Instantaneous temperature in reduced units, `2·KE / (3N)`.
    pub temperature: f64,
    /// Net momentum magnitude (should stay ≈ 0).
    pub momentum: f64,
}

impl Observables {
    /// Total energy `KE + PE`.
    pub fn total_energy(&self) -> f64 {
        self.kinetic + self.potential
    }
}

/// Computes the observables of a state.
pub fn observables(state: &State) -> Observables {
    let n = state.pos.len();
    let mut kinetic = 0.0;
    let mut p = [0.0f64; 3];
    for v in &state.vel {
        kinetic += 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
        for d in 0..3 {
            p[d] += v[d];
        }
    }
    let mut potential = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let r = (0..3)
                .map(|k| (state.pos[i][k] - state.pos[j][k]).powi(2))
                .sum::<f64>()
                .sqrt();
            potential += lj_potential(r);
        }
    }
    Observables {
        kinetic,
        potential,
        temperature: 2.0 * kinetic / (3.0 * n as f64),
        momentum: (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt(),
    }
}

/// Lennard-Jones force exerted on an atom at `a` by an atom at `b`
/// (Eq. 13 differentiated): `f = 24(2r⁻¹⁴ − r⁻⁸)·(a − b)`.
#[inline]
pub fn lj_force(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    let r2 = dx * dx + dy * dy + dz * dz;
    if r2 < 1e-12 {
        return [0.0; 3];
    }
    let inv2 = 1.0 / r2;
    let inv6 = inv2 * inv2 * inv2;
    let scale = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
    [scale * dx, scale * dy, scale * dz]
}

/// All-pairs force computation (the paper's original loop structure).
fn forces_all_pairs(pos: &[[f64; 3]]) -> Vec<[f64; 3]> {
    let n = pos.len();
    let mut f = vec![[0.0; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let fij = lj_force(pos[i], pos[j]);
                for d in 0..3 {
                    f[i][d] += fij[d];
                }
            }
        }
    }
    f
}

/// A force routine: positions in, per-atom forces out.
type ForceFn<'a> = dyn FnMut(&[[f64; 3]]) -> Vec<[f64; 3]> + 'a;

/// One velocity-Verlet step given a force routine.
fn verlet_step(
    state: &mut State,
    dt: f64,
    forces: &mut ForceFn<'_>,
    f_old: &mut Vec<[f64; 3]>,
) {
    let n = state.pos.len();
    for i in 0..n {
        for d in 0..3 {
            state.pos[i][d] += dt * state.vel[i][d] + 0.5 * dt * dt * f_old[i][d];
        }
    }
    let f_new = forces(&state.pos);
    for i in 0..n {
        for d in 0..3 {
            state.vel[i][d] += 0.5 * dt * (f_old[i][d] + f_new[i][d]);
        }
    }
    *f_old = f_new;
}

/// Sequential accurate simulation.
pub fn reference(params: &Params) -> State {
    let _span = scorpio_obs::span("kernel.nbody.reference");
    let mut state = initial_state(params);
    let mut f = forces_all_pairs(&state.pos);
    for _ in 0..params.steps {
        verlet_step(&mut state, params.dt, &mut forces_all_pairs, &mut f);
    }
    state
}

/// Region decomposition: assigns each atom to a cubic cell.
fn region_of(pos: [f64; 3], params: &Params) -> usize {
    let cell = params.box_len() / params.regions as f64;
    let clamp = |x: f64| {
        ((x / cell) as isize).clamp(0, params.regions as isize - 1) as usize
    };
    let (rx, ry, rz) = (clamp(pos[0]), clamp(pos[1]), clamp(pos[2]));
    (rz * params.regions + ry) * params.regions + rx
}

/// Centre of a region cell.
fn region_center(r: usize, params: &Params) -> [f64; 3] {
    let cell = params.box_len() / params.regions as f64;
    let rx = r % params.regions;
    let ry = (r / params.regions) % params.regions;
    let rz = r / (params.regions * params.regions);
    [
        (rx as f64 + 0.5) * cell,
        (ry as f64 + 0.5) * cell,
        (rz as f64 + 0.5) * cell,
    ]
}

/// Task significance for an (atom, region) pair: the atom's own region
/// is forced accurate (significance 1.0 — a centre-of-mass collapse of
/// the atom's immediate neighbourhood would hit the steep `r⁻¹³` core),
/// then significance decays with the distance between the atom and the
/// region centre (neighbouring regions most significant, §4.1.4).
pub fn pair_significance(atom_pos: [f64; 3], region: usize, params: &Params) -> f64 {
    if region_of(atom_pos, params) == region {
        return 1.0;
    }
    let c = region_center(region, params);
    let d = (0..3)
        .map(|k| (atom_pos[k] - c[k]).powi(2))
        .sum::<f64>()
        .sqrt();
    let cell = params.box_len() / params.regions as f64;
    // Distance in units of cells; within one cell diameter → ≈ 1.
    (1.0 / (1.0 + (d / cell).powi(2))).min(0.99)
}

/// Significance-driven task simulation: per step, one task per
/// (atom, region); the approximate body uses the region's centre of
/// mass.
pub fn tasked(params: &Params, executor: &Executor, ratio: f64) -> (State, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.nbody.tasked");
    let mut state = initial_state(params);
    let n = params.atoms();
    let n_regions = params.regions.pow(3);
    let mut total_stats = ExecutionStats::default();

    let forces = |pos: &[[f64; 3]], stats: &mut ExecutionStats| -> Vec<[f64; 3]> {
        // Assign atoms to regions ("every few time-steps" in the paper;
        // every step here for simplicity).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_regions];
        for (i, &p) in pos.iter().enumerate() {
            members[region_of(p, params)].push(i);
        }
        // Region summaries for the approximate bodies: a whole-region
        // centre of mass for far regions, eight octant centres of mass
        // for nearby ones (a one-level Barnes–Hut-style refinement that
        // keeps the steep LJ core acceptably resolved).
        let cell = params.box_len() / params.regions as f64;
        let coms: Vec<RegionSummary> = members
            .iter()
            .enumerate()
            .map(|(r, m)| {
                let center = region_center(r, params);
                let mut com = ([0.0; 3], 0usize);
                let mut octants = [([0.0; 3], 0usize); 8];
                for &i in m {
                    let p = pos[i];
                    for d in 0..3 {
                        com.0[d] += p[d];
                    }
                    com.1 += 1;
                    let idx = (usize::from(p[0] >= center[0]))
                        | (usize::from(p[1] >= center[1]) << 1)
                        | (usize::from(p[2] >= center[2]) << 2);
                    for d in 0..3 {
                        octants[idx].0[d] += p[d];
                    }
                    octants[idx].1 += 1;
                }
                let normalize = |acc: &mut ([f64; 3], usize)| {
                    if acc.1 > 0 {
                        for v in &mut acc.0 {
                            *v /= acc.1 as f64;
                        }
                    }
                };
                normalize(&mut com);
                for o in &mut octants {
                    normalize(o);
                }
                RegionSummary { com, octants }
            })
            .collect();

        // One output slot per (atom, region): no races, summed after.
        let mut partial = vec![[0.0f64; 3]; n * n_regions];
        let run_stats = {
            let mut group = TaskGroup::new("nbody-forces");
            for (slot, chunk) in partial.chunks_mut(n_regions).enumerate() {
                let atom = slot;
                let apos = pos[atom];
                for (r, out) in chunk.iter_mut().enumerate() {
                    let mems = &members[r];
                    let summary = &coms[r];
                    let sig = pair_significance(apos, r, params);
                    // Near regions get the octant-refined approximation.
                    let rc = region_center(r, params);
                    let dist = (0..3)
                        .map(|k| (apos[k] - rc[k]).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    let refined = dist < 2.0 * cell;
                    let out_acc: *mut [f64; 3] = out;
                    let out_acc = SendSlot(out_acc);
                    let out_apx = SendSlot(out_acc.0);
                    group.spawn(
                        sig,
                        move |ctx: &scorpio_runtime::TaskCtx| {
                            ctx.count_accurate_ops(mems.len() as u64);
                            let mut f = [0.0; 3];
                            for &j in mems {
                                if j != atom {
                                    let fij = lj_force(apos, pos[j]);
                                    for d in 0..3 {
                                        f[d] += fij[d];
                                    }
                                }
                            }
                            out_acc.write(f);
                        },
                        Some(move |ctx: &scorpio_runtime::TaskCtx| {
                            let mut f = [0.0; 3];
                            if refined {
                                ctx.count_approx_ops(8);
                                for (c, count) in &summary.octants {
                                    if *count > 0 {
                                        let fc = lj_force(apos, *c);
                                        for d in 0..3 {
                                            f[d] += fc[d] * *count as f64;
                                        }
                                    }
                                }
                            } else {
                                ctx.count_approx_ops(1);
                                let (c, count) = summary.com;
                                if count > 0 {
                                    let fc = lj_force(apos, c);
                                    for d in 0..3 {
                                        f[d] = fc[d] * count as f64;
                                    }
                                }
                            }
                            out_apx.write(f);
                        }),
                    );
                }
            }
            group.taskwait(executor, ratio)
        };
        stats.merge(&run_stats);

        let mut f = vec![[0.0; 3]; n];
        for atom in 0..n {
            for r in 0..n_regions {
                for d in 0..3 {
                    f[atom][d] += partial[atom * n_regions + r][d];
                }
            }
        }
        f
    };

    let mut f_old = forces(&state.pos.clone(), &mut total_stats);
    for _ in 0..params.steps {
        let n_atoms = state.pos.len();
        for i in 0..n_atoms {
            for d in 0..3 {
                state.pos[i][d] += params.dt * state.vel[i][d]
                    + 0.5 * params.dt * params.dt * f_old[i][d];
            }
        }
        let f_new = forces(&state.pos.clone(), &mut total_stats);
        for i in 0..n_atoms {
            for d in 0..3 {
                state.vel[i][d] += 0.5 * params.dt * (f_old[i][d] + f_new[i][d]);
            }
        }
        f_old = f_new;
    }
    (state, total_stats)
}

/// Centre-of-mass summary of one region, with one octant refinement
/// level for nearby-region approximation.
struct RegionSummary {
    com: ([f64; 3], usize),
    octants: [([f64; 3], usize); 8],
}

/// Slot wrapper for the exactly-one-body-runs write pattern.
struct SendSlot(*mut [f64; 3]);

impl SendSlot {
    fn write(&self, v: [f64; 3]) {
        // SAFETY: disjoint slots per task; one body per task runs; the
        // buffer outlives the group.
        unsafe { *self.0 = v };
    }
}

// SAFETY: see `SendSlot::write`.
unsafe impl Send for SendSlot {}

/// Loop-perforated simulation (§4.2): the per-atom force loop over all
/// other atoms skips a fraction of its iterations.
pub fn perforated(params: &Params, keep_fraction: f64) -> (State, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.nbody.perforated");
    let n = params.atoms();
    let perf = Perforator::new(n, keep_fraction);
    let mut ops = 0u64;
    let mut forces = |pos: &[[f64; 3]]| -> Vec<[f64; 3]> {
        let mut f = vec![[0.0; 3]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j && perf.keep(j) {
                    ops += 1;
                    let fij = lj_force(pos[i], pos[j]);
                    for d in 0..3 {
                        f[i][d] += fij[d];
                    }
                }
            }
        }
        f
    };
    let mut state = initial_state(params);
    let mut f = forces(&state.pos.clone());
    for _ in 0..params.steps {
        verlet_step(&mut state, params.dt, &mut |p| forces(p), &mut f);
    }
    (
        state,
        ExecutionStats {
            accurate_ops: ops,
            ..ExecutionStats::default()
        },
    )
}

/// Significance of atom B's position for the force on atom A at
/// separation `r0` (±`radius` uncertainty per coordinate) — the §4.1.4
/// distance-correlation analysis. Returns the raw summed significance of
/// B's three coordinates.
///
/// # Errors
///
/// Propagates framework errors (the kernel is branch-free).
pub fn analysis_pair(r0: f64, radius: f64) -> Result<f64, AnalysisError> {
    let report = analysis_pair_report(r0, radius)?;
    Ok(["bx", "by", "bz"]
        .iter()
        .map(|n| report.var(n).map(|v| v.significance_raw).unwrap_or(0.0))
        .sum())
}

/// The full [`Report`] behind [`analysis_pair`] — the entry point the
/// soundness-audit battery (and any other node-level consumer) uses.
///
/// # Errors
///
/// Propagates framework errors, as [`analysis_pair`].
pub fn analysis_pair_report(r0: f64, radius: f64) -> Result<Report, AnalysisError> {
    Analysis::new().run(move |ctx| register_pair(ctx, r0, radius))
}

/// Registers the Lennard-Jones pair-force computation: atom A at the
/// origin (point inputs), atom B at distance `r0` along x with
/// ±`radius` uncertainty per coordinate.
///
/// Public so external drivers (e.g. the serve layer) can pair it with
/// [`pair_inputs`] under a replay driver; all six coordinates flow
/// through replayable inputs, so the trace shape is pair-independent.
pub fn register_pair(ctx: &Ctx<'_>, r0: f64, radius: f64) -> Result<(), AnalysisError> {
    let ax = ctx.input("ax", 0.0, 0.0);
    let ay = ctx.input("ay", 0.0, 0.0);
    let az = ctx.input("az", 0.0, 0.0);
    let bx = ctx.input_centered("bx", r0, radius);
    let by = ctx.input_centered("by", 0.0, radius);
    let bz = ctx.input_centered("bz", 0.0, radius);

    let dx = ax - bx;
    let dy = ay - by;
    let dz = az - bz;
    let r2 = dx.sqr() + dy.sqr() + dz.sqr();
    let inv2 = r2.recip();
    let inv6 = inv2 * inv2 * inv2;
    let scale = inv2 * inv6 * (inv6 * 2.0 - 1.0) * 24.0;
    let fx = scale * dx;
    let fy = scale * dy;
    let fz = scale * dz;
    ctx.output(&fx, "fx");
    ctx.output(&fy, "fy");
    ctx.output(&fz, "fz");
    Ok(())
}

/// Input boxes of [`register_pair`], in registration order (A's three
/// point intervals then B's three boxed coordinates, bound positionally
/// by replay drivers).
pub fn pair_inputs(r0: f64, radius: f64) -> Vec<Interval> {
    vec![
        Interval::new(0.0, 0.0),
        Interval::new(0.0, 0.0),
        Interval::new(0.0, 0.0),
        Interval::centered(r0, radius),
        Interval::centered(0.0, radius),
        Interval::centered(0.0, radius),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::relative_error_l2;

    #[test]
    fn lj_force_physics() {
        // At the potential minimum r = 2^(1/6), the force vanishes.
        let rmin = 2.0f64.powf(1.0 / 6.0);
        let f = lj_force([rmin, 0.0, 0.0], [0.0, 0.0, 0.0]);
        assert!(f[0].abs() < 1e-10);
        // Closer: repulsive (positive x for atom on +x side).
        let f = lj_force([1.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        assert!(f[0] > 0.0);
        // Farther: attractive.
        let f = lj_force([1.5, 0.0, 0.0], [0.0, 0.0, 0.0]);
        assert!(f[0] < 0.0);
        // Newton's third law.
        let fab = lj_force([1.3, 0.2, -0.4], [0.1, -0.3, 0.5]);
        let fba = lj_force([0.1, -0.3, 0.5], [1.3, 0.2, -0.4]);
        for d in 0..3 {
            assert!((fab[d] + fba[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_conserves_momentum() {
        let params = Params::small();
        let end = reference(&params);
        let mut p = [0.0; 3];
        for v in &end.vel {
            for d in 0..3 {
                p[d] += v[d];
            }
        }
        for d in 0..3 {
            assert!(p[d].abs() < 1e-9, "momentum component {d} = {}", p[d]);
        }
    }

    #[test]
    fn reference_approximately_conserves_energy() {
        let params = Params::small();
        let start = observables(&initial_state(&params));
        let end = observables(&reference(&params));
        let (e0, e1) = (start.total_energy(), end.total_energy());
        assert!(
            (e1 - e0).abs() < 0.05 * e0.abs().max(1.0),
            "energy drifted {e0} → {e1}"
        );
        // Momentum stays (numerically) zero throughout.
        assert!(end.momentum < 1e-9, "momentum {}", end.momentum);
        // The lattice starts slightly warm and stays finite.
        assert!(end.temperature > 0.0 && end.temperature < 1.0);
    }

    #[test]
    fn lj_potential_minimum_at_two_to_the_sixth() {
        let rmin = 2.0f64.powf(1.0 / 6.0);
        assert!((lj_potential(rmin) + 1.0).abs() < 1e-12);
        assert!(lj_potential(1.0).abs() < 1e-12); // V(σ) = 0
        assert!(lj_potential(3.0) < 0.0 && lj_potential(3.0) > -0.02);
    }

    #[test]
    fn approximate_execution_preserves_observables() {
        // The tasked run at ratio 0 must not wreck the physics: total
        // energy and temperature stay near the reference values.
        let params = Params::small();
        let executor = Executor::new(4);
        let exact = observables(&reference(&params));
        let (state, _) = tasked(&params, &executor, 0.0);
        let approx = observables(&state);
        let rel = ((approx.total_energy() - exact.total_energy())
            / exact.total_energy().abs())
        .abs();
        assert!(rel < 0.01, "total energy off by {rel}");
        assert!((approx.temperature - exact.temperature).abs() < 0.05);
    }

    #[test]
    fn tasked_ratio_one_matches_reference() {
        let params = Params::small();
        let executor = Executor::new(4);
        let (state, _) = tasked(&params, &executor, 1.0);
        let exact = reference(&params);
        let err = relative_error_l2(&exact.flatten(), &state.flatten());
        // Region-grouped summation reorders additions; tiny FP noise only.
        assert!(err < 1e-9, "rel err {err}");
    }

    #[test]
    fn tasked_fully_approximate_is_still_accurate() {
        // The headline N-Body result: centre-of-mass approximation of far
        // regions leaves a tiny relative error even at ratio 0 (paper:
        // 0.006 %).
        let params = Params::small();
        let executor = Executor::new(4);
        let (state, stats) = tasked(&params, &executor, 0.0);
        let exact = reference(&params);
        let err = relative_error_l2(&exact.flatten(), &state.flatten());
        assert!(err < 0.01, "rel err {err}");
        // Only the forced own-region tasks ran accurately: one per atom
        // per force evaluation.
        assert_eq!(stats.accurate, params.atoms() * (params.steps + 1));
    }

    #[test]
    fn tasked_quality_monotone_in_ratio() {
        let params = Params::small();
        let executor = Executor::new(4);
        let exact = reference(&params).flatten();
        let mut last = f64::INFINITY;
        for ratio in [0.0, 0.5, 1.0] {
            let (state, _) = tasked(&params, &executor, ratio);
            let err = relative_error_l2(&exact, &state.flatten());
            assert!(err <= last * 1.5 + 1e-12, "err {err} after {last}");
            last = err;
        }
    }

    #[test]
    fn significance_beats_perforation() {
        // Fig. 7 N-Body: ~6 orders of magnitude better error.
        let params = Params::small();
        let executor = Executor::new(4);
        let exact = reference(&params).flatten();
        let (sig_state, _) = tasked(&params, &executor, 0.0);
        let (perf_state, _) = perforated(&params, 0.8);
        let err_sig = relative_error_l2(&exact, &sig_state.flatten());
        let err_perf = relative_error_l2(&exact, &perf_state.flatten());
        assert!(
            err_sig < err_perf,
            "sig ratio-0 err {err_sig} must beat perforated-0.8 err {err_perf}"
        );
    }

    #[test]
    fn pair_significance_decays_with_distance() {
        let params = Params::small();
        let atom = [0.6, 0.6, 0.6];
        let near = pair_significance(atom, region_of(atom, &params), &params);
        assert_eq!(near, 1.0); // own region forced accurate
        let far_region = params.regions.pow(3) - 1;
        let far = pair_significance(atom, far_region, &params);
        assert!(far < 0.5);
    }

    #[test]
    fn analysis_confirms_distance_correlation() {
        let radius = 0.05;
        let mut last = f64::INFINITY;
        for r0 in [1.2, 1.8, 2.5, 4.0] {
            let s = analysis_pair(r0, radius).unwrap();
            assert!(s > 0.0);
            assert!(
                s < last,
                "significance must decay with distance: S({r0}) = {s}, previous {last}"
            );
            last = s;
        }
    }
}
