//! Fisheye lens image correction (§4.1.3, Fig. 5–6).
//!
//! Two kernels, as in the paper:
//!
//! * **InverseMapping** — maps integer coordinates of the corrected
//!   output image to real-valued coordinates in the distorted fisheye
//!   input. The lens model is radially expansive towards the border
//!   (`r_d = f·tan(R/f)`): the fisheye image magnifies peripheral
//!   content, so correcting it pushes border coordinates outward — which
//!   is why the paper finds border pixels' coordinate computations "more
//!   sensitive to imprecision" (Fig. 5).
//! * **BicubicInterp** — Catmull-Rom bicubic interpolation on the 4×4
//!   pixel window around the mapped point.
//!
//! The analysis shows border pixels' coordinate computations are more
//! significant than central ones (Fig. 5), and that of the 4×4 window the
//! inner 2×2 pixel pairs dominate (Fig. 6). The tasked version exploits
//! both: per-block significance grows with distance from the image
//! centre, and the approximate task body computes the mapping only at
//! block corners (bilinear coordinate interpolation inside) and samples
//! with 2×2 bilinear interpolation — the transitive-significance argument
//! of §4.1.3.

use scorpio_core::{
    Analysis, AnalysisArena, AnalysisError, Ctx, ParallelAnalysis, ReplayOrRecord, Report,
    VarSignificances, DEFAULT_LANES,
};
use scorpio_interval::Interval;
use scorpio_quality::GrayImage;
use scorpio_runtime::perforation::Perforator;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// Lens/geometry parameters of the correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lens {
    /// Output (and input) image width in pixels.
    pub width: usize,
    /// Output (and input) image height in pixels.
    pub height: usize,
    /// Focal length in pixels.
    pub focal: f64,
}

impl Lens {
    /// A lens whose field of view keeps the whole image inside the
    /// model's validity range (`R_max/focal < π/2`, with margin).
    pub fn for_image(width: usize, height: usize) -> Lens {
        let r_max = (width as f64 / 2.0).hypot(height as f64 / 2.0);
        Lens {
            width,
            height,
            focal: r_max / 1.2,
        }
    }

    /// Largest valid normalized radius `R/focal` (kept clear of the tan
    /// pole at π/2).
    pub const MAX_Q: f64 = 1.45;

    /// Image centre.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (self.width as f64 / 2.0, self.height as f64 / 2.0)
    }
}

/// The InverseMapping kernel: output pixel `(u, v)` → real-valued
/// coordinates in the distorted image, radial scale `s = tan(q)/q` with
/// `q = R/focal` (clamped below the tan pole).
///
/// ```
/// use scorpio_kernels::fisheye::{inverse_mapping, Lens};
/// let lens = Lens::for_image(128, 96);
/// // The centre maps to itself.
/// let (x, y) = inverse_mapping(&lens, 64.0, 48.0);
/// assert!((x - 64.0).abs() < 1e-9 && (y - 48.0).abs() < 1e-9);
/// // Border points are pushed outward (the fisheye magnified them).
/// let (x, _) = inverse_mapping(&lens, 120.0, 48.0);
/// assert!(x > 120.0);
/// ```
pub fn inverse_mapping(lens: &Lens, u: f64, v: f64) -> (f64, f64) {
    let (cx, cy) = lens.center();
    let dx = u - cx;
    let dy = v - cy;
    let big_r = dx.hypot(dy);
    if big_r < 1e-12 {
        return (u, v);
    }
    let q = (big_r / lens.focal).min(Lens::MAX_Q);
    let s = q.tan() / q;
    (cx + dx * s, cy + dy * s)
}

/// The forward mapping — the exact inverse of [`inverse_mapping`]:
/// distorted-image coordinates back to corrected-output coordinates
/// (radial scale `atan(q)/q`). Used to *synthesise* distorted test
/// inputs from a ground-truth perspective image, enabling end-to-end
/// round-trip validation.
///
/// ```
/// use scorpio_kernels::fisheye::{forward_mapping, inverse_mapping, Lens};
/// let lens = Lens::for_image(128, 96);
/// let (xd, yd) = inverse_mapping(&lens, 100.0, 70.0);
/// let (u, v) = forward_mapping(&lens, xd, yd);
/// assert!((u - 100.0).abs() < 1e-9 && (v - 70.0).abs() < 1e-9);
/// ```
pub fn forward_mapping(lens: &Lens, xd: f64, yd: f64) -> (f64, f64) {
    let (cx, cy) = lens.center();
    let dx = xd - cx;
    let dy = yd - cy;
    let r = dx.hypot(dy);
    if r < 1e-12 {
        return (xd, yd);
    }
    let q = (r / lens.focal).atan();
    let s = q / (r / lens.focal);
    (cx + dx * s, cy + dy * s)
}

/// Renders the distorted (fisheye) view of a perspective ground-truth
/// image: each distorted pixel samples the ground truth at its
/// forward-mapped position (bicubic).
pub fn distort(ground_truth: &GrayImage, lens: &Lens) -> GrayImage {
    GrayImage::from_fn(lens.width, lens.height, |x, y| {
        let (u, v) = forward_mapping(lens, x as f64, y as f64);
        bicubic(ground_truth, u, v)
    })
}

/// Catmull-Rom weights for the four samples at offsets −1, 0, 1, 2.
#[inline]
fn catmull_rom(t: f64) -> [f64; 4] {
    let t2 = t * t;
    let t3 = t2 * t;
    [
        0.5 * (-t3 + 2.0 * t2 - t),
        0.5 * (3.0 * t3 - 5.0 * t2 + 2.0),
        0.5 * (-3.0 * t3 + 4.0 * t2 + t),
        0.5 * (t3 - t2),
    ]
}

/// The BicubicInterp kernel: Catmull-Rom interpolation of the input at
/// real coordinates `(x, y)`, clamped at borders, result clipped to
/// `[0, 255]`.
pub fn bicubic(img: &GrayImage, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let wx = catmull_rom(x - x0);
    let wy = catmull_rom(y - y0);
    let mut acc = 0.0;
    for (j, wyj) in wy.iter().enumerate() {
        for (i, wxi) in wx.iter().enumerate() {
            let px = img.get_clamped(x0 as isize + i as isize - 1, y0 as isize + j as isize - 1);
            acc += wxi * wyj * px;
        }
    }
    acc.clamp(0.0, 255.0)
}

/// Bilinear interpolation on the inner 2×2 window — the approximate
/// sampling justified by Fig. 6 (the two central pixel pairs carry most
/// of the significance).
pub fn bilinear(img: &GrayImage, x: f64, y: f64) -> f64 {
    let x0 = x.floor();
    let y0 = y.floor();
    let tx = x - x0;
    let ty = y - y0;
    let p = |i: isize, j: isize| img.get_clamped(x0 as isize + i, y0 as isize + j);
    let v = p(0, 0) * (1.0 - tx) * (1.0 - ty)
        + p(1, 0) * tx * (1.0 - ty)
        + p(0, 1) * (1.0 - tx) * ty
        + p(1, 1) * tx * ty;
    v.clamp(0.0, 255.0)
}

/// Sequential accurate correction: per output pixel, InverseMapping then
/// BicubicInterp.
pub fn reference(img: &GrayImage, lens: &Lens) -> GrayImage {
    let _span = scorpio_obs::span("kernel.fisheye.reference");
    GrayImage::from_fn(lens.width, lens.height, |x, y| {
        let (xd, yd) = inverse_mapping(lens, x as f64, y as f64);
        bicubic(img, xd, yd)
    })
}

/// Block significance: normalized distance of the block centre from the
/// image centre — border blocks are most significant (Fig. 5).
pub fn block_significance(lens: &Lens, bx0: usize, by0: usize, bw: usize, bh: usize) -> f64 {
    let (cx, cy) = lens.center();
    let mx = bx0 as f64 + bw as f64 / 2.0;
    let my = by0 as f64 + bh as f64 / 2.0;
    let d = (mx - cx).hypot(my - cy);
    let dmax = cx.hypot(cy);
    (d / dmax).clamp(0.0, 0.99)
}

/// Significance-driven task version with the paper's 128×64 output
/// blocks.
pub fn tasked(
    img: &GrayImage,
    lens: &Lens,
    executor: &Executor,
    ratio: f64,
) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.fisheye.tasked");
    tasked_with_blocks(img, lens, executor, ratio, 128, 64)
}

/// [`tasked`] with an explicit block size (tests use small blocks).
pub fn tasked_with_blocks(
    img: &GrayImage,
    lens: &Lens,
    executor: &Executor,
    ratio: f64,
    block_w: usize,
    block_h: usize,
) -> (GrayImage, ExecutionStats) {
    let (w, h) = (lens.width, lens.height);
    let mut out = GrayImage::new(w, h);

    // Carve the output image into disjoint block views: a vector of
    // (x0, y0, rows) where rows are raw row slices of the block.
    struct Block<'a> {
        x0: usize,
        y0: usize,
        bw: usize,
        rows: Vec<&'a mut [f64]>,
    }
    let mut blocks: Vec<Block<'_>> = Vec::new();
    {
        // Split the image into rows, then group rows into block bands and
        // split each band horizontally.
        let mut rows: Vec<&mut [f64]> = out.pixels_mut().chunks_mut(w).collect();
        let mut y0 = 0;
        while !rows.is_empty() {
            let take = block_h.min(rows.len());
            let band: Vec<&mut [f64]> = rows.drain(..take).collect();
            // Transpose the band into per-block row groups.
            let mut x0 = 0;
            let mut cursors: Vec<&mut [f64]> = band;
            while x0 < w {
                let bw = block_w.min(w - x0);
                let mut block_rows = Vec::with_capacity(cursors.len());
                let mut rest = Vec::with_capacity(cursors.len());
                for row in cursors {
                    let (head, tail) = row.split_at_mut(bw);
                    block_rows.push(head);
                    rest.push(tail);
                }
                blocks.push(Block {
                    x0,
                    y0,
                    bw,
                    rows: block_rows,
                });
                cursors = rest;
                x0 += bw;
            }
            y0 += take;
        }
    }

    let stats = {
        let mut group = TaskGroup::new("fisheye");
        for block in blocks {
            let significance = block_significance(lens, block.x0, block.y0, block.bw, block.rows.len());
            let (x0, y0, bw) = (block.x0, block.y0, block.bw);
            let bh = block.rows.len();
            let rows_acc = block.rows;
            // The accurate and approximate bodies both own the block rows;
            // exactly one runs. Move the rows into a Mutex-free split via
            // Option swap in two closures is impossible, so we rely on the
            // runtime's exclusivity and share through a raw container.
            let shared = SharedRows(std::cell::UnsafeCell::new(rows_acc));
            let shared = std::sync::Arc::new(shared);
            let shared_apx = std::sync::Arc::clone(&shared);
            group.spawn(
                significance,
                move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_accurate_ops((bw * bh * 20) as u64);
                    // SAFETY: only one body of this task runs.
                    let rows = unsafe { &mut *shared.0.get() };
                    for (j, row) in rows.iter_mut().enumerate() {
                        let y = (y0 + j) as f64;
                        for (i, px) in row.iter_mut().enumerate() {
                            let (xd, yd) = inverse_mapping(lens, (x0 + i) as f64, y);
                            *px = bicubic(img, xd, yd);
                        }
                    }
                },
                Some(move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_approx_ops((bw * bh * 5) as u64);
                    // SAFETY: only one body of this task runs.
                    let rows = unsafe { &mut *shared_apx.0.get() };
                    // InverseMapping only at the four block corners...
                    let bh_f = (bh.max(2) - 1) as f64;
                    let bw_f = (bw.max(2) - 1) as f64;
                    let c00 = inverse_mapping(lens, x0 as f64, y0 as f64);
                    let c10 = inverse_mapping(lens, (x0 as f64) + bw_f, y0 as f64);
                    let c01 = inverse_mapping(lens, x0 as f64, (y0 as f64) + bh_f);
                    let c11 = inverse_mapping(lens, (x0 as f64) + bw_f, (y0 as f64) + bh_f);
                    for (j, row) in rows.iter_mut().enumerate() {
                        let ty = if bh > 1 { j as f64 / bh_f } else { 0.0 };
                        for (i, px) in row.iter_mut().enumerate() {
                            let tx = if bw > 1 { i as f64 / bw_f } else { 0.0 };
                            // ...bilinear interpolation of the coordinates...
                            let xd = (1.0 - ty) * ((1.0 - tx) * c00.0 + tx * c10.0)
                                + ty * ((1.0 - tx) * c01.0 + tx * c11.0);
                            let yd = (1.0 - ty) * ((1.0 - tx) * c00.1 + tx * c10.1)
                                + ty * ((1.0 - tx) * c01.1 + tx * c11.1);
                            // ...and 2×2 bilinear sampling (Fig. 6 pairs c/e).
                            *px = bilinear(img, xd, yd);
                        }
                    }
                }),
            );
        }
        group.taskwait(executor, ratio)
    };
    (out, stats)
}

/// Container asserting Send/Sync for the exactly-one-body-runs pattern.
struct SharedRows<'a>(std::cell::UnsafeCell<Vec<&'a mut [f64]>>);
// SAFETY: the runtime runs exactly one body per task; bodies of different
// tasks hold disjoint row sets.
unsafe impl Send for SharedRows<'_> {}
unsafe impl Sync for SharedRows<'_> {}

/// Loop-perforated version (§4.2): drops a fraction of the output rows,
/// "similarly to Sobel".
pub fn perforated(img: &GrayImage, lens: &Lens, keep_fraction: f64) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.fisheye.perforated");
    let (w, h) = (lens.width, lens.height);
    let perf = Perforator::new(h, keep_fraction);
    let mut out = GrayImage::new(w, h);
    let mut ops = 0u64;
    for y in 0..h {
        if !perf.keep(y) {
            continue;
        }
        ops += (w * 20) as u64;
        for x in 0..w {
            let (xd, yd) = inverse_mapping(lens, x as f64, y as f64);
            out.set(x, y, bicubic(img, xd, yd));
        }
    }
    (
        out,
        ExecutionStats {
            accurate_ops: ops,
            ..ExecutionStats::default()
        },
    )
}

/// Significance analysis of the InverseMapping kernel at output pixel
/// `(u, v) ± 0.5` (Fig. 5): inputs are the pixel coordinates, outputs the
/// distorted coordinates. Returns the **raw** summed significance, which
/// is comparable across pixels (normalisation would divide by a
/// per-pixel output scale).
///
/// The radial scale is evaluated through the series
/// `tan(q)/q = 1 + q²/3 + 2q⁴/15 + 17q⁶/315 + 62q⁸/2835` in `q² =
/// (dx² + dy²)/f²` — the "special interval algorithm" remedy of §2.2:
/// the naive `r/R` form divides two strongly correlated intervals and
/// its decorrelation error near the image centre would swamp the true
/// radial sensitivity pattern. The series contains no division by `R`
/// at all.
///
/// # Errors
///
/// Propagates framework errors (the series form is branch-free and
/// total).
pub fn analysis_inverse_mapping(lens: &Lens, u: f64, v: f64) -> Result<f64, AnalysisError> {
    let report = analysis_inverse_mapping_report(lens, u, v)?;
    Ok(summed_input_significance(&report))
}

/// The full [`Report`] behind [`analysis_inverse_mapping`] — the entry
/// point the soundness-audit battery (and any other node-level
/// consumer) uses.
///
/// # Errors
///
/// Propagates framework errors, as [`analysis_inverse_mapping`].
pub fn analysis_inverse_mapping_report(
    lens: &Lens,
    u: f64,
    v: f64,
) -> Result<Report, AnalysisError> {
    Analysis::new().run(|ctx| register_inverse_mapping(ctx, lens, u, v))
}

/// [`analysis_inverse_mapping`] recording into a reusable arena — the
/// per-item body the parallel per-pixel map is built from. Produces
/// exactly the same value as the fresh-tape variant.
///
/// # Errors
///
/// Propagates framework errors, as [`analysis_inverse_mapping`].
pub fn analysis_inverse_mapping_in(
    arena: &mut AnalysisArena,
    lens: &Lens,
    u: f64,
    v: f64,
) -> Result<f64, AnalysisError> {
    let report = Analysis::new().run_in(arena, |ctx| register_inverse_mapping(ctx, lens, u, v))?;
    Ok(summed_input_significance(&report))
}

/// [`analysis_inverse_mapping`] through a record-once / replay-many
/// driver: the first pixel records and compiles the (branch-free,
/// pixel-independent) trace, every further pixel replays it with that
/// pixel's coordinate boxes. Values are bit-identical to the recording
/// variants.
///
/// # Errors
///
/// Propagates framework errors, as [`analysis_inverse_mapping`].
pub fn analysis_inverse_mapping_replay_in(
    driver: &mut ReplayOrRecord,
    arena: &mut AnalysisArena,
    lens: &Lens,
    u: f64,
    v: f64,
) -> Result<f64, AnalysisError> {
    let vars = driver.run_vars_in(arena, &inverse_mapping_inputs(lens, u, v), |ctx| {
        register_inverse_mapping(ctx, lens, u, v)
    })?;
    Ok(summed_input_significance_vars(&vars))
}

/// The Fig. 5 per-pixel significance map: one InverseMapping analysis
/// per cell of a `grid_w × grid_h` grid of pixel centres, fanned over
/// `engine`'s workers in record-once / replay-many mode (each worker
/// records the trace once, then replays it per pixel). Returns raw
/// summed significances in row-major order; the values are
/// bit-identical to a serial per-pixel re-recording loop.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing pixel.
pub fn analysis_inverse_mapping_grid(
    lens: &Lens,
    grid_w: usize,
    grid_h: usize,
    engine: &ParallelAnalysis,
) -> Result<Vec<f64>, AnalysisError> {
    analysis_inverse_mapping_grid_lanes::<DEFAULT_LANES>(lens, grid_w, grid_h, engine)
}

/// [`analysis_inverse_mapping_grid`] with an explicit replay lane width
/// (that function fixes `LANES` = [`DEFAULT_LANES`]): full blocks of
/// `LANES` pixels are served by **one** walk of the compiled trace.
/// Values are bit-identical for every width.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing pixel.
pub fn analysis_inverse_mapping_grid_lanes<const LANES: usize>(
    lens: &Lens,
    grid_w: usize,
    grid_h: usize,
    engine: &ParallelAnalysis,
) -> Result<Vec<f64>, AnalysisError> {
    let _span = scorpio_obs::span("kernel.fisheye.analysis_grid");
    let cell_w = lens.width as f64 / grid_w as f64;
    let cell_h = lens.height as f64 / grid_h as f64;
    let pixels: Vec<(f64, f64)> = (0..grid_h)
        .flat_map(|gy| {
            (0..grid_w).map(move |gx| {
                ((gx as f64 + 0.5) * cell_w, (gy as f64 + 0.5) * cell_h)
            })
        })
        .collect();
    engine
        .run_batch_replay_vars_map_lanes::<LANES, _, _, _, _, _>(
            &pixels,
            |&(u, v)| inverse_mapping_inputs(lens, u, v),
            |ctx, &(u, v)| register_inverse_mapping(ctx, lens, u, v),
            |_, vars| Ok(summed_input_significance_vars(vars)),
        )
        .map(|(sigs, _stats)| sigs)
}

/// Registers the InverseMapping computation at pixel `(u, v)` (see
/// [`analysis_inverse_mapping`] for the modelling rationale).
///
/// Public so external drivers (e.g. the serve layer) can pair it with
/// [`inverse_mapping_inputs`] under a replay driver. The lens focal
/// length and centre are baked into the trace as *constants* — only
/// the two centred pixel coordinates are replayable inputs — so any
/// shared trace must be keyed on the lens/image shape as well.
pub fn register_inverse_mapping(
    ctx: &Ctx<'_>,
    lens: &Lens,
    u: f64,
    v: f64,
) -> Result<(), AnalysisError> {
    let (cx, cy) = lens.center();
    let focal = lens.focal;
    // Inputs are the pixel coordinates measured from the image
    // centre (`u − cx ± 0.5`): Eq. 11 weighs a variable's magnitude,
    // so an arbitrary top-left origin would skew the map towards
    // large absolute coordinates instead of the radial pattern.
    let dx = ctx.input_centered("u", u - cx, 0.5);
    let dy = ctx.input_centered("v", v - cy, 0.5);
    let q2 = (dx.sqr() + dy.sqr()) * (1.0 / (focal * focal));
    let q4 = q2.sqr();
    let q6 = q4 * q2;
    let q8 = q4.sqr();
    let s = 1.0 + q2 * (1.0 / 3.0)
        + q4 * (2.0 / 15.0)
        + q6 * (17.0 / 315.0)
        + q8 * (62.0 / 2835.0);
    // Outputs are the *centred* distorted coordinates: the +centre
    // translation is an exact constant whose inclusion would skew
    // Eq. 11's magnitude product towards large absolute coordinates
    // (bottom-right of the image) and mask the radial symmetry.
    let xd = dx * s;
    let yd = dy * s;
    ctx.output(&xd, "xd");
    ctx.output(&yd, "yd");
    Ok(())
}

/// Raw summed significance of the two coordinate inputs.
fn summed_input_significance(report: &Report) -> f64 {
    let sx = report.var("u").map(|r| r.significance_raw).unwrap_or(0.0);
    let sy = report.var("v").map(|r| r.significance_raw).unwrap_or(0.0);
    sx + sy
}

/// [`summed_input_significance`] over replay-mode rows.
fn summed_input_significance_vars(vars: &VarSignificances) -> f64 {
    let sx = vars.var("u").map(|r| r.significance_raw).unwrap_or(0.0);
    let sy = vars.var("v").map(|r| r.significance_raw).unwrap_or(0.0);
    sx + sy
}

/// Per-pixel input boxes of [`register_inverse_mapping`], in
/// registration order — the replay driver binds these positionally, so
/// they must mirror the `input_centered` calls exactly.
pub fn inverse_mapping_inputs(lens: &Lens, u: f64, v: f64) -> Vec<Interval> {
    let (cx, cy) = lens.center();
    vec![
        Interval::centered(u - cx, 0.5),
        Interval::centered(v - cy, 0.5),
    ]
}

/// Significance analysis of BicubicInterp (Fig. 6): 16 window pixels in
/// `[0, 255]` plus interpolation coordinates `(tx, ty) ∈ [0, 1]²` (the
/// grey central cell of Fig. 6i); returns the 4×4 per-pixel normalized
/// significance map.
///
/// # Errors
///
/// Propagates framework errors (none expected; the weights are
/// polynomials).
pub fn analysis_bicubic() -> Result<(Report, [[f64; 4]; 4]), AnalysisError> {
    let report = Analysis::new().run(|ctx| {
        let tx = ctx.input("tx", 0.0, 1.0);
        let ty = ctx.input("ty", 0.0, 1.0);
        let mut pixels = Vec::with_capacity(16);
        for j in 0..4 {
            for i in 0..4 {
                pixels.push(ctx.input(format!("p{j}_{i}"), 0.0, 255.0));
            }
        }

        // Catmull-Rom weight vectors as recorded polynomials.
        fn weights<'t>(t: scorpio_core::Ia1s<'t>) -> [scorpio_core::Ia1s<'t>; 4] {
            let t2 = t.sqr();
            let t3 = t2 * t;
            [
                (t2 * 2.0 - t3 - t) * 0.5,
                (t3 * 3.0 - t2 * 5.0 + 2.0) * 0.5,
                (t2 * 4.0 - t3 * 3.0 + t) * 0.5,
                (t3 - t2) * 0.5,
            ]
        }
        let wx = weights(tx);
        let wy = weights(ty);

        let mut acc = ctx.constant(0.0);
        for j in 0..4 {
            for i in 0..4 {
                let contrib = pixels[j * 4 + i] * wx[i] * wy[j];
                ctx.intermediate(&contrib, format!("w{j}_{i}"));
                acc = acc + contrib;
            }
        }
        let lo = ctx.constant(0.0);
        let hi = ctx.constant(255.0);
        let out = acc.min(hi).max(lo);
        ctx.output(&out, "pixel");
        Ok(())
    })?;

    let mut map = [[0.0; 4]; 4];
    for (j, row) in map.iter_mut().enumerate() {
        for (i, s) in row.iter_mut().enumerate() {
            *s = report
                .significance_of(&format!("w{j}_{i}"))
                .unwrap_or(f64::NAN);
        }
    }
    Ok((report, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::{psnr_images, value_noise};

    fn lens() -> Lens {
        Lens::for_image(96, 64)
    }

    #[test]
    fn inverse_mapping_geometry() {
        let lens = lens();
        let (cx, cy) = lens.center();
        // Centre is a fixed point.
        let (x, y) = inverse_mapping(&lens, cx, cy);
        assert!((x - cx).abs() < 1e-9 && (y - cy).abs() < 1e-9);
        // Radial monotone expansion: farther out → pushed further outward.
        let (x1, _) = inverse_mapping(&lens, cx + 10.0, cy);
        let (x2, _) = inverse_mapping(&lens, cx + 40.0, cy);
        assert!(x1 - (cx + 10.0) < x2 - (cx + 40.0));
        assert!(x1 >= cx + 10.0);
        // Rotational symmetry.
        let (xa, ya) = inverse_mapping(&lens, cx + 15.0, cy);
        let (xb, yb) = inverse_mapping(&lens, cx, cy + 15.0);
        assert!((xa - cx - (yb - cy)).abs() < 1e-9);
        assert!((ya - cy - (xb - cx)).abs() < 1e-9);
    }

    #[test]
    fn catmull_rom_partition_of_unity() {
        for t in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let w = catmull_rom(t);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "at {t}");
        }
        // Interpolation property: t = 0 selects sample 0 exactly.
        assert_eq!(catmull_rom(0.0), [0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn bicubic_reproduces_constants_and_linears() {
        let flat = GrayImage::from_fn(16, 16, |_, _| 77.0);
        assert!((bicubic(&flat, 7.3, 8.6) - 77.0).abs() < 1e-9);
        let linear = GrayImage::from_fn(16, 16, |x, _| x as f64);
        assert!((bicubic(&linear, 7.25, 8.0) - 7.25).abs() < 1e-9);
    }

    #[test]
    fn bilinear_matches_bicubic_on_linear_images() {
        let linear = GrayImage::from_fn(16, 16, |x, y| (x + y) as f64);
        assert!((bilinear(&linear, 5.5, 6.5) - bicubic(&linear, 5.5, 6.5)).abs() < 1e-9);
    }

    #[test]
    fn tasked_ratio_one_matches_reference() {
        let lens = lens();
        let img = value_noise(96, 64, 17);
        let executor = Executor::new(4);
        let (out, stats) = tasked_with_blocks(&img, &lens, &executor, 1.0, 24, 16);
        assert_eq!(out, reference(&img, &lens));
        assert_eq!(stats.accurate, 4 * 4);
    }

    #[test]
    fn tasked_quality_monotone_in_ratio() {
        let lens = lens();
        let img = value_noise(96, 64, 23);
        let executor = Executor::new(4);
        let full = reference(&img, &lens);
        let mut last = -1.0;
        for ratio in [0.0, 0.3, 0.6, 1.0] {
            let (out, _) = tasked_with_blocks(&img, &lens, &executor, ratio, 24, 16);
            let p = psnr_images(&full, &out);
            assert!(p >= last - 0.75, "PSNR fell from {last} to {p} at {ratio}");
            last = p;
        }
        assert_eq!(last, f64::INFINITY);
    }

    #[test]
    fn significance_beats_perforation_on_quality() {
        let lens = lens();
        let img = value_noise(96, 64, 29);
        let executor = Executor::new(4);
        let full = reference(&img, &lens);
        for ratio in [0.2, 0.5, 0.8] {
            let (sig_out, _) = tasked_with_blocks(&img, &lens, &executor, ratio, 24, 16);
            let (perf_out, _) = perforated(&img, &lens, ratio);
            let psnr_sig = psnr_images(&full, &sig_out);
            let psnr_perf = psnr_images(&full, &perf_out);
            assert!(
                psnr_sig > psnr_perf,
                "ratio {ratio}: sig {psnr_sig} vs perf {psnr_perf}"
            );
        }
    }

    #[test]
    fn analysis_fig5_border_beats_center() {
        let lens = lens();
        let (cx, cy) = lens.center();
        let center = analysis_inverse_mapping(&lens, cx + 3.0, cy + 2.0).unwrap();
        let border = analysis_inverse_mapping(&lens, 2.0, 2.0).unwrap();
        assert!(
            border > center,
            "border {border} must exceed centre {center}"
        );
    }

    #[test]
    fn analysis_fig6_inner_pairs_dominate() {
        let (_, map) = analysis_bicubic().unwrap();
        // Inner 2×2 (indices 1..=2) vs the outer ring.
        let inner: f64 = (1..3)
            .flat_map(|j| (1..3).map(move |i| (i, j)))
            .map(|(i, j)| map[j][i])
            .sum();
        let outer: f64 = (0..4)
            .flat_map(|j| (0..4).map(move |i| (i, j)))
            .filter(|&(i, j)| !(1..3).contains(&i) || !(1..3).contains(&j))
            .map(|(i, j)| map[j][i])
            .sum();
        assert!(
            inner > outer,
            "inner 2×2 total {inner} must dominate outer ring {outer}"
        );
        // Symmetry of the pairs (Fig. 6 groups mirrored pixels).
        assert!((map[1][1] - map[1][2]).abs() / map[1][1] < 0.05);
    }

    #[test]
    fn replayed_grid_matches_fresh_recording_bitwise() {
        let lens = lens();
        let (grid_w, grid_h) = (6, 4);
        let engine = ParallelAnalysis::new(1);
        let sigs = analysis_inverse_mapping_grid(&lens, grid_w, grid_h, &engine).unwrap();
        assert_eq!(sigs.len(), grid_w * grid_h);
        let cell_w = lens.width as f64 / grid_w as f64;
        let cell_h = lens.height as f64 / grid_h as f64;
        for (k, &s) in sigs.iter().enumerate() {
            let u = ((k % grid_w) as f64 + 0.5) * cell_w;
            let v = ((k / grid_w) as f64 + 0.5) * cell_h;
            let fresh = analysis_inverse_mapping(&lens, u, v).unwrap();
            assert_eq!(s.to_bits(), fresh.to_bits(), "pixel ({u}, {v}) diverged");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let lens = lens();
        for (u, v) in [(10.0, 10.0), (48.0, 32.0), (80.0, 50.0), (95.0, 5.0)] {
            let (xd, yd) = inverse_mapping(&lens, u, v);
            let (u2, v2) = forward_mapping(&lens, xd, yd);
            assert!((u - u2).abs() < 1e-9 && (v - v2).abs() < 1e-9, "at ({u},{v})");
        }
    }

    #[test]
    fn correction_recovers_ground_truth() {
        // End to end: synthesise the distorted view of a smooth ground
        // truth, correct it, and compare against the ground truth on the
        // interior (borders lose information to clamping).
        let lens = Lens::for_image(96, 96);
        let truth = scorpio_quality::gaussian_blobs(96, 96, 3);
        let distorted = distort(&truth, &lens);
        let corrected = reference(&distorted, &lens);

        let mut se = 0.0;
        let mut n = 0usize;
        for y in 24..72 {
            for x in 24..72 {
                let d = corrected.get(x, y) - truth.get(x, y);
                se += d * d;
                n += 1;
            }
        }
        let interior_psnr = 10.0 * (255.0 * 255.0 / (se / n as f64)).log10();
        assert!(
            interior_psnr > 30.0,
            "interior PSNR after round trip: {interior_psnr:.1} dB"
        );
    }

    #[test]
    fn block_significance_radial() {
        let lens = lens();
        let center_block = block_significance(&lens, 40, 24, 16, 16);
        let corner_block = block_significance(&lens, 0, 0, 16, 16);
        assert!(corner_block > center_block);
        assert!(corner_block < 1.0); // never forced
    }
}
