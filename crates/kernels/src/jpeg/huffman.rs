//! Canonical Huffman entropy coding of the run-length symbol stream —
//! the stage that turns [`codec`](crate::dct::codec)'s `(run, level)`
//! symbols into an actual bitstream, so the codec's bitrate is measured
//! in real bits instead of the first-order entropy estimate.
//!
//! The design follows JPEG's entropy layer: each
//! [`Symbol`] maps to a `(zero_run, size)`
//! **symbol id** (size = magnitude category of the level), the ids get
//! canonical Huffman codes built from the image's own symbol
//! statistics, and each `Run` code is followed by `size` raw
//! **amplitude bits** in JPEG's ones'-complement convention. Tables are
//! serialized as `(id, code length)` pairs; canonical code assignment
//! makes the codes themselves redundant, so decoder and encoder agree
//! bit-for-bit by construction.
//!
//! Everything here is deterministic: tie-breaks in the Huffman build
//! are by node creation order, so the same symbol statistics always
//! produce the same table and the same bitstream.

use crate::dct::codec::Symbol;
use std::collections::BTreeMap;

/// Symbol id of the end-of-block marker (outside the `(run << 6 | size)`
/// range of `Run` ids).
pub const EOB_ID: u16 = 0x8000;

/// Magnitude category of a nonzero level: the number of bits of
/// `|level|` (JPEG's "size"). `level == 0` never reaches the entropy
/// coder (zeros live in the run lengths).
pub fn level_size(level: i32) -> u8 {
    debug_assert!(level != 0, "zero levels are run-length encoded");
    (32 - level.unsigned_abs().leading_zeros()) as u8
}

/// Maps a run-length symbol to its entropy-coder id:
/// `zero_run << 6 | size` for `Run`, [`EOB_ID`] for `EndOfBlock`.
pub fn symbol_id(s: &Symbol) -> u16 {
    match *s {
        Symbol::Run { zero_run, level } => ((zero_run as u16) << 6) | level_size(level) as u16,
        Symbol::EndOfBlock => EOB_ID,
    }
}

/// JPEG amplitude encoding: positive levels verbatim, negative levels
/// in ones' complement of their magnitude (`level + 2^size − 1`), so
/// the top amplitude bit doubles as the sign.
pub fn amplitude_bits(level: i32, size: u8) -> u64 {
    if level > 0 {
        level as u64
    } else {
        (level as i64 + (1i64 << size) - 1) as u64
    }
}

/// Inverse of [`amplitude_bits`].
pub fn amplitude_decode(bits: u64, size: u8) -> i32 {
    if bits >> (size - 1) != 0 {
        bits as i32
    } else {
        (bits as i64 - (1i64 << size) + 1) as i32
    }
}

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    cur: u8,
    filled: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn put_bits(&mut self, value: u64, n: u8) {
        assert!(n <= 64, "at most 64 bits per put");
        for i in (0..n).rev() {
            self.cur = (self.cur << 1) | ((value >> i) & 1) as u8;
            self.filled += 1;
            if self.filled == 8 {
                self.out.push(self.cur);
                self.cur = 0;
                self.filled = 0;
            }
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.filled as u64
    }

    /// Flushes (zero-padding the final partial byte) and returns the
    /// byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.out.push(self.cur << (8 - self.filled));
        }
        self.out
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit, or `None` at end of stream.
    pub fn get_bit(&mut self) -> Option<u64> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u64)
    }

    /// Next `n` bits, MSB first.
    pub fn get_bits(&mut self, n: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()?;
        }
        Some(v)
    }
}

/// A canonical Huffman table over symbol ids.
///
/// Stored as `(id, code length)` pairs in canonical order (length,
/// then id); codes are assigned by the canonical rule, so the table
/// round-trips through its serialized form exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanTable {
    /// `(symbol id, code length)` in canonical order.
    entries: Vec<(u16, u8)>,
    /// id → (code, length) for encoding.
    codes: BTreeMap<u16, (u64, u8)>,
}

impl HuffmanTable {
    /// Builds a table from a symbol stream's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `symbols` is empty — an empty alphabet has no code.
    pub fn from_symbols(symbols: &[Symbol]) -> HuffmanTable {
        let mut counts: BTreeMap<u16, u64> = BTreeMap::new();
        for s in symbols {
            *counts.entry(symbol_id(s)).or_insert(0) += 1;
        }
        HuffmanTable::from_counts(&counts)
    }

    /// Builds a table from explicit id counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: &BTreeMap<u16, u64>) -> HuffmanTable {
        assert!(!counts.is_empty(), "empty symbol alphabet");
        // A single-symbol alphabet still needs one bit on the wire so
        // the decoder can count occurrences.
        if counts.len() == 1 {
            let (&id, _) = counts.iter().next().unwrap();
            return HuffmanTable::from_lengths(vec![(id, 1)]);
        }

        // Huffman build with deterministic tie-breaking: ties in weight
        // resolve by node creation order (leaves in ascending id order
        // first, merged nodes after, in merge order).
        struct Node {
            weight: u64,
            children: Option<(usize, usize)>,
            id: u16,
        }
        let mut nodes: Vec<Node> = counts
            .iter()
            .map(|(&id, &weight)| Node {
                weight,
                children: None,
                id,
            })
            .collect();
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..nodes.len())
            .map(|i| Reverse((nodes[i].weight, i)))
            .collect();
        while heap.len() > 1 {
            let Reverse((wa, a)) = heap.pop().unwrap();
            let Reverse((wb, b)) = heap.pop().unwrap();
            let idx = nodes.len();
            nodes.push(Node {
                weight: wa + wb,
                children: Some((a, b)),
                id: 0,
            });
            heap.push(Reverse((wa + wb, idx)));
        }
        let root = heap.pop().unwrap().0 .1;

        // Depth-first length assignment.
        let mut lengths: Vec<(u16, u8)> = Vec::with_capacity(counts.len());
        let mut stack = vec![(root, 0u8)];
        while let Some((idx, depth)) = stack.pop() {
            match nodes[idx].children {
                Some((a, b)) => {
                    stack.push((a, depth + 1));
                    stack.push((b, depth + 1));
                }
                None => lengths.push((nodes[idx].id, depth)),
            }
        }
        HuffmanTable::from_lengths(lengths)
    }

    /// Builds the canonical table from `(id, length)` pairs (the
    /// serialized form).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or contains a zero length.
    pub fn from_lengths(mut lengths: Vec<(u16, u8)>) -> HuffmanTable {
        assert!(!lengths.is_empty(), "empty code-length list");
        assert!(
            lengths.iter().all(|&(_, l)| l > 0),
            "zero-length Huffman code"
        );
        lengths.sort_by_key(|&(id, len)| (len, id));
        let mut codes = BTreeMap::new();
        let mut code = 0u64;
        let mut prev_len = lengths[0].1;
        for (i, &(id, len)) in lengths.iter().enumerate() {
            if i > 0 {
                code = (code + 1) << (len - prev_len);
                prev_len = len;
            }
            codes.insert(id, (code, len));
        }
        HuffmanTable {
            entries: lengths,
            codes,
        }
    }

    /// `(code, length)` of a symbol id, if present in the alphabet.
    pub fn code_of(&self, id: u16) -> Option<(u64, u8)> {
        self.codes.get(&id).copied()
    }

    /// The canonical `(id, length)` entries.
    pub fn entries(&self) -> &[(u16, u8)] {
        &self.entries
    }

    /// Serializes the table: `u16` entry count, then `(u16 id, u8 len)`
    /// per entry, little-endian, canonical order.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for &(id, len) in &self.entries {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(len);
        }
    }

    /// Parses a table serialized by [`HuffmanTable::serialize_into`],
    /// returning the table and the number of bytes consumed.
    pub fn parse(bytes: &[u8]) -> Result<(HuffmanTable, usize), String> {
        if bytes.len() < 2 {
            return Err("truncated Huffman table header".into());
        }
        let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if n == 0 {
            return Err("empty Huffman table".into());
        }
        let need = 2 + n * 3;
        if bytes.len() < need {
            return Err(format!(
                "truncated Huffman table: need {need} bytes, have {}",
                bytes.len()
            ));
        }
        let mut lengths = Vec::with_capacity(n);
        for i in 0..n {
            let at = 2 + i * 3;
            let id = u16::from_le_bytes([bytes[at], bytes[at + 1]]);
            let len = bytes[at + 2];
            if len == 0 {
                return Err("zero code length in Huffman table".into());
            }
            lengths.push((id, len));
        }
        // Reject non-canonical order and duplicate ids so a table
        // re-serializes to the exact input bytes.
        for w in lengths.windows(2) {
            if (w[1].1, w[1].0) <= (w[0].1, w[0].0) {
                return Err("Huffman table not in canonical order".into());
            }
        }
        // Kraft inequality: the canonical assignment must not overflow.
        let mut kraft = 0.0f64;
        for &(_, len) in &lengths {
            kraft += (0.5f64).powi(len as i32);
        }
        if kraft > 1.0 + 1e-12 {
            return Err("Huffman table violates the Kraft inequality".into());
        }
        Ok((HuffmanTable::from_lengths(lengths), need))
    }

    /// Builds the canonical decoder for this table.
    pub fn decoder(&self) -> HuffmanDecoder {
        // Per length: (length, first code, one-past-last code, base
        // index into the canonical entry list).
        let mut levels: Vec<(u8, u64, u64, usize)> = Vec::new();
        for (i, &(_, len)) in self.entries.iter().enumerate() {
            let (code, _) = self.codes[&self.entries[i].0];
            match levels.last_mut() {
                Some(l) if l.0 == len => l.2 = code + 1,
                _ => levels.push((len, code, code + 1, i)),
            }
        }
        HuffmanDecoder {
            entries: self.entries.clone(),
            levels,
        }
    }
}

/// Canonical Huffman decoder (bit-serial; the symbol streams here are
/// thousands of symbols, not billions).
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    entries: Vec<(u16, u8)>,
    levels: Vec<(u8, u64, u64, usize)>,
}

impl HuffmanDecoder {
    /// Decodes one symbol id, or `None` on truncated input / a code
    /// outside the table.
    pub fn decode_id(&self, reader: &mut BitReader<'_>) -> Option<u16> {
        let mut code = 0u64;
        let mut len = 0u8;
        let max_len = self.levels.last().map(|l| l.0)?;
        while len < max_len {
            code = (code << 1) | reader.get_bit()?;
            len += 1;
            if let Some(&(_, first, end, base)) =
                self.levels.iter().find(|l| l.0 == len)
            {
                if code >= first && code < end {
                    return Some(self.entries[base + (code - first) as usize].0);
                }
            }
        }
        None
    }
}

/// Entropy-encodes one block's symbols (codes + amplitude bits).
///
/// # Panics
///
/// Panics if a symbol is missing from `table` — tables must be built
/// from the same stream they encode.
pub fn encode_block_bits(symbols: &[Symbol], table: &HuffmanTable, w: &mut BitWriter) {
    for s in symbols {
        let id = symbol_id(s);
        let (code, len) = table
            .code_of(id)
            .unwrap_or_else(|| panic!("symbol id {id:#x} missing from Huffman table"));
        w.put_bits(code, len);
        if let Symbol::Run { level, .. } = *s {
            let size = level_size(level);
            w.put_bits(amplitude_bits(level, size), size);
        }
    }
}

/// Decodes one block's symbols: stops after the end-of-block marker or
/// once 64 coefficient positions are accounted for. Returns `None` on
/// truncated or malformed input.
pub fn decode_block_symbols(
    reader: &mut BitReader<'_>,
    decoder: &HuffmanDecoder,
) -> Option<Vec<Symbol>> {
    let mut symbols = Vec::new();
    let mut k = 0usize;
    while k < 64 {
        let id = decoder.decode_id(reader)?;
        if id == EOB_ID {
            symbols.push(Symbol::EndOfBlock);
            return Some(symbols);
        }
        let zero_run = (id >> 6) as u8;
        let size = (id & 0x3f) as u8;
        if size == 0 || size > 31 {
            return None;
        }
        let level = amplitude_decode(reader.get_bits(size)?, size);
        if level == 0 || level_size(level) != size {
            return None;
        }
        symbols.push(Symbol::Run { zero_run, level });
        k += zero_run as usize + 1;
    }
    Some(symbols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_round_trip_edges() {
        for level in [
            1, -1, 2, -2, 3, -3, 7, -7, 8, -8, 255, -255, 256, -256, 1023, -1024, 65535, -65536,
            i32::MAX, -i32::MAX,
        ] {
            let size = level_size(level);
            let bits = amplitude_bits(level, size);
            assert!(bits < (1u64 << size), "amplitude overflows size: {level}");
            assert_eq!(amplitude_decode(bits, size), level, "level {level}");
        }
    }

    #[test]
    fn level_size_matches_bit_count() {
        assert_eq!(level_size(1), 1);
        assert_eq!(level_size(-1), 1);
        assert_eq!(level_size(2), 2);
        assert_eq!(level_size(3), 2);
        assert_eq!(level_size(4), 3);
        assert_eq!(level_size(-1024), 11);
    }

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0, 1);
        w.put_bits(0xdead_beef, 32);
        w.put_bits(1, 13);
        assert_eq!(w.bit_len(), 49);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), Some(0b101));
        assert_eq!(r.get_bits(1), Some(0));
        assert_eq!(r.get_bits(32), Some(0xdead_beef));
        assert_eq!(r.get_bits(13), Some(1));
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.get_bits(8), Some(0xff));
        assert_eq!(r.get_bit(), None);
    }

    #[test]
    fn canonical_codes_are_prefix_free_and_ordered() {
        let mut counts = BTreeMap::new();
        counts.insert(1u16, 50u64);
        counts.insert(2, 20);
        counts.insert(3, 20);
        counts.insert(4, 5);
        counts.insert(5, 5);
        let table = HuffmanTable::from_counts(&counts);
        let codes: Vec<(u64, u8)> = (1..=5).map(|id| table.code_of(id).unwrap()).collect();
        // Prefix freedom: no code is a prefix of another.
        for (i, &(ca, la)) in codes.iter().enumerate() {
            for (j, &(cb, lb)) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (short, slen, long, llen) = if la <= lb {
                    (ca, la, cb, lb)
                } else {
                    (cb, lb, ca, la)
                };
                assert_ne!(long >> (llen - slen), short, "prefix collision");
            }
        }
        // The most frequent symbol has the shortest code.
        assert!(codes[0].1 <= codes[1].1);
    }

    #[test]
    fn single_symbol_alphabet_gets_one_bit() {
        let mut counts = BTreeMap::new();
        counts.insert(EOB_ID, 7u64);
        let table = HuffmanTable::from_counts(&counts);
        assert_eq!(table.code_of(EOB_ID), Some((0, 1)));
    }

    #[test]
    fn table_serialization_round_trips() {
        let mut counts = BTreeMap::new();
        for (id, c) in [(3u16, 10u64), (64, 4), (EOB_ID, 30), (130, 1), (7, 1)] {
            counts.insert(id, c);
        }
        let table = HuffmanTable::from_counts(&counts);
        let mut bytes = Vec::new();
        table.serialize_into(&mut bytes);
        let (parsed, used) = HuffmanTable::parse(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, table);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(HuffmanTable::parse(&[]).is_err());
        assert!(HuffmanTable::parse(&[1, 0]).is_err()); // truncated entries
        // Duplicate id (non-canonical order).
        let mut bytes = Vec::new();
        HuffmanTable::from_lengths(vec![(1, 1), (2, 2), (3, 2)]).serialize_into(&mut bytes);
        let mut dup = bytes.clone();
        dup[5..7].copy_from_slice(&1u16.to_le_bytes()); // wait: entry layout is (id lo, id hi, len)
        let _ = HuffmanTable::parse(&dup); // must not panic, may err
        // Kraft violation: three codes of length 1.
        let mut kraft = Vec::new();
        kraft.extend_from_slice(&3u16.to_le_bytes());
        for id in [1u16, 2, 3] {
            kraft.extend_from_slice(&id.to_le_bytes());
            kraft.push(1);
        }
        assert!(HuffmanTable::parse(&kraft).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Any well-formed symbol stream survives symbols → bits →
        /// symbols bit-exactly, independent of content statistics.
        #[test]
        fn random_symbol_streams_round_trip(seed in 0u64..u64::MAX, n_blocks in 1usize..12) {
            // SplitMix64: deterministic stream from the drawn seed.
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut blocks: Vec<Vec<Symbol>> = Vec::new();
            for _ in 0..n_blocks {
                let mut symbols = Vec::new();
                let mut k = 0usize;
                loop {
                    if k >= 64 || next() % 4 == 0 {
                        if k < 64 {
                            symbols.push(Symbol::EndOfBlock);
                        }
                        break;
                    }
                    let zero_run = (next() % (64 - k as u64).min(16)) as u8;
                    if k + zero_run as usize >= 64 {
                        symbols.push(Symbol::EndOfBlock);
                        break;
                    }
                    let magnitude = 1 + (next() % 2047) as i32;
                    let level = if next() % 2 == 0 { magnitude } else { -magnitude };
                    symbols.push(Symbol::Run { zero_run, level });
                    k += zero_run as usize + 1;
                }
                blocks.push(symbols);
            }
            let all: Vec<Symbol> = blocks.iter().flatten().copied().collect();
            let table = HuffmanTable::from_symbols(&all);
            let mut w = BitWriter::new();
            for b in &blocks {
                encode_block_bits(b, &table, &mut w);
            }
            let bytes = w.finish();
            let decoder = table.decoder();
            let mut r = BitReader::new(&bytes);
            for b in &blocks {
                let back = decode_block_symbols(&mut r, &decoder);
                proptest::prop_assert_eq!(back.as_deref(), Some(b.as_slice()));
            }
        }
    }

    #[test]
    fn stream_round_trip_is_bit_exact() {
        use crate::dct::codec::{encode_block, Symbol};
        use crate::dct::forward_block;
        // Build symbol streams from a mix of real coefficient blocks.
        let mut blocks = Vec::new();
        for seed in 0..6u64 {
            let mut block = [[0.0; 8]; 8];
            for (y, row) in block.iter_mut().enumerate() {
                for (x, p) in row.iter_mut().enumerate() {
                    let v = (seed * 37 + (y * 8 + x) as u64 * 101) % 256;
                    *p = v as f64 - 128.0;
                }
            }
            blocks.push(encode_block(&forward_block(&block)));
        }
        blocks.push(vec![Symbol::EndOfBlock]); // all-zero block
        let all: Vec<Symbol> = blocks.iter().flatten().copied().collect();
        let table = HuffmanTable::from_symbols(&all);
        let mut w = BitWriter::new();
        for b in &blocks {
            encode_block_bits(b, &table, &mut w);
        }
        let bytes = w.finish();
        let decoder = table.decoder();
        let mut r = BitReader::new(&bytes);
        for b in &blocks {
            let back = decode_block_symbols(&mut r, &decoder).expect("decode");
            assert_eq!(&back, b);
        }
    }
}
