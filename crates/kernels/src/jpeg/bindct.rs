//! BinDCT — a multiplierless approximate forward DCT, the codec's
//! `approxfun` pairing partner for the exact RealDCT transform
//! ([`crate::dct::forward_block`]).
//!
//! The transform factors the 8-point DCT-II into Chen's butterfly
//! (even/odd symmetry split, a 4-point even stage and four odd-part
//! rotations) and then replaces every irrational rotation constant with
//! a **dyadic rational** (`k/2ⁿ`) — each multiply becomes a handful of
//! shifts and adds on fixed-point hardware, which is exactly the
//! shift/add lifting trick of the BinDCT family and of the
//! `BinDct` mode in DCT-based encoders. Values here stay `f64` (the
//! analysis pipeline and quality metrics are floating point); what the
//! approximation changes is the *constant set* and the *op budget*:
//! [`BINDCT_OPS_PER_BLOCK`] cheap shift/add units instead of
//! [`REALDCT_OPS_PER_BLOCK`](crate::jpeg::REALDCT_OPS_PER_BLOCK)
//! multiply-accumulates.
//!
//! Precision is deliberately asymmetric, as in the published BinDCT
//! configurations: the DC/X4 path uses a 9-bit dyadic (error `≈ 4e-5`,
//! so flat image regions survive almost exactly — a constant input has
//! zero odd part and zero `X2`/`X6` drive, making DC the *only* error
//! source there), while the AC rotations use coarse 5-bit dyadics whose
//! error only materialises on blocks with real high-frequency content.
//! That asymmetry is what makes per-block significance ordering
//! effective: the blocks BinDCT hurts are the blocks the analysis
//! ranks as significant.

/// The `/2`-scaled constant set of one 8-point Chen butterfly pass.
///
/// `dc` multiplies the even sums for `X0`/`X4`, (`c1`,`s1`) is the
/// `X2`/`X6` rotation, and `o` holds the four odd-part constants
/// `cos(kπ/16)/2` for `k = 1, 3, 5, 7`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// `1/(2√2)` or its dyadic approximation.
    pub dc: f64,
    /// `cos(π/8)/2` or its dyadic approximation.
    pub c1: f64,
    /// `sin(π/8)/2` or its dyadic approximation.
    pub s1: f64,
    /// `cos(kπ/16)/2` for `k = 1, 3, 5, 7`.
    pub o: [f64; 4],
}

/// Exact (irrational) constants: with these the butterfly reproduces
/// the orthonormal DCT-II to rounding error — the reference point the
/// BinDCT error bound is measured against.
pub const EXACT: Constants = Constants {
    dc: 0.353_553_390_593_273_8,      // 1/(2√2)
    c1: 0.461_939_766_255_643_37,     // cos(π/8)/2
    s1: 0.191_341_716_182_544_86,     // sin(π/8)/2
    o: [
        0.490_392_640_201_615_2,      // cos(π/16)/2
        0.415_734_806_151_272_7,      // cos(3π/16)/2
        0.277_785_116_509_801_14,     // cos(5π/16)/2
        0.097_545_161_008_064_16,     // cos(7π/16)/2
    ],
};

/// Dyadic BinDCT constants (shift/add realizable): `181/512` on the
/// DC path, 5-bit `k/32` approximations on the AC rotations.
pub const BIN: Constants = Constants {
    dc: 181.0 / 512.0,  // 0.35351563 vs 0.35355339
    c1: 15.0 / 32.0,    // 0.46875    vs 0.46193977
    s1: 6.0 / 32.0,     // 0.1875     vs 0.19134172
    o: [
        16.0 / 32.0,    // 0.5        vs 0.49039264
        13.0 / 32.0,    // 0.40625    vs 0.41573481
        9.0 / 32.0,     // 0.28125    vs 0.27778512
        3.0 / 32.0,     // 0.09375    vs 0.09754516
    ],
};

/// Shift/add work units of one 1-D butterfly pass (8 symmetry adds,
/// the 4-add/2-mul even sums, the 8-op `X2`/`X6` rotation pair and
/// four 7-op odd rotations) — the unit [`BINDCT_OPS_PER_BLOCK`]
/// aggregates.
pub const OPS_PER_PASS: u64 = 52;

/// Shift/add work units of one full 8×8 BinDCT (16 butterfly passes).
pub const BINDCT_OPS_PER_BLOCK: u64 = 16 * OPS_PER_PASS;

/// One 8-point Chen butterfly pass with the given constant set:
/// `constants = `[`EXACT`] gives the orthonormal DCT-II, [`BIN`] the
/// BinDCT approximation.
pub fn butterfly_1d(x: &[f64; 8], k: &Constants) -> [f64; 8] {
    // Even/odd symmetry split.
    let e = [x[0] + x[7], x[1] + x[6], x[2] + x[5], x[3] + x[4]];
    let o = [x[0] - x[7], x[1] - x[6], x[2] - x[5], x[3] - x[4]];
    // 4-point even stage.
    let s03 = e[0] + e[3];
    let s12 = e[1] + e[2];
    let d03 = e[0] - e[3];
    let d12 = e[1] - e[2];
    [
        (s03 + s12) * k.dc,
        o[0] * k.o[0] + o[1] * k.o[1] + o[2] * k.o[2] + o[3] * k.o[3],
        d03 * k.c1 + d12 * k.s1,
        o[0] * k.o[1] - o[1] * k.o[3] - o[2] * k.o[0] - o[3] * k.o[2],
        (s03 - s12) * k.dc,
        o[0] * k.o[2] - o[1] * k.o[0] + o[2] * k.o[3] + o[3] * k.o[1],
        d03 * k.s1 - d12 * k.c1,
        o[0] * k.o[3] - o[1] * k.o[2] + o[2] * k.o[1] - o[3] * k.o[0],
    ]
}

/// Separable 8×8 forward transform with the given constant set: rows
/// first, then columns, matching the `coeffs[v][u]` layout of
/// [`forward_block`](crate::dct::forward_block).
pub fn forward_block_with(block: &[[f64; 8]; 8], k: &Constants) -> [[f64; 8]; 8] {
    let mut rows = [[0.0; 8]; 8];
    for (y, row) in block.iter().enumerate() {
        rows[y] = butterfly_1d(row, k);
    }
    let mut out = [[0.0; 8]; 8];
    for u in 0..8 {
        let col = [
            rows[0][u], rows[1][u], rows[2][u], rows[3][u], rows[4][u], rows[5][u], rows[6][u],
            rows[7][u],
        ];
        let t = butterfly_1d(&col, k);
        for (v, row) in out.iter_mut().enumerate() {
            row[u] = t[v];
        }
    }
    out
}

/// The BinDCT forward transform of an 8×8 block — the approximate
/// body of every per-block codec task.
pub fn forward_block_bin(block: &[[f64; 8]; 8]) -> [[f64; 8]; 8] {
    forward_block_with(block, &BIN)
}

/// Analytic worst-case absolute coefficient error of the 2-D BinDCT
/// against the exact DCT for inputs bounded by `max_abs` (the level-
/// shifted pixel range, 128): first-pass error amplified by the exact
/// second pass, plus second-pass error on first-pass magnitudes.
///
/// The bound is loose by design (it triangle-inequalities both passes)
/// but cheap to state and easy to test against; observed errors on
/// random blocks sit well under half of it.
pub fn error_bound(max_abs: f64) -> f64 {
    // Worst absolute row error sum of one pass (the odd rotations):
    // 2·Σ|Δcos(kπ/16)/2|.
    let row_err: f64 = 2.0
        * (0..4)
            .map(|i| (BIN.o[i] - EXACT.o[i]).abs())
            .sum::<f64>();
    // Worst row L1 norm of the exact pass (the DC row: 8·dc) — what a
    // first-pass value can grow to, and what amplifies first-pass error.
    let row_l1 = 8.0 * EXACT.dc;
    let first_pass_err = row_err * max_abs;
    let first_pass_mag = row_l1 * max_abs;
    // Δ·X·Eᵀ + E·X·Δᵀ + Δ·X·Δᵀ terms of B X Bᵀ − E X Eᵀ with B = E + Δ.
    first_pass_err * row_l1 + row_err * first_pass_mag + row_err * first_pass_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::forward_block;
    use scorpio_bench_shim::SplitMix64;

    // Tiny local SplitMix64 so the tests stay deterministic without a
    // dev-dependency on the bench crate.
    mod scorpio_bench_shim {
        pub struct SplitMix64(pub u64);
        impl SplitMix64 {
            pub fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
            pub fn pixel(&mut self) -> f64 {
                (self.next_u64() % 256) as f64 - 128.0
            }
        }
    }

    fn random_block(rng: &mut SplitMix64) -> [[f64; 8]; 8] {
        let mut b = [[0.0; 8]; 8];
        for row in &mut b {
            for p in row.iter_mut() {
                *p = rng.pixel();
            }
        }
        b
    }

    #[test]
    fn exact_butterfly_is_the_dct() {
        let mut rng = SplitMix64(7);
        for _ in 0..50 {
            let block = random_block(&mut rng);
            let direct = forward_block(&block);
            let chen = forward_block_with(&block, &EXACT);
            for v in 0..8 {
                for u in 0..8 {
                    assert!(
                        (direct[v][u] - chen[v][u]).abs() < 1e-9,
                        "({u},{v}): {} vs {}",
                        direct[v][u],
                        chen[v][u]
                    );
                }
            }
        }
    }

    #[test]
    fn bindct_error_within_analytic_bound() {
        let bound = error_bound(128.0);
        assert!(bound < 45.0, "bound unexpectedly loose: {bound}");
        let mut rng = SplitMix64(21);
        let mut observed: f64 = 0.0;
        for _ in 0..500 {
            let block = random_block(&mut rng);
            let exact = forward_block_with(&block, &EXACT);
            let bin = forward_block_bin(&block);
            for v in 0..8 {
                for u in 0..8 {
                    observed = observed.max((exact[v][u] - bin[v][u]).abs());
                }
            }
        }
        assert!(
            observed <= bound,
            "observed error {observed} exceeds analytic bound {bound}"
        );
        // The approximation must actually approximate: errors are real
        // but bounded well below the coarsest quantisation step.
        assert!(observed > 0.1, "BinDCT suspiciously exact: {observed}");
    }

    #[test]
    fn bindct_dc_is_near_exact() {
        // Flat blocks have zero odd part and zero X2/X6 drive, so the
        // only error path is the 9-bit DC dyadic — sub-0.5 absolute on
        // the extreme ±128 flat block, i.e. invisible after the 16-step
        // DC quantiser.
        for level in [-128.0, -1.0, 0.0, 63.0, 127.0] {
            let block = [[level; 8]; 8];
            let exact = forward_block_with(&block, &EXACT);
            let bin = forward_block_bin(&block);
            assert!(
                (exact[0][0] - bin[0][0]).abs() < 0.5,
                "DC error at level {level}: {} vs {}",
                exact[0][0],
                bin[0][0]
            );
            for (v, row) in bin.iter().enumerate() {
                for (u, &coeff) in row.iter().enumerate() {
                    if (u, v) != (0, 0) {
                        assert!(
                            coeff.abs() < 1e-9,
                            "flat block leaked AC energy at ({u},{v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bindct_is_linear() {
        // Shift/add networks are linear maps; scaling the input scales
        // the output. Guards against accidentally introducing a
        // nonlinear "optimisation" later.
        let mut rng = SplitMix64(3);
        let block = random_block(&mut rng);
        let mut doubled = block;
        for row in &mut doubled {
            for p in row.iter_mut() {
                *p *= 2.0;
            }
        }
        let a = forward_block_bin(&block);
        let b = forward_block_bin(&doubled);
        for v in 0..8 {
            for u in 0..8 {
                assert!((b[v][u] - 2.0 * a[v][u]).abs() < 1e-9);
            }
        }
    }
}
