//! End-to-end approximate grayscale JPEG encoder — the first scenario
//! whose output artifact (a decodable image) a human can look at.
//!
//! The pipeline extends [`crate::dct`] from per-block round trips
//! to a complete codec: 8×8 tiling with edge padding → level shift →
//! forward DCT → quantisation → zig-zag run-length symbols
//! ([`crate::dct::codec`]) → canonical [`huffman`] entropy
//! coding into a real bitstream. Bitrate is therefore measured in
//! actual bits, and [`decode`] reconstructs a viewable image from the
//! bytes alone.
//!
//! The approximation is the paper's `approxfun` pairing at block
//! granularity: every block is a [`TaskGroup`] task whose **accurate**
//! body runs the exact [`dct::forward_block`] and whose **approximate**
//! body runs the shift/add [`bindct`] lifting transform. Per-block
//! significance comes from the framework's own analysis
//! ([`dct::analysis_blocks`] — all blocks share one tape shape, so the
//! trace is recorded once and replayed per block), and the
//! `taskwait(ratio)` / `taskwait_adaptive` knobs choose which blocks
//! get the exact transform. Busy blocks score high and are protected
//! first; flat blocks degrade gracefully under BinDCT (its DC constant
//! is near-exact by design, see [`bindct`]).

use std::sync::Mutex;

use scorpio_core::{AnalysisError, ParallelAnalysis};
use scorpio_quality::GrayImage;
use scorpio_runtime::controller::adaptive::AdaptiveController;
use scorpio_runtime::{ExecutionStats, Executor, TaskCtx, TaskGroup};

use crate::dct::{self, codec, BLOCK};

pub mod bindct;
pub mod huffman;

use huffman::{BitReader, BitWriter, HuffmanTable};

/// Work units of one exact forward DCT block (64 coefficients × 64
/// multiply-adds), the accurate-body cost the energy model prices.
pub const REALDCT_OPS_PER_BLOCK: u64 = 64 * 64;

/// Upper bound on normalised block significance, kept strictly below
/// 1.0: significance exactly 1.0 forces accurate execution in
/// [`TaskGroup::taskwait`], which would make `ratio = 0` unable to
/// select the all-BinDCT operating point.
pub const SIGNIFICANCE_CEILING: f64 = 31.0 / 32.0;

/// Container magic of the encoded stream (not JFIF — the scenario's
/// human-viewable artifact is the round-tripped `.pgm`, the container
/// only needs to be self-describing).
pub const MAGIC: [u8; 4] = *b"SJPG";
/// Container format version.
pub const VERSION: u8 = 1;

/// Pixel cap for [`decode`] (2^26 ≈ 67 MP) so a malformed header
/// cannot request an absurd allocation.
const MAX_PIXELS: u64 = 1 << 26;

/// Error of the codec's fallible entry points.
#[derive(Debug)]
pub enum JpegError {
    /// The significance analysis failed.
    Analysis(AnalysisError),
    /// The encoded stream is malformed or truncated.
    Malformed(String),
}

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JpegError::Analysis(e) => write!(f, "significance analysis failed: {e}"),
            JpegError::Malformed(msg) => write!(f, "malformed jpeg stream: {msg}"),
        }
    }
}

impl std::error::Error for JpegError {}

impl From<AnalysisError> for JpegError {
    fn from(e: AnalysisError) -> Self {
        JpegError::Analysis(e)
    }
}

/// Options of the one-call [`encode`] entry point.
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// The `taskwait` quality knob: fraction of blocks guaranteed the
    /// exact DCT (chosen by significance, descending).
    pub ratio: f64,
    /// Pixel-noise radius of the significance analysis (the paper's
    /// profiled input ranges).
    pub radius: f64,
    /// Worker threads for both task execution and analysis replay.
    pub threads: usize,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            ratio: 1.0,
            radius: 8.0,
            threads: 1,
        }
    }
}

/// An encoded image: the container bytes plus the run's telemetry.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// The complete container (header + Huffman table + bitstream).
    pub bytes: Vec<u8>,
    /// Source image width in pixels.
    pub width: usize,
    /// Source image height in pixels.
    pub height: usize,
    /// Entropy-coded payload length in bits (excluding the container
    /// header and table).
    pub payload_bits: u64,
    /// Task-execution statistics of the transform stage plus the
    /// accurately-counted codec epilogue.
    pub stats: ExecutionStats,
    /// The normalised per-block significance used for scheduling.
    pub significance: Vec<f64>,
}

impl Encoded {
    /// Total encoded size in bits (the whole container).
    pub fn bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// Bits per source pixel — the bitrate axis of the QoR curves.
    pub fn bits_per_pixel(&self) -> f64 {
        self.bits() as f64 / (self.width * self.height) as f64
    }

    /// Number of blocks transformed with the exact DCT.
    pub fn accurate_blocks(&self) -> usize {
        self.stats.accurate
    }

    /// Number of blocks transformed with BinDCT.
    pub fn approx_blocks(&self) -> usize {
        self.stats.approximate
    }
}

/// Extracts the image's 8×8 blocks in row-major block order, with edge
/// clamping for dimensions that are not multiples of 8 (same padding as
/// the [`dct`] kernel).
pub fn tile_blocks(img: &GrayImage) -> Vec<[[f64; BLOCK]; BLOCK]> {
    let blocks_x = img.width().div_ceil(BLOCK);
    let blocks_y = img.height().div_ceil(BLOCK);
    let mut blocks = Vec::with_capacity(blocks_x * blocks_y);
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            let mut block = [[0.0; BLOCK]; BLOCK];
            for (y, row) in block.iter_mut().enumerate() {
                for (x, p) in row.iter_mut().enumerate() {
                    *p = img.get_clamped((bx * BLOCK + x) as isize, (by * BLOCK + y) as isize);
                }
            }
            blocks.push(block);
        }
    }
    blocks
}

/// Per-block significance scores from the framework's own analysis,
/// normalised into `[0, `[`SIGNIFICANCE_CEILING`]`]`.
///
/// Each block runs the full [`dct::register_block`] pipeline analysis —
/// all blocks share one tape shape, so `engine` records the ~100k-node
/// trace once and replays it per block. A block's score is first-order
/// error propagation through its map: each **AC** coefficient's
/// significance (DC is near-exact under BinDCT and would flatten the
/// ranking) weighted by the post-quantisation damage BinDCT would
/// actually do to this block's content — the squared dequantised gap
/// between the exact and the BinDCT coefficient's quantisation levels.
/// The map's significance is normalised per coefficient across the
/// image first: the raw Fig. 4 profile weights low frequencies heavily,
/// but BinDCT's error lives in the high-frequency AC band, so it is the
/// map's *spatial* (per-block) signal that must drive the ranking, not
/// its frequency profile. Scores are then scaled by the image-wide
/// maximum: blocks whose significant coefficients BinDCT visibly
/// perturbs rank highest; blocks where the perturbation quantises away
/// keep only a small expected-damage tie-break score.
///
/// # Errors
///
/// Propagates analysis failures of the lowest-indexed failing block.
///
/// # Panics
///
/// Panics if `radius` is negative.
pub fn analyze(
    img: &GrayImage,
    radius: f64,
    engine: &ParallelAnalysis,
) -> Result<Vec<f64>, AnalysisError> {
    let _span = scorpio_obs::span("kernel.jpeg.analyze");
    let blocks = tile_blocks(img);
    let maps = dct::analysis_blocks(&blocks, radius, engine)?;
    // Image-wide mean significance per coefficient, the normaliser that
    // strips the map's frequency profile.
    let mut mean = [[0.0f64; BLOCK]; BLOCK];
    let mut count = [[0usize; BLOCK]; BLOCK];
    for map in &maps {
        for (v, row) in map.iter().enumerate() {
            for (u, &s) in row.iter().enumerate() {
                if s.is_finite() {
                    mean[v][u] += s;
                    count[v][u] += 1;
                }
            }
        }
    }
    for (v, row) in mean.iter_mut().enumerate() {
        for (u, m) in row.iter_mut().enumerate() {
            *m = if count[v][u] > 0 {
                *m / count[v][u] as f64
            } else {
                0.0
            };
        }
    }
    let scores: Vec<f64> = maps
        .iter()
        .zip(&blocks)
        .map(|(map, block)| {
            // The damage BinDCT does to *this* block, measured on the
            // level-shifted pixels the encoder actually transforms.
            let mut shifted = *block;
            for row in &mut shifted {
                for p in row {
                    *p -= 128.0;
                }
            }
            let exact = dct::forward_block(&shifted);
            let approx = bindct::forward_block_bin(&shifted);
            let mut sum = 0.0;
            for (v, row) in map.iter().enumerate() {
                for (u, &s) in row.iter().enumerate() {
                    if (u, v) != (0, 0) && s.is_finite() {
                        let q = dct::QUANT[v][u];
                        let gap = ((exact[v][u] / q).round() - (approx[v][u] / q).round()) * q;
                        let delta = (exact[v][u] - approx[v][u]).abs();
                        let weight = if mean[v][u] > 0.0 { s / mean[v][u] } else { 1.0 };
                        // Measured flip damage ranks first; the small
                        // q·δ term is the *expected* damage under a
                        // uniform-phase model (flip probability δ/q ×
                        // squared step q²) and orders the zero-flip
                        // blocks, strictly below any real flip.
                        sum += weight * (gap * gap + 1e-3 * q * delta);
                    }
                }
            }
            sum
        })
        .collect();
    let max = scores.iter().cloned().fold(0.0f64, f64::max);
    if !(max.is_finite() && max > 0.0) {
        // Degenerate image (e.g. fully flat): every block is equally
        // expendable.
        return Ok(vec![0.5 * SIGNIFICANCE_CEILING; scores.len()]);
    }
    Ok(scores
        .iter()
        .map(|&s| (s / max * SIGNIFICANCE_CEILING).clamp(0.0, SIGNIFICANCE_CEILING))
        .collect())
}

/// How the transform task group is synchronised.
enum Waiter<'c> {
    /// Constant `taskwait ratio(r)`.
    Ratio(f64),
    /// One step of the closed loop: the controller commands the ratio
    /// and the achieved schedule is recorded back.
    Adaptive(&'c mut AdaptiveController),
}

/// The shared encode core: transform blocks under the given scheduling
/// policy, then quantise, run-length and entropy-code accurately.
fn encode_core(
    img: &GrayImage,
    executor: &Executor,
    significance: &[f64],
    waiter: Waiter<'_>,
) -> Encoded {
    let _span = scorpio_obs::span("kernel.jpeg.encode");
    let (w, h) = (img.width(), img.height());
    let blocks = tile_blocks(img);
    let n_blocks = blocks.len();
    assert_eq!(
        significance.len(),
        n_blocks,
        "significance length {} does not match {n_blocks} blocks",
        significance.len()
    );

    // Level shift: JPEG transforms pixels centred on zero.
    let shifted: Vec<[[f64; BLOCK]; BLOCK]> = blocks
        .iter()
        .map(|b| {
            let mut s = *b;
            for row in &mut s {
                for p in row {
                    *p -= 128.0;
                }
            }
            s
        })
        .collect();

    // Per-block coefficient slots. Both task bodies of a block need
    // write access to the same slot, but only one of them ever runs —
    // an uncontended mutex per block expresses that to the borrow
    // checker without unsafe code.
    let slots: Vec<Mutex<[[f64; BLOCK]; BLOCK]>> = (0..n_blocks)
        .map(|_| Mutex::new([[0.0; BLOCK]; BLOCK]))
        .collect();

    let mut stats = {
        let mut group = TaskGroup::new("jpeg-blocks");
        for (i, block) in shifted.iter().enumerate() {
            let slot = &slots[i];
            group.spawn(
                significance[i],
                move |ctx: &TaskCtx| {
                    ctx.count_accurate_ops(REALDCT_OPS_PER_BLOCK);
                    *slot.lock().unwrap() = dct::forward_block(block);
                },
                Some(move |ctx: &TaskCtx| {
                    ctx.count_approx_ops(bindct::BINDCT_OPS_PER_BLOCK);
                    *slot.lock().unwrap() = bindct::forward_block_bin(block);
                }),
            );
        }
        match waiter {
            Waiter::Ratio(ratio) => group.taskwait(executor, ratio),
            Waiter::Adaptive(controller) => group.taskwait_adaptive(executor, controller),
        }
    };

    // Accurate codec epilogue: quantise + zig-zag run-length per block,
    // then entropy-code the shared symbol stream.
    let mut block_symbols = Vec::with_capacity(n_blocks);
    let mut total_symbols = 0u64;
    for slot in slots {
        let coeffs = slot.into_inner().unwrap();
        let symbols = codec::encode_block(&coeffs);
        total_symbols += symbols.len() as u64;
        block_symbols.push(symbols);
    }
    let all: Vec<codec::Symbol> = block_symbols.iter().flatten().copied().collect();
    let table = HuffmanTable::from_symbols(&all);
    let mut writer = BitWriter::new();
    for symbols in &block_symbols {
        huffman::encode_block_bits(symbols, &table, &mut writer);
    }
    let payload_bits = writer.bit_len();
    // Quantise/scan (2×64 per block) plus one unit per emitted symbol.
    stats.accurate_ops += n_blocks as u64 * 128 + total_symbols;

    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    bytes.extend_from_slice(&(w as u32).to_le_bytes());
    bytes.extend_from_slice(&(h as u32).to_le_bytes());
    table.serialize_into(&mut bytes);
    bytes.extend_from_slice(&writer.finish());

    scorpio_obs::count("jpeg.blocks", n_blocks as u64);
    scorpio_obs::count("jpeg.payload_bits", payload_bits);

    Encoded {
        bytes,
        width: w,
        height: h,
        payload_bits,
        stats,
        significance: significance.to_vec(),
    }
}

/// One-call encode: analyses significance, schedules the block
/// transforms at `opts.ratio`, and entropy-codes the result.
///
/// ```
/// use scorpio_kernels::jpeg;
/// use scorpio_quality::{psnr_images, value_noise};
///
/// let img = value_noise(24, 16, 7);
/// let enc = jpeg::encode(&img, &jpeg::EncodeOptions::default()).unwrap();
/// let back = jpeg::decode(&enc.bytes).unwrap();
/// assert_eq!((back.width(), back.height()), (24, 16));
/// // Full-ratio encode is plain (quantisation-lossy) JPEG quality.
/// assert!(psnr_images(&img, &back) > 20.0);
/// assert!(enc.bits() > 0);
/// ```
///
/// # Errors
///
/// Propagates significance-analysis failures.
///
/// # Panics
///
/// Panics if `opts.ratio` is outside `[0, 1]`, `opts.radius` is
/// negative, or `opts.threads` is zero.
pub fn encode(img: &GrayImage, opts: &EncodeOptions) -> Result<Encoded, JpegError> {
    let engine = ParallelAnalysis::new(opts.threads);
    let significance = analyze(img, opts.radius, &engine)?;
    let executor = Executor::new(opts.threads);
    Ok(encode_with_significance(
        img,
        &executor,
        &significance,
        opts.ratio,
    ))
}

/// Encodes with precomputed per-block significance — the entry point
/// for ratio sweeps, which analyse once and encode many times.
///
/// # Panics
///
/// Panics if `significance.len()` does not match the image's block
/// count or `ratio` is outside `[0, 1]`.
pub fn encode_with_significance(
    img: &GrayImage,
    executor: &Executor,
    significance: &[f64],
    ratio: f64,
) -> Encoded {
    encode_core(img, executor, significance, Waiter::Ratio(ratio))
}

/// One step of the closed adaptive loop: encodes at the ratio the
/// controller currently commands and records the achieved schedule back
/// into it. The caller completes the loop by measuring quality (PSNR of
/// the decode against the full-ratio reconstruction) and passing it to
/// [`AdaptiveController::observe`].
///
/// # Panics
///
/// Panics if `significance.len()` does not match the image's block
/// count.
pub fn encode_adaptive(
    img: &GrayImage,
    executor: &Executor,
    significance: &[f64],
    controller: &mut AdaptiveController,
) -> Encoded {
    encode_core(img, executor, significance, Waiter::Adaptive(controller))
}

/// Decodes an encoded container back into an image: entropy decode →
/// dequantise → inverse DCT → level unshift → clip.
///
/// The inverse transform is always exact — approximation lives on the
/// encode side, as in the paper's codec scenario.
///
/// # Errors
///
/// Returns [`JpegError::Malformed`] on bad magic/version, absurd
/// dimensions, a corrupt Huffman table, or a truncated bitstream.
pub fn decode(bytes: &[u8]) -> Result<GrayImage, JpegError> {
    let _span = scorpio_obs::span("kernel.jpeg.decode");
    if bytes.len() < 13 {
        return Err(JpegError::Malformed("container shorter than header".into()));
    }
    if bytes[..4] != MAGIC {
        return Err(JpegError::Malformed("bad magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(JpegError::Malformed(format!(
            "unsupported version {}",
            bytes[4]
        )));
    }
    let w = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let h = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
    if w == 0 || h == 0 {
        return Err(JpegError::Malformed("zero dimension".into()));
    }
    if w as u64 * h as u64 > MAX_PIXELS {
        return Err(JpegError::Malformed(format!(
            "image {w}x{h} exceeds the {MAX_PIXELS}-pixel decode cap"
        )));
    }
    let (table, table_len) =
        HuffmanTable::parse(&bytes[13..]).map_err(JpegError::Malformed)?;
    let decoder = table.decoder();
    let mut reader = BitReader::new(&bytes[13 + table_len..]);

    let blocks_x = w.div_ceil(BLOCK);
    let blocks_y = h.div_ceil(BLOCK);
    let mut img = GrayImage::new(w, h);
    for b in 0..blocks_x * blocks_y {
        let symbols = huffman::decode_block_symbols(&mut reader, &decoder)
            .ok_or_else(|| JpegError::Malformed(format!("truncated bitstream at block {b}")))?;
        let coeffs = codec::decode_block(&symbols);
        let recon = dct::inverse_block(&coeffs);
        let (bx, by) = (b % blocks_x, b / blocks_x);
        for (y, row) in recon.iter().enumerate() {
            for (x, &p) in row.iter().enumerate() {
                let ix = bx * BLOCK + x;
                let iy = by * BLOCK + y;
                if ix < w && iy < h {
                    img.set(ix, iy, (p + 128.0).clamp(0.0, 255.0));
                }
            }
        }
    }
    Ok(img)
}

/// Structural bit-exactness check of an encoded container: parses the
/// header and table, entropy-decodes every block's symbol stream, then
/// re-encodes from scratch (statistics → canonical table → bits). The
/// result must reproduce `bytes` exactly — any loss, reordering, or
/// table nondeterminism in the entropy layer fails the comparison.
///
/// # Errors
///
/// Returns [`JpegError::Malformed`] when the container cannot be parsed
/// (the check needs a decodable stream to re-encode).
pub fn verify_bitstream(bytes: &[u8]) -> Result<bool, JpegError> {
    if bytes.len() < 13 || bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(JpegError::Malformed("not a SJPG v1 container".into()));
    }
    let w = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let h = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
    if w == 0 || h == 0 || w as u64 * h as u64 > MAX_PIXELS {
        return Err(JpegError::Malformed("bad dimensions".into()));
    }
    let (table, table_len) =
        HuffmanTable::parse(&bytes[13..]).map_err(JpegError::Malformed)?;
    let decoder = table.decoder();
    let mut reader = BitReader::new(&bytes[13 + table_len..]);
    let n_blocks = w.div_ceil(BLOCK) * h.div_ceil(BLOCK);
    let mut block_symbols = Vec::with_capacity(n_blocks);
    for b in 0..n_blocks {
        let symbols = huffman::decode_block_symbols(&mut reader, &decoder)
            .ok_or_else(|| JpegError::Malformed(format!("truncated bitstream at block {b}")))?;
        block_symbols.push(symbols);
    }
    let all: Vec<codec::Symbol> = block_symbols.iter().flatten().copied().collect();
    let rebuilt_table = HuffmanTable::from_symbols(&all);
    let mut writer = BitWriter::new();
    for symbols in &block_symbols {
        huffman::encode_block_bits(symbols, &rebuilt_table, &mut writer);
    }
    let mut rebuilt = Vec::new();
    rebuilt.extend_from_slice(&MAGIC);
    rebuilt.push(VERSION);
    rebuilt.extend_from_slice(&(w as u32).to_le_bytes());
    rebuilt.extend_from_slice(&(h as u32).to_le_bytes());
    rebuilt_table.serialize_into(&mut rebuilt);
    rebuilt.extend_from_slice(&writer.finish());
    Ok(rebuilt == bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::{gradient, psnr_images, value_noise};

    /// Sequential reference pipeline with a caller-chosen transform —
    /// the oracle for the ratio-identity tests.
    fn sequential_encode(
        img: &GrayImage,
        forward: impl Fn(&[[f64; BLOCK]; BLOCK]) -> [[f64; BLOCK]; BLOCK],
    ) -> Vec<u8> {
        let blocks = tile_blocks(img);
        let block_symbols: Vec<Vec<codec::Symbol>> = blocks
            .iter()
            .map(|b| {
                let mut s = *b;
                for row in &mut s {
                    for p in row {
                        *p -= 128.0;
                    }
                }
                codec::encode_block(&forward(&s))
            })
            .collect();
        let all: Vec<codec::Symbol> = block_symbols.iter().flatten().copied().collect();
        let table = HuffmanTable::from_symbols(&all);
        let mut writer = BitWriter::new();
        for symbols in &block_symbols {
            huffman::encode_block_bits(symbols, &table, &mut writer);
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.extend_from_slice(&(img.width() as u32).to_le_bytes());
        bytes.extend_from_slice(&(img.height() as u32).to_le_bytes());
        table.serialize_into(&mut bytes);
        bytes.extend_from_slice(&writer.finish());
        bytes
    }

    fn uniform_significance(img: &GrayImage) -> Vec<f64> {
        vec![0.5; tile_blocks(img).len()]
    }

    #[test]
    fn ratio_one_is_byte_identical_to_all_realdct() {
        let img = value_noise(40, 24, 3);
        let executor = Executor::new(2);
        let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), 1.0);
        assert_eq!(enc.bytes, sequential_encode(&img, dct::forward_block));
        assert_eq!(enc.approx_blocks(), 0);
        assert_eq!(enc.accurate_blocks(), tile_blocks(&img).len());
    }

    #[test]
    fn ratio_zero_is_byte_identical_to_all_bindct() {
        let img = value_noise(40, 24, 3);
        let executor = Executor::new(2);
        let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), 0.0);
        assert_eq!(enc.bytes, sequential_encode(&img, bindct::forward_block_bin));
        assert_eq!(enc.accurate_blocks(), 0);
        assert_eq!(enc.approx_blocks(), tile_blocks(&img).len());
    }

    #[test]
    fn round_trip_decodes_to_jpeg_quality() {
        let img = value_noise(33, 25, 9); // non-multiple-of-8 dims
        let executor = Executor::new(1);
        let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), 1.0);
        let back = decode(&enc.bytes).unwrap();
        assert_eq!((back.width(), back.height()), (33, 25));
        let p = psnr_images(&img, &back);
        assert!(p > 25.0, "round-trip PSNR {p}");
        // Real bits were spent.
        assert!(enc.payload_bits > 0);
        assert!(enc.bits() >= enc.payload_bits);
    }

    #[test]
    fn partial_ratio_sits_between_the_extremes() {
        let img = value_noise(48, 48, 17);
        let executor = Executor::new(2);
        let sig = uniform_significance(&img);
        let enc = encode_with_significance(&img, &executor, &sig, 0.5);
        let n = sig.len();
        assert_eq!(enc.accurate_blocks(), n.div_ceil(2));
        assert_eq!(enc.accurate_blocks() + enc.approx_blocks(), n);
        assert!(enc.stats.accurate_ops > 0 && enc.stats.approx_ops > 0);
    }

    /// Left half flat (zero BinDCT damage by construction), right half
    /// per-pixel hash noise (energy across the whole AC band, so BinDCT
    /// flips quantisation levels there).
    fn half_flat_half_noise() -> GrayImage {
        GrayImage::from_fn(32, 16, |x, y| {
            if x < 16 {
                120.0
            } else {
                (x.wrapping_mul(2_654_435_761)
                    .wrapping_add(y.wrapping_mul(40_503))
                    .wrapping_mul(97_654_321)
                    >> 7) as f64
                    % 256.0
            }
        })
    }

    #[test]
    fn analyze_ranks_busy_blocks_above_flat_ones() {
        // Block scores must separate the two halves, and all land
        // strictly below 1.0.
        let img = half_flat_half_noise();
        let engine = ParallelAnalysis::new(1);
        let sig = analyze(&img, 8.0, &engine).unwrap();
        assert_eq!(sig.len(), 8);
        for &s in &sig {
            assert!((0.0..=SIGNIFICANCE_CEILING).contains(&s), "score {s}");
        }
        // Row-major 4×2 block grid: blocks 0,1 flat; 2,3 busy (per row).
        let flat_max = sig[0].max(sig[1]).max(sig[4]).max(sig[5]);
        let busy_min = sig[2].min(sig[3]).min(sig[6]).min(sig[7]);
        assert!(
            busy_min > flat_max,
            "busy blocks must outrank flat ones: {sig:?}"
        );
    }

    #[test]
    fn significance_protects_busy_blocks_first() {
        let img = half_flat_half_noise();
        let engine = ParallelAnalysis::new(1);
        let executor = Executor::new(1);
        let sig = analyze(&img, 8.0, &engine).unwrap();
        let full = decode(&encode_with_significance(&img, &executor, &sig, 1.0).bytes).unwrap();
        // Half the blocks accurate: significance must spend them on the
        // busy half, so quality stays near the full encode.
        let half = decode(&encode_with_significance(&img, &executor, &sig, 0.5).bytes).unwrap();
        let p = psnr_images(&full, &half);
        assert!(p > 40.0, "significance-guided half-ratio PSNR {p}");
    }

    #[test]
    fn adaptive_loop_converges_toward_a_psnr_target() {
        use scorpio_runtime::controller::adaptive::Objective;
        use scorpio_runtime::controller::QualityTarget;

        let img = value_noise(48, 48, 29);
        let engine = ParallelAnalysis::new(1);
        let executor = Executor::new(1);
        let sig = analyze(&img, 8.0, &engine).unwrap();
        let full = decode(&encode_with_significance(&img, &executor, &sig, 1.0).bytes).unwrap();
        let mut ctrl =
            AdaptiveController::new("jpeg", Objective::Quality(QualityTarget::AtLeast(38.0)));
        let mut last_psnr = 0.0;
        for _ in 0..12 {
            let enc = encode_adaptive(&img, &executor, &sig, &mut ctrl);
            let recon = decode(&enc.bytes).unwrap();
            last_psnr = psnr_images(&full, &recon);
            ctrl.observe(last_psnr);
            if ctrl.converged() {
                break;
            }
        }
        assert!(ctrl.steps() > 0);
        assert!(
            last_psnr >= 30.0,
            "adaptive loop ended far below target: {last_psnr}"
        );
    }

    #[test]
    fn verify_bitstream_accepts_real_encodes_and_spots_tampering() {
        let img = value_noise(40, 32, 13);
        let executor = Executor::new(1);
        for ratio in [0.0, 0.5, 1.0] {
            let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), ratio);
            assert!(verify_bitstream(&enc.bytes).unwrap(), "ratio {ratio}");
        }
        // Flipping a payload bit breaks bit-exactness (or decodability).
        let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), 1.0);
        let mut tampered = enc.bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x40;
        assert!(!verify_bitstream(&tampered).unwrap_or(false));
    }

    #[test]
    fn decode_rejects_malformed_containers() {
        assert!(decode(&[]).is_err());
        assert!(decode(b"NOPE\x01aaaaaaaaaaaa").is_err());
        let img = gradient(16, 16);
        let executor = Executor::new(1);
        let enc = encode_with_significance(&img, &executor, &uniform_significance(&img), 1.0);
        // Bad version.
        let mut bad = enc.bytes.clone();
        bad[4] = 9;
        assert!(matches!(decode(&bad), Err(JpegError::Malformed(_))));
        // Truncated bitstream.
        let cut = &enc.bytes[..enc.bytes.len() - 1];
        assert!(matches!(decode(cut), Err(JpegError::Malformed(_))));
        // Absurd dimensions.
        let mut huge = enc.bytes.clone();
        huge[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        huge[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&huge), Err(JpegError::Malformed(_))));
    }

    #[test]
    fn encode_options_entry_point_round_trips() {
        let img = value_noise(24, 24, 5);
        let enc = encode(
            &img,
            &EncodeOptions {
                ratio: 0.6,
                ..EncodeOptions::default()
            },
        )
        .unwrap();
        let back = decode(&enc.bytes).unwrap();
        assert_eq!((back.width(), back.height()), (24, 24));
        assert_eq!(enc.significance.len(), 9);
        assert!(enc.bits_per_pixel() > 0.0);
    }
}
