//! Sobel edge-detection filter (§4.1.1).
//!
//! The 3×3 convolutions are split into the paper's three computation
//! blocks:
//!
//! * **A** — the contributions with coefficients `±2` (the centre row of
//!   `Gx` and centre column of `Gy`);
//! * **B** — the `±1` corner contributions to the horizontal gradient;
//! * **C** — the `±1` corner contributions to the vertical gradient.
//!
//! Every part is a DC-free difference, so dropping one degrades edge
//! strength gracefully instead of fabricating edges on flat regions.
//!
//! The analysis finds A twice as significant as B/C, so the tasked
//! version pins A at significance 1.0 (always accurate) and gives B and C
//! significance 0.5; their approximate bodies drop the contribution. A
//! second task group combines the partial sums (`t = √(tx² + ty²)`,
//! clipped to `[0, 255]`) and always runs accurately.

use scorpio_core::{Analysis, AnalysisError, ParallelAnalysis, Report};
use scorpio_quality::GrayImage;
use scorpio_runtime::perforation::Perforator;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// The three computation blocks of the decomposed convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Part {
    /// Coefficients ±2 (most significant).
    A,
    /// Coefficients ±1: corner contributions to the horizontal gradient.
    B,
    /// Coefficients ±1: corner contributions to the vertical gradient.
    C,
}

impl Part {
    /// All parts in significance order.
    pub fn all() -> [Part; 3] {
        [Part::A, Part::B, Part::C]
    }

    /// Task significance assigned per the analysis (§4.1.1): A forced
    /// accurate, B and C at 0.5.
    pub fn significance(self) -> f64 {
        match self {
            Part::A => 1.0,
            Part::B | Part::C => 0.5,
        }
    }
}

/// Horizontal and vertical partial contribution of one part at one pixel.
#[inline]
fn part_contribution(img: &GrayImage, x: usize, y: usize, part: Part) -> (f64, f64) {
    let (x, y) = (x as isize, y as isize);
    let p = |dx: isize, dy: isize| img.get_clamped(x + dx, y + dy);
    match part {
        // Gx centre row: +2·p(x+1,y) − 2·p(x−1,y); Gy centre column.
        Part::A => (
            2.0 * (p(1, 0) - p(-1, 0)),
            2.0 * (p(0, 1) - p(0, -1)),
        ),
        // Corner ±1 contributions to the horizontal gradient.
        Part::B => (
            p(1, -1) - p(-1, -1) + p(1, 1) - p(-1, 1),
            0.0,
        ),
        // Corner ±1 contributions to the vertical gradient.
        Part::C => (
            0.0,
            p(-1, 1) + p(1, 1) - p(-1, -1) - p(1, -1),
        ),
    }
}

/// Combines partial sums into the output pixel value.
#[inline]
fn combine(tx: f64, ty: f64) -> f64 {
    (tx * tx + ty * ty).sqrt().clamp(0.0, 255.0)
}

/// Sequential accurate Sobel filter.
///
/// ```
/// use scorpio_kernels::sobel;
/// use scorpio_quality::checkerboard;
/// let img = checkerboard(32, 32, 8);
/// let edges = sobel::reference(&img);
/// // Cell interiors are flat: zero response.
/// assert_eq!(edges.get(4, 4), 0.0);
/// // Cell boundaries respond strongly.
/// assert!(edges.get(8, 4) > 100.0);
/// ```
pub fn reference(img: &GrayImage) -> GrayImage {
    let _span = scorpio_obs::span("kernel.sobel.reference");
    let (w, h) = (img.width(), img.height());
    GrayImage::from_fn(w, h, |x, y| {
        let mut tx = 0.0;
        let mut ty = 0.0;
        for part in Part::all() {
            let (cx, cy) = part_contribution(img, x, y, part);
            tx += cx;
            ty += cy;
        }
        combine(tx, ty)
    })
}

/// Significance-driven task version.
///
/// Group 1: one task per (row, part); approximate bodies drop the part's
/// contribution. Group 2: one always-accurate combine task per row.
pub fn tasked(
    img: &GrayImage,
    executor: &Executor,
    ratio: f64,
) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.sobel.tasked");
    let (w, h) = (img.width(), img.height());
    // Partial sums per part: (tx, ty) interleaved per pixel.
    let mut parts: Vec<Vec<f64>> = vec![vec![0.0; w * h * 2]; 3];

    let mut stats = {
        let [ref mut pa, ref mut pb, ref mut pc] = parts[..] else {
            unreachable!()
        };
        let mut group = TaskGroup::new("sobel-conv");
        for (part, buf) in [(Part::A, pa), (Part::B, pb), (Part::C, pc)] {
            for (y, row) in buf.chunks_mut(w * 2).enumerate() {
                group.spawn(
                    part.significance(),
                    move |ctx: &scorpio_runtime::TaskCtx| {
                        ctx.count_accurate_ops(4 * w as u64);
                        for x in 0..w {
                            let (cx, cy) = part_contribution(img, x, y, part);
                            row[2 * x] = cx;
                            row[2 * x + 1] = cy;
                        }
                    },
                    // Approximate version: drop the computation (§4.1.1).
                    Some(move |ctx: &scorpio_runtime::TaskCtx| {
                        ctx.count_approx_ops(1);
                    }),
                );
            }
        }
        group.taskwait(executor, ratio)
    };

    // Second group: combine + clip, always accurate.
    let mut out = GrayImage::new(w, h);
    let combine_stats = {
        let (pa, rest) = parts.split_first().unwrap();
        let (pb, rest) = rest.split_first().unwrap();
        let pc = &rest[0];
        let mut group = TaskGroup::new("sobel-combine");
        for (y, out_row) in out.pixels_mut().chunks_mut(w).enumerate() {
            let base = y * w * 2;
            group.spawn_accurate(move |ctx: &scorpio_runtime::TaskCtx| {
                ctx.count_accurate_ops(4 * w as u64);
                for (x, out_px) in out_row.iter_mut().enumerate() {
                    let tx = pa[base + 2 * x] + pb[base + 2 * x] + pc[base + 2 * x];
                    let ty =
                        pa[base + 2 * x + 1] + pb[base + 2 * x + 1] + pc[base + 2 * x + 1];
                    *out_px = combine(tx, ty);
                }
            });
        }
        group.taskwait(executor, 1.0)
    };
    stats.merge(&combine_stats);
    (out, stats)
}

/// Loop-perforated Sobel (§4.2): skips whole output rows; skipped rows
/// keep their zero initialisation.
pub fn perforated(img: &GrayImage, keep_fraction: f64) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.sobel.perforated");
    let (w, h) = (img.width(), img.height());
    let perf = Perforator::new(h, keep_fraction);
    let mut out = GrayImage::new(w, h);
    let mut ops = 0u64;
    for y in 0..h {
        if !perf.keep(y) {
            continue;
        }
        ops += 16 * w as u64;
        for x in 0..w {
            let mut tx = 0.0;
            let mut ty = 0.0;
            for part in Part::all() {
                let (cx, cy) = part_contribution(img, x, y, part);
                tx += cx;
                ty += cy;
            }
            out.set(x, y, combine(tx, ty));
        }
    }
    (
        out,
        ExecutionStats {
            accurate_ops: ops,
            ..ExecutionStats::default()
        },
    )
}

/// Significance analysis of one output pixel over a 3×3 input window with
/// full pixel range `[0, 255]`, registering the per-part partial sums
/// (`Ax`, `Ay`, `Bx`, `By`, `Cx`, `Cy`) on the path to the clipped output
/// — the §4.1.1 analysis showing `S(A) = 2·S(B) = 2·S(C)`.
///
/// The magnitude is formed with `hypot` (whose interval partials are
/// bounded by `[-1, 1]`) rather than `sqrt(tx² + ty²)` (whose interval
/// derivative is unbounded at the origin of the full pixel range); the
/// two are pointwise identical.
///
/// # Errors
///
/// Propagates framework errors (none expected: branch-free via min/max
/// clipping).
pub fn analysis() -> Result<Report, AnalysisError> {
    let _span = scorpio_obs::span("kernel.sobel.analysis");
    Analysis::new().run(|ctx| {
        // The 3×3 neighbourhood as 9 independent inputs.
        let mut p = Vec::with_capacity(9);
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                p.push(ctx.input(format!("p[{dx},{dy}]"), 0.0, 255.0));
            }
        }
        let at = |dx: i32, dy: i32| p[((dy + 1) * 3 + (dx + 1)) as usize];

        // Part A: ±2 coefficients (centre row of Gx, centre column of Gy).
        let ax = (at(1, 0) - at(-1, 0)) * 2.0;
        ctx.intermediate(&ax, "Ax");
        let ay = (at(0, 1) - at(0, -1)) * 2.0;
        ctx.intermediate(&ay, "Ay");

        // Part B: corner ±1 contributions to the horizontal gradient.
        let bx = at(1, -1) - at(-1, -1) + at(1, 1) - at(-1, 1);
        ctx.intermediate(&bx, "Bx");

        // Part C: corner ±1 contributions to the vertical gradient.
        let cy = at(-1, 1) + at(1, 1) - at(-1, -1) - at(1, -1);
        ctx.intermediate(&cy, "Cy");

        // Combine: t = hypot(tx, ty), clipped to [0, 255] via min/max.
        let tx = ax + bx;
        let ty = ay + cy;
        let t = tx.hypot(ty);
        let hi = ctx.constant(255.0);
        let lo = ctx.constant(0.0);
        let out = t.min(hi).max(lo);
        ctx.output(&out, "pixel");
        Ok(())
    })
}

/// Significance analysis of the combine stage alone (§4.1.1's closing
/// observation): given partial sums `tx, ty` over their full ranges, the
/// output pixel's sensitivity is uniform across operating points — "the
/// computations which aggregate convolution results and produce output
/// pixels show little significance variance across all pixels".
///
/// Returns the raw significances of `tx` and `ty` for a combine evaluated
/// at `k` different sub-ranges of the full gradient range; the caller
/// (and the test below) checks their variance is small.
///
/// # Errors
///
/// Propagates framework errors (branch-free via min/max clipping).
pub fn analysis_combine(k: usize) -> Result<Vec<(f64, f64)>, AnalysisError> {
    analysis_combine_threaded(k, 1)
}

/// [`analysis_combine`] with the `k` operating points fanned over
/// `threads` workers of a [`ParallelAnalysis`] engine in record-once /
/// replay-many mode: each worker records and compiles the combine trace
/// at its first operating point, then replays it with every further
/// point's gradient sub-range. Results are in operating-point order and
/// bit-identical to a serial re-recording loop.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing operating point.
///
/// # Panics
///
/// Panics if `k == 0` or `threads == 0`.
pub fn analysis_combine_threaded(
    k: usize,
    threads: usize,
) -> Result<Vec<(f64, f64)>, AnalysisError> {
    assert!(k > 0, "need at least one operating range");
    // Slide a half-width window across the full ±1020 gradient range.
    let span = 2040.0;
    let width = span / 2.0;
    let lows: Vec<f64> = (0..k)
        .map(|i| -1020.0 + (i as f64 / k.max(2) as f64) * (span - width))
        .collect();
    let engine = ParallelAnalysis::new(threads);
    engine
        .run_batch_replay_vars_map(
            &lows,
            |&lo| {
                // Both inputs range over the window, in registration order.
                let window = scorpio_interval::Interval::new(lo, lo + width);
                vec![window, window]
            },
            |ctx, &lo| {
                let tx = ctx.input("tx", lo, lo + width);
                let ty = ctx.input("ty", lo, lo + width);
                let t = tx.hypot(ty);
                let hi = ctx.constant(255.0);
                let zero = ctx.constant(0.0);
                let pixel = t.min(hi).max(zero);
                ctx.output(&pixel, "pixel");
                Ok(())
            },
            |_, vars| {
                Ok((
                    vars.var("tx").unwrap().significance_raw,
                    vars.var("ty").unwrap().significance_raw,
                ))
            },
        )
        .map(|(points, _stats)| points)
}

/// Per-part significance: the summed significances of the part's
/// horizontal and vertical contributions from [`analysis`].
pub fn part_significance(report: &Report, part: Part) -> f64 {
    match part {
        Part::A => {
            report.significance_of("Ax").unwrap_or(0.0)
                + report.significance_of("Ay").unwrap_or(0.0)
        }
        Part::B => report.significance_of("Bx").unwrap_or(0.0),
        Part::C => report.significance_of("Cy").unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::{checkerboard, psnr_images, value_noise};

    #[test]
    fn reference_detects_edges() {
        let img = checkerboard(48, 48, 12);
        let edges = reference(&img);
        assert_eq!(edges.get(6, 6), 0.0);
        assert!(edges.get(12, 6) > 50.0);
        // Output clipped to [0, 255].
        assert!(edges.pixels().iter().all(|&v| (0.0..=255.0).contains(&v)));
    }

    #[test]
    fn tasked_ratio_one_matches_reference() {
        let img = value_noise(40, 32, 5);
        let executor = Executor::new(4);
        let (out, stats) = tasked(&img, &executor, 1.0);
        let reference = reference(&img);
        assert_eq!(out, reference);
        // 3 parts × 32 rows + 32 combine tasks.
        assert_eq!(stats.accurate, 3 * 32 + 32);
    }

    #[test]
    fn tasked_ratio_zero_keeps_part_a() {
        // At ratio 0 only the forced A tasks (significance 1.0) run, so
        // the output is the A-only edge map: nonzero but degraded.
        let img = checkerboard(32, 32, 8);
        let executor = Executor::new(2);
        let (out, stats) = tasked(&img, &executor, 0.0);
        assert_eq!(stats.accurate, 32 + 32); // A rows + combine rows
        assert_eq!(stats.approximate, 64); // B and C rows approximated
        assert!(out.pixels().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn tasked_quality_monotone_in_ratio() {
        let img = value_noise(48, 48, 9);
        let executor = Executor::new(4);
        let reference = reference(&img);
        let mut last = -1.0;
        for ratio in [0.0, 0.4, 0.7, 1.0] {
            let (out, _) = tasked(&img, &executor, ratio);
            let p = psnr_images(&reference, &out);
            assert!(p >= last, "PSNR fell from {last} to {p} at ratio {ratio}");
            last = p;
        }
        assert_eq!(last, f64::INFINITY);
    }

    #[test]
    fn significance_beats_perforation_on_quality() {
        // The Fig. 7 Sobel relationship at matched accurate fractions.
        let img = checkerboard(64, 64, 16);
        let executor = Executor::new(4);
        let full = reference(&img);
        for ratio in [0.5, 0.8] {
            let (sig_out, _) = tasked(&img, &executor, ratio);
            let (perf_out, _) = perforated(&img, ratio);
            let psnr_sig = psnr_images(&full, &sig_out);
            let psnr_perf = psnr_images(&full, &perf_out);
            assert!(
                psnr_sig > psnr_perf,
                "ratio {ratio}: sig {psnr_sig} dB vs perf {psnr_perf} dB"
            );
        }
    }

    #[test]
    fn perforation_keeps_fraction_of_rows() {
        let img = value_noise(32, 40, 3);
        let (out, _) = perforated(&img, 0.5);
        let zero_rows = (0..40)
            .filter(|&y| (0..32).all(|x| out.get(x, y) == 0.0))
            .count();
        // Exactly half the rows skipped (some kept rows could be all-zero
        // on flat images; value noise isn't flat).
        assert_eq!(zero_rows, 20);
    }

    #[test]
    fn combine_stage_significance_is_uniform() {
        // §4.1.1: the aggregation stage shows little significance
        // variance across operating points → it is kept always-accurate
        // rather than partitioned further.
        let points = analysis_combine(5).unwrap();
        let sx: Vec<f64> = points.iter().map(|p| p.0).collect();
        let mean = sx.iter().sum::<f64>() / sx.len() as f64;
        let var = sx.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / sx.len() as f64;
        let rel_spread = var.sqrt() / mean;
        assert!(
            rel_spread < 0.25,
            "combine significance varies too much: cv = {rel_spread}"
        );
    }

    #[test]
    fn analysis_ranks_a_twice_b_and_c() {
        let report = analysis().unwrap();
        let a = part_significance(&report, Part::A);
        let b = part_significance(&report, Part::B);
        let c = part_significance(&report, Part::C);
        assert!(a > 0.0);
        // A uses ±2 coefficients: twice the significance of B/C (§4.1.1).
        assert!((a / b - 2.0).abs() < 1e-6, "A/B = {}", a / b);
        assert!((a / c - 2.0).abs() < 1e-6, "A/C = {}", a / c);
        // B and C are symmetric.
        assert!((b / c - 1.0).abs() < 1e-9, "B/C = {}", b / c);
    }
}
