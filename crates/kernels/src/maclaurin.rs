//! The Maclaurin-series running example of §3 (Listings 5–7, Fig. 3).
//!
//! `f(x) = Σ_{i=0}^{N−1} xⁱ ≈ 1/(1−x)` for `x ∈ (−1, 1)`.

use scorpio_core::{Analysis, AnalysisError, Ctx, Report};
use scorpio_fastmath::fast_pow;
use scorpio_interval::Interval;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// Sequential accurate implementation (Listing 5).
///
/// ```
/// use scorpio_kernels::maclaurin;
/// let y = maclaurin::reference(0.5, 20);
/// assert!((y - 2.0).abs() < 1e-5); // 1/(1−0.5)
/// ```
pub fn reference(x: f64, n: usize) -> f64 {
    let mut result = 0.0;
    for i in 0..n {
        result += x.powi(i as i32);
    }
    result
}

/// The per-task significance function of Listing 7, line 14:
/// `(N − i + 1) / (N + 2)` — a monotone interpolation of the analysis'
/// term ranking ("approximations of the task significance values may be
/// used, with no penalty, as long as they capture the ranking").
pub fn task_significance(i: usize, n: usize) -> f64 {
    (n - i + 1) as f64 / (n + 2) as f64
}

/// Significance analysis of the series (Listing 6): input `x₀ ± 0.5`,
/// every term registered as an intermediate.
///
/// # Errors
///
/// Propagates [`AnalysisError`]s from the framework (none expected for
/// this branch-free kernel).
pub fn analysis(x0: f64, n: usize) -> Result<Report, AnalysisError> {
    let _span = scorpio_obs::span("kernel.maclaurin.analysis");
    Analysis::new().run(|ctx| register_series(ctx, x0, n))
}

/// Registers the `n`-term series around `x₀` (Listing 6's body).
///
/// Public so external drivers (e.g. the serve layer) can pair it with
/// [`series_inputs`] under a replay driver. The trace shape depends on
/// `n` (one `term{i}` intermediate per term), so shared traces must be
/// keyed on the series length; only `x₀` flows through a replayable
/// input.
pub fn register_series(ctx: &Ctx<'_>, x0: f64, n: usize) -> Result<(), AnalysisError> {
    let x = ctx.input_centered("x", x0, 0.5);
    let mut result = ctx.constant(0.0);
    for i in 0..n {
        let term = x.powi(i as i32);
        ctx.intermediate(&term, format!("term{i}"));
        result = result + term;
    }
    ctx.output(&result, "result");
    Ok(())
}

/// Input boxes of [`register_series`], in registration order (the
/// single `x₀ ± 0.5` interval, bound positionally by replay drivers).
pub fn series_inputs(x0: f64) -> Vec<Interval> {
    vec![Interval::centered(x0, 0.5)]
}

/// Task-based version (Listing 7): one task per term `i ≥ 1`, approximate
/// body computing the term with [`fast_pow`] (the paper's `pow_fast`);
/// `ratio` is the taskwait quality knob.
///
/// Work accounting: an accurate term costs `i` units (the multiply chain
/// of `powi`), the approximate `fast_pow` a flat 2.
pub fn tasked(x: f64, n: usize, executor: &Executor, ratio: f64) -> (f64, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.maclaurin.tasked");
    let mut temp = vec![0.0f64; n];
    if n == 0 {
        return (0.0, ExecutionStats::default());
    }
    temp[0] = 1.0; // pow(x, 0) = 1: significance 0, precomputed (Fig. 3).
    let stats = {
        let mut group = TaskGroup::new("maclaurin");
        for (i, slot) in temp.iter_mut().enumerate().skip(1) {
            let significance = task_significance(i, n);
            // Two bodies write the same slot; spawn-time decision makes
            // them mutually exclusive, which Rust can't see — hand each
            // body its own raw view via a one-element split.
            let slot_acc: *mut f64 = slot;
            let slot_apx = SendPtr(slot_acc);
            let slot_acc = SendPtr(slot_acc);
            group.spawn(
                significance,
                move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_accurate_ops(i as u64);
                    slot_acc.write(x.powi(i as i32));
                },
                Some(move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_approx_ops(2);
                    slot_apx.write(fast_pow(x, i as f64));
                }),
            );
        }
        group.taskwait(executor, ratio)
    };
    (temp.iter().sum(), stats)
}

/// Loop-perforated version (§4.2): skips `1 − keep_fraction` of the term
/// loop iterations outright.
pub fn perforated(x: f64, n: usize, keep_fraction: f64) -> (f64, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.maclaurin.perforated");
    let perf = scorpio_runtime::perforation::Perforator::new(n, keep_fraction);
    let mut result = 0.0;
    let mut ops = 0u64;
    for i in 0..n {
        if perf.keep(i) {
            result += x.powi(i as i32);
            ops += i as u64;
        }
    }
    let stats = ExecutionStats {
        accurate: 0,
        approximate: 0,
        dropped: 0,
        accurate_ops: ops,
        approx_ops: 0,
    };
    (result, stats)
}

/// A pointer wrapper asserting Send for the disjoint-slot task pattern.
struct SendPtr(*mut f64);

impl SendPtr {
    /// Writes through the pointer.
    fn write(&self, v: f64) {
        // SAFETY: each SendPtr targets a distinct vector element, the
        // element outlives the task group, and exactly one of the two
        // bodies holding a pointer to a given slot ever runs.
        unsafe { *self.0 = v };
    }
}

// SAFETY: see `SendPtr::write`.
unsafe impl Send for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_converges_to_closed_form() {
        for x in [-0.5, 0.0, 0.3, 0.7] {
            let y = reference(x, 60);
            assert!((y - 1.0 / (1.0 - x)).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn significance_function_is_monotone() {
        let n = 10;
        for i in 2..n {
            assert!(task_significance(i, n) < task_significance(i - 1, n));
        }
        assert!(task_significance(1, n) <= 1.0);
    }

    #[test]
    fn tasked_at_ratio_one_matches_reference() {
        let executor = Executor::new(4);
        let (y, stats) = tasked(0.49, 12, &executor, 1.0);
        assert!((y - reference(0.49, 12)).abs() < 1e-12);
        assert_eq!(stats.accurate, 11);
        assert_eq!(stats.approximate, 0);
    }

    #[test]
    fn tasked_quality_monotone_in_ratio() {
        let executor = Executor::new(4);
        let exact = reference(0.49, 12);
        let mut last_err = f64::INFINITY;
        for ratio in [0.0, 0.5, 1.0] {
            let (y, _) = tasked(0.49, 12, &executor, ratio);
            let err = (y - exact).abs();
            assert!(
                err <= last_err + 1e-9,
                "error must not grow with ratio: {err} after {last_err}"
            );
            last_err = err;
        }
    }

    #[test]
    fn tasked_approx_is_close_anyway() {
        // fast_pow keeps a few good digits per term: ratio 0 stays within
        // ~1e-4 relative while skipping all the accurate multiply chains.
        let executor = Executor::new(2);
        let exact = reference(0.49, 12);
        let (y, stats) = tasked(0.49, 12, &executor, 0.0);
        assert_eq!(stats.accurate, 0);
        let rel = (y - exact).abs() / exact;
        assert!(rel > 0.0, "approximation should be visible");
        assert!(rel < 1e-3, "rel err {rel}");
    }

    #[test]
    fn perforated_drops_terms() {
        let exact = reference(0.49, 12);
        let (y_full, _) = perforated(0.49, 12, 1.0);
        assert_eq!(y_full, exact);
        let (y_half, stats) = perforated(0.49, 12, 0.5);
        assert!(y_half < exact); // positive terms dropped
        assert!(stats.accurate_ops > 0);
        let (y_none, _) = perforated(0.49, 12, 0.0);
        assert_eq!(y_none, 0.0);
    }

    #[test]
    fn tasked_beats_perforation_at_same_ratio() {
        // The headline comparison at the heart of Fig. 7, in miniature:
        // at equal accurate fractions, approximating (fast_powi) beats
        // dropping (perforation).
        let executor = Executor::new(2);
        let exact = reference(0.49, 16);
        for ratio in [0.0, 0.25, 0.5, 0.75] {
            let (y_sig, _) = tasked(0.49, 16, &executor, ratio);
            let (y_perf, _) = perforated(0.49, 16, ratio);
            let err_sig = (y_sig - exact).abs();
            let err_perf = (y_perf - exact).abs();
            assert!(
                err_sig <= err_perf,
                "ratio {ratio}: sig err {err_sig} vs perf err {err_perf}"
            );
        }
    }

    #[test]
    fn analysis_matches_fig3() {
        let report = analysis(0.49, 5).unwrap();
        assert!(report.significance_of("term0").unwrap() < 1e-12);
        let s: Vec<f64> = (1..5)
            .map(|i| report.significance_of(&format!("term{i}")).unwrap())
            .collect();
        assert!(s.windows(2).all(|w| w[0] > w[1]), "{s:?}");
    }
}
