//! Codec back-end for the DCT kernel: zig-zag scan, run-length symbol
//! stream and an entropy-based size estimate.
//!
//! §4.1.2 frames DCT as "a module of video compression kernels"; this
//! module supplies the downstream stages that make approximation's
//! *second* benefit measurable: dropping low-significance coefficients
//! not only saves compute, it shrinks the encoded stream. The size
//! estimate is first-order (symbol entropy), standing in for a Huffman /
//! arithmetic coder without pulling in a full bitstream implementation.

use super::{BLOCK, QUANT};

/// The zig-zag scan order of an 8×8 block (JPEG's): index `k` gives the
/// `(u, v)` position of the `k`-th scanned coefficient.
pub fn zigzag_order() -> [(usize, usize); BLOCK * BLOCK] {
    let mut order = [(0usize, 0usize); BLOCK * BLOCK];
    let mut k = 0;
    for d in 0..(2 * BLOCK - 1) {
        // Walk each anti-diagonal, alternating direction.
        let cells: Vec<(usize, usize)> = (0..BLOCK)
            .flat_map(|v| (0..BLOCK).map(move |u| (u, v)))
            .filter(|&(u, v)| u + v == d)
            .collect();
        let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if d % 2 == 0 {
            // Even diagonals run bottom-left → top-right.
            Box::new(cells.iter().rev())
        } else {
            Box::new(cells.iter())
        };
        for &(u, v) in iter {
            order[k] = (u, v);
            k += 1;
        }
    }
    order
}

/// One run-length symbol: `zero_run` zero coefficients followed by
/// `level` (a quantised nonzero value), or the end-of-block marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `zero_run` zeros then the nonzero `level`.
    Run {
        /// Number of zeros preceding the level.
        zero_run: u8,
        /// The quantised coefficient value.
        level: i32,
    },
    /// All remaining coefficients are zero.
    EndOfBlock,
}

/// Quantises a coefficient block and run-length encodes its zig-zag
/// scan.
pub fn encode_block(coeffs: &[[f64; BLOCK]; BLOCK]) -> Vec<Symbol> {
    let order = zigzag_order();
    let mut symbols = Vec::new();
    let mut zero_run = 0u8;
    let mut last_nonzero_emitted = true;
    for &(u, v) in &order {
        let level = (coeffs[v][u] / QUANT[v][u]).round() as i32;
        if level == 0 {
            zero_run = zero_run.saturating_add(1);
            last_nonzero_emitted = false;
        } else {
            symbols.push(Symbol::Run { zero_run, level });
            zero_run = 0;
            last_nonzero_emitted = true;
        }
    }
    if !last_nonzero_emitted {
        symbols.push(Symbol::EndOfBlock);
    }
    symbols
}

/// Decodes a symbol stream back into a (quantised, dequantised)
/// coefficient block — the round-trip check for the encoder.
pub fn decode_block(symbols: &[Symbol]) -> [[f64; BLOCK]; BLOCK] {
    let order = zigzag_order();
    let mut coeffs = [[0.0; BLOCK]; BLOCK];
    let mut k = 0usize;
    for s in symbols {
        match *s {
            Symbol::Run { zero_run, level } => {
                k += zero_run as usize;
                if k < order.len() {
                    let (u, v) = order[k];
                    coeffs[v][u] = level as f64 * QUANT[v][u];
                    k += 1;
                }
            }
            Symbol::EndOfBlock => break,
        }
    }
    coeffs
}

/// First-order entropy estimate of a symbol stream in bits: the Shannon
/// bound a (static) entropy coder would approach. Levels are bucketed by
/// magnitude category (JPEG-style size classes) joined with the run
/// length.
pub fn estimated_bits(symbols: &[Symbol]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    use std::collections::HashMap;
    let mut counts: HashMap<(u8, u32), usize> = HashMap::new();
    for s in symbols {
        let key = match *s {
            Symbol::Run { zero_run, level } => {
                // Size class = number of bits to represent |level|.
                let size = 32 - (level.unsigned_abs()).leading_zeros();
                (zero_run, size)
            }
            Symbol::EndOfBlock => (255, 0),
        };
        *counts.entry(key).or_insert(0) += 1;
    }
    let n = symbols.len() as f64;
    let symbol_entropy: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    // Each Run symbol also spends `size` raw bits on the level's value
    // (sign + magnitude), as in JPEG's (runlength, size) + amplitude.
    let amplitude_bits: f64 = symbols
        .iter()
        .map(|s| match *s {
            Symbol::Run { level, .. } => {
                (32 - level.unsigned_abs().leading_zeros()) as f64
            }
            Symbol::EndOfBlock => 0.0,
        })
        .sum();
    n * symbol_entropy + amplitude_bits
}

/// Estimated encoded size in bits of a whole image's coefficient blocks.
pub fn estimate_image_bits(blocks: &[[[f64; BLOCK]; BLOCK]]) -> f64 {
    // A shared symbol alphabet across blocks, as a real coder would use.
    let all_symbols: Vec<Symbol> = blocks.iter().flat_map(encode_block).collect();
    estimated_bits(&all_symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::{forward_block, natural_test_block};

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [[false; BLOCK]; BLOCK];
        for &(u, v) in &order {
            assert!(!seen[v][u], "duplicate ({u},{v})");
            seen[v][u] = true;
        }
        // Starts at DC, first steps follow the JPEG pattern.
        assert_eq!(order[0], (0, 0));
        assert_eq!(order[1], (1, 0));
        assert_eq!(order[2], (0, 1));
        assert_eq!(order[3], (0, 2));
        // Ends at the highest frequency.
        assert_eq!(order[63], (7, 7));
    }

    #[test]
    fn encode_decode_round_trip_is_quantisation() {
        let block = natural_test_block();
        let coeffs = forward_block(&block);
        let symbols = encode_block(&coeffs);
        let decoded = decode_block(&symbols);
        // Decoding reproduces exactly the quantise→dequantise values.
        for v in 0..BLOCK {
            for u in 0..BLOCK {
                let want = (coeffs[v][u] / QUANT[v][u]).round() * QUANT[v][u];
                assert!(
                    (decoded[v][u] - want).abs() < 1e-9,
                    "({u},{v}): {} vs {}",
                    decoded[v][u],
                    want
                );
            }
        }
    }

    #[test]
    fn flat_block_compresses_to_almost_nothing() {
        let flat = [[128.0; BLOCK]; BLOCK];
        let symbols = encode_block(&forward_block(&flat));
        // DC + end-of-block only.
        assert!(symbols.len() <= 2, "{symbols:?}");
        assert!(estimated_bits(&symbols) < 32.0);
    }

    #[test]
    fn busier_content_needs_more_bits() {
        let flat = [[100.0; BLOCK]; BLOCK];
        let mut busy = [[0.0; BLOCK]; BLOCK];
        for (v, row) in busy.iter_mut().enumerate() {
            for (u, p) in row.iter_mut().enumerate() {
                *p = if (u + v) % 2 == 0 { 20.0 } else { 235.0 };
            }
        }
        let flat_bits = estimated_bits(&encode_block(&forward_block(&flat)));
        let busy_bits = estimated_bits(&encode_block(&forward_block(&busy)));
        assert!(
            busy_bits > 4.0 * flat_bits.max(1.0),
            "busy {busy_bits} vs flat {flat_bits}"
        );
    }

    #[test]
    fn dropping_diagonals_shrinks_the_stream() {
        // The approximation's second payoff: frequency truncation reduces
        // the encoded size.
        let block = natural_test_block();
        let full = forward_block(&block);
        let mut truncated = full;
        for v in 0..BLOCK {
            for u in 0..BLOCK {
                if u + v >= 4 {
                    truncated[v][u] = 0.0;
                }
            }
        }
        let full_bits = estimated_bits(&encode_block(&full));
        let trunc_bits = estimated_bits(&encode_block(&truncated));
        assert!(
            trunc_bits < full_bits,
            "truncated {trunc_bits} vs full {full_bits}"
        );
    }

    #[test]
    fn image_level_estimate_accumulates() {
        let b = forward_block(&natural_test_block());
        let one = estimate_image_bits(&[b]);
        let four = estimate_image_bits(&[b, b, b, b]);
        assert!(four > 3.0 * one, "four blocks {four} vs one {one}");
    }
}
