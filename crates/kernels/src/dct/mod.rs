//! Discrete Cosine Transform video-compression kernel (§4.1.2, Fig. 4).
//!
//! The pipeline is the JPEG-style chain the paper analyses: forward 8×8
//! DCT-II → quantisation → de-quantisation → inverse DCT. The analysis
//! reveals a significance variation at the level of individual frequency
//! coefficients: the DC coefficient (top-left) matters most and
//! significance "drops in a wave-like pattern towards the opposite
//! corner" along the zig-zag diagonals — matching image-compression
//! expert wisdom (Fig. 4).
//!
//! The tasked version therefore uses **15 tasks, one per coefficient
//! diagonal** (`u + v = d`), with significance decreasing in `d`; the
//! approximate body drops the diagonal's coefficients (sets them to 0 —
//! frequency truncation).

// Index loops below walk several parallel arrays at once; zipped
// iterators would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

pub mod codec;

use scorpio_core::{
    Analysis, AnalysisArena, AnalysisError, Ctx, ParallelAnalysis, Report, DEFAULT_LANES,
};
use scorpio_interval::Interval;
use scorpio_quality::GrayImage;
use scorpio_runtime::perforation::Perforator;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// Block edge length of the transform.
pub const BLOCK: usize = 8;
/// Number of coefficient diagonals in an 8×8 block (`u + v ∈ 0..15`).
pub const DIAGONALS: usize = 2 * BLOCK - 1;

/// The JPEG luminance quantisation matrix (quality 50), the standard
/// weighting the paper's pipeline applies between DCT and IDCT.
pub const QUANT: [[f64; BLOCK]; BLOCK] = [
    [16.0, 11.0, 10.0, 16.0, 24.0, 40.0, 51.0, 61.0],
    [12.0, 12.0, 14.0, 19.0, 26.0, 58.0, 60.0, 55.0],
    [14.0, 13.0, 16.0, 24.0, 40.0, 57.0, 69.0, 56.0],
    [14.0, 17.0, 22.0, 29.0, 51.0, 87.0, 80.0, 62.0],
    [18.0, 22.0, 37.0, 56.0, 68.0, 109.0, 103.0, 77.0],
    [24.0, 35.0, 55.0, 64.0, 81.0, 104.0, 113.0, 92.0],
    [49.0, 64.0, 78.0, 87.0, 103.0, 121.0, 120.0, 101.0],
    [72.0, 92.0, 95.0, 98.0, 112.0, 100.0, 103.0, 99.0],
];

/// DCT-II basis factor `α(u)·cos((2x+1)uπ/16)/2`.
#[inline]
fn basis(u: usize, x: usize) -> f64 {
    let alpha = if u == 0 {
        (1.0f64 / BLOCK as f64).sqrt()
    } else {
        (2.0f64 / BLOCK as f64).sqrt()
    };
    alpha * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / (2 * BLOCK) as f64).cos()
}

/// Forward DCT of one coefficient `(u, v)` of an 8×8 block — the
/// per-coefficient form the diagonal tasks need (64 multiply-adds).
pub fn forward_coefficient(block: &[[f64; BLOCK]; BLOCK], u: usize, v: usize) -> f64 {
    let mut acc = 0.0;
    for (y, row) in block.iter().enumerate() {
        for (x, &p) in row.iter().enumerate() {
            acc += p * basis(v, y) * basis(u, x);
        }
    }
    acc
}

/// Full forward DCT of a block (all 64 coefficients).
pub fn forward_block(block: &[[f64; BLOCK]; BLOCK]) -> [[f64; BLOCK]; BLOCK] {
    let mut coeffs = [[0.0; BLOCK]; BLOCK];
    for (v, row) in coeffs.iter_mut().enumerate() {
        for (u, c) in row.iter_mut().enumerate() {
            *c = forward_coefficient(block, u, v);
        }
    }
    coeffs
}

/// Quantise then dequantise (the lossy step of the codec chain).
pub fn quant_dequant(coeffs: &mut [[f64; BLOCK]; BLOCK]) {
    for (v, row) in coeffs.iter_mut().enumerate() {
        for (u, c) in row.iter_mut().enumerate() {
            let q = QUANT[v][u];
            *c = (*c / q).round() * q;
        }
    }
}

/// Inverse DCT of a block.
pub fn inverse_block(coeffs: &[[f64; BLOCK]; BLOCK]) -> [[f64; BLOCK]; BLOCK] {
    let mut out = [[0.0; BLOCK]; BLOCK];
    for (y, row) in out.iter_mut().enumerate() {
        for (x, p) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (v, crow) in coeffs.iter().enumerate() {
                for (u, &c) in crow.iter().enumerate() {
                    acc += c * basis(v, y) * basis(u, x);
                }
            }
            *p = acc;
        }
    }
    out
}

/// Extracts the 8×8 block at block coordinates `(bx, by)`, with edge
/// clamping for images whose dimensions are not multiples of 8.
fn load_block(img: &GrayImage, bx: usize, by: usize) -> [[f64; BLOCK]; BLOCK] {
    let mut block = [[0.0; BLOCK]; BLOCK];
    for (y, row) in block.iter_mut().enumerate() {
        for (x, p) in row.iter_mut().enumerate() {
            *p = img.get_clamped((bx * BLOCK + x) as isize, (by * BLOCK + y) as isize);
        }
    }
    block
}

/// Stores a block into the image (ignoring out-of-range pixels).
fn store_block(img: &mut GrayImage, bx: usize, by: usize, block: &[[f64; BLOCK]; BLOCK]) {
    for (y, row) in block.iter().enumerate() {
        for (x, &p) in row.iter().enumerate() {
            let ix = bx * BLOCK + x;
            let iy = by * BLOCK + y;
            if ix < img.width() && iy < img.height() {
                img.set(ix, iy, p.clamp(0.0, 255.0));
            }
        }
    }
}

/// Sequential accurate encode-decode round trip: DCT → quantise →
/// dequantise → IDCT for every 8×8 block.
///
/// ```
/// use scorpio_kernels::dct;
/// use scorpio_quality::{gradient, psnr_images};
/// let img = gradient(32, 32);
/// let recon = dct::reference(&img);
/// // Smooth gradients survive quantisation almost perfectly.
/// assert!(psnr_images(&img, &recon) > 35.0);
/// ```
pub fn reference(img: &GrayImage) -> GrayImage {
    let _span = scorpio_obs::span("kernel.dct.reference");
    let (w, h) = (img.width(), img.height());
    let mut out = GrayImage::new(w, h);
    for by in 0..h.div_ceil(BLOCK) {
        for bx in 0..w.div_ceil(BLOCK) {
            let block = load_block(img, bx, by);
            let mut coeffs = forward_block(&block);
            quant_dequant(&mut coeffs);
            let recon = inverse_block(&coeffs);
            store_block(&mut out, bx, by, &recon);
        }
    }
    out
}

/// Task significance per diagonal, taken from the Fig. 4 wave pattern:
/// the DC diagonal is forced accurate, then significance falls linearly
/// with the diagonal index.
pub fn diagonal_significance(d: usize) -> f64 {
    if d == 0 {
        1.0
    } else {
        (DIAGONALS - d) as f64 / DIAGONALS as f64
    }
}

/// Significance-driven task version: 15 tasks, one per coefficient
/// diagonal, each computing its diagonal's coefficients for **all**
/// blocks (the paper's "15 tasks in total"); approximate bodies drop the
/// diagonal. Quantisation, dequantisation and the inverse transform run
/// accurately afterwards.
pub fn tasked(img: &GrayImage, executor: &Executor, ratio: f64) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.dct.tasked");
    let (w, h) = (img.width(), img.height());
    let blocks_x = w.div_ceil(BLOCK);
    let blocks_y = h.div_ceil(BLOCK);
    let n_blocks = blocks_x * blocks_y;

    // Pre-extract pixel blocks (shared read-only input for the tasks).
    let inputs: Vec<[[f64; BLOCK]; BLOCK]> = (0..n_blocks)
        .map(|i| load_block(img, i % blocks_x, i / blocks_x))
        .collect();

    // Coefficient storage: per diagonal, a dense vector of
    // (block, u, v, value) entries — each diagonal task owns its slice.
    let diag_cells: Vec<Vec<(usize, usize)>> = (0..DIAGONALS)
        .map(|d| {
            (0..BLOCK)
                .flat_map(|v| (0..BLOCK).map(move |u| (u, v)))
                .filter(|&(u, v)| u + v == d)
                .collect()
        })
        .collect();
    let mut diag_values: Vec<Vec<f64>> = diag_cells
        .iter()
        .map(|cells| vec![0.0; cells.len() * n_blocks])
        .collect();

    let stats = {
        let mut group = TaskGroup::new("dct-diagonals");
        for (d, values) in diag_values.iter_mut().enumerate() {
            let cells = &diag_cells[d];
            let inputs = &inputs;
            group.spawn(
                diagonal_significance(d),
                move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_accurate_ops((cells.len() * n_blocks * 64) as u64);
                    for (b, input) in inputs.iter().enumerate() {
                        for (k, &(u, v)) in cells.iter().enumerate() {
                            values[b * cells.len() + k] = forward_coefficient(input, u, v);
                        }
                    }
                },
                // Approximate: drop the diagonal (frequency truncation).
                Some(move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_approx_ops(1);
                }),
            );
        }
        group.taskwait(executor, ratio)
    };

    // Reassemble coefficients, quantise and decode (accurate epilogue,
    // counted as accurate work).
    let mut out = GrayImage::new(w, h);
    let mut epilogue_ops = 0u64;
    for b in 0..n_blocks {
        let mut coeffs = [[0.0; BLOCK]; BLOCK];
        for (d, cells) in diag_cells.iter().enumerate() {
            for (k, &(u, v)) in cells.iter().enumerate() {
                coeffs[v][u] = diag_values[d][b * cells.len() + k];
            }
        }
        quant_dequant(&mut coeffs);
        let recon = inverse_block(&coeffs);
        store_block(&mut out, b % blocks_x, b / blocks_x, &recon);
        epilogue_ops += 64 * 64 + 64;
    }
    let mut stats = stats;
    stats.accurate_ops += epilogue_ops;
    (out, stats)
}

/// Loop-perforated DCT (§4.2): perforates the double-nested coefficient
/// loop of each block, skipping a fraction of the 64 coefficients
/// (in raster order — perforation is structure-blind, which is exactly
/// why it loses to the significance-ranked diagonals).
pub fn perforated(img: &GrayImage, keep_fraction: f64) -> (GrayImage, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.dct.perforated");
    let (w, h) = (img.width(), img.height());
    let perf = Perforator::new(BLOCK * BLOCK, keep_fraction);
    let mut out = GrayImage::new(w, h);
    let mut ops = 0u64;
    for by in 0..h.div_ceil(BLOCK) {
        for bx in 0..w.div_ceil(BLOCK) {
            let block = load_block(img, bx, by);
            let mut coeffs = [[0.0; BLOCK]; BLOCK];
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    if perf.keep(v * BLOCK + u) {
                        coeffs[v][u] = forward_coefficient(&block, u, v);
                        ops += 64;
                    }
                }
            }
            quant_dequant(&mut coeffs);
            let recon = inverse_block(&coeffs);
            store_block(&mut out, bx, by, &recon);
            ops += 64 * 64 + 64;
        }
    }
    (
        out,
        ExecutionStats {
            accurate_ops: ops,
            ..ExecutionStats::default()
        },
    )
}

/// Significance analysis of the full per-block pipeline (§4.1.2),
/// profile-driven as in the paper: the 64 pixel inputs are centred on a
/// concrete image block (`block[y][x] ± radius`, the paper registers
/// ranges around profiled values from its benchmark image set), every
/// frequency coefficient is registered as an intermediate, and all 64
/// reconstructed (clipped) pixels are outputs. [`coefficient_map`]
/// reshapes the report into the Fig. 4 8×8 significance map.
///
/// Because Eq. 11 weighs a variable's *enclosure* against its effect on
/// the output, coefficient significance tracks the block's spectral
/// magnitude profile — for natural-image-like content that is exactly
/// the zig-zag decay image-compression experts expect (Fig. 4).
///
/// Quantisation is modelled by its smooth surrogate `c/Q·Q` (the `round`
/// step function has zero derivative almost everywhere, which would
/// erase the analysis' signal); pixel clipping is expressed with min/max
/// so no ambiguous control flow arises.
///
/// # Errors
///
/// Propagates framework errors (none expected).
///
/// # Panics
///
/// Panics if `radius` is negative.
pub fn analysis(block: &[[f64; BLOCK]; BLOCK], radius: f64) -> Result<Report, AnalysisError> {
    let _span = scorpio_obs::span("kernel.dct.analysis");
    assert!(radius >= 0.0, "analysis: negative pixel radius");
    Analysis::new().run(|ctx| register_block(ctx, block, radius))
}

/// [`analysis`] recording into a reusable arena — the per-block body
/// the multi-block batch is built from. Produces exactly the same
/// report as the fresh-tape variant.
///
/// # Errors
///
/// Propagates framework errors (none expected).
///
/// # Panics
///
/// Panics if `radius` is negative.
pub fn analysis_in(
    arena: &mut AnalysisArena,
    block: &[[f64; BLOCK]; BLOCK],
    radius: f64,
) -> Result<Report, AnalysisError> {
    assert!(radius >= 0.0, "analysis: negative pixel radius");
    Analysis::new().run_in(arena, |ctx| register_block(ctx, block, radius))
}

/// Multi-block batch analysis: one full-pipeline analysis per image
/// block, fanned over `engine`'s workers in record-once / replay-many
/// mode — a DCT block records ~100k tape nodes whose structure is
/// block-independent, so each worker compiles the trace from its first
/// block and replays it with every further block's pixel boxes. Returns
/// the Fig. 4 coefficient maps in block order, bit-identical to a
/// serial per-block re-recording loop.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing block.
///
/// # Panics
///
/// Panics if `radius` is negative.
pub fn analysis_blocks(
    blocks: &[[[f64; BLOCK]; BLOCK]],
    radius: f64,
    engine: &ParallelAnalysis,
) -> Result<Vec<[[f64; BLOCK]; BLOCK]>, AnalysisError> {
    analysis_blocks_lanes::<DEFAULT_LANES>(blocks, radius, engine)
}

/// [`analysis_blocks`] with an explicit replay lane width (that
/// function fixes `LANES` = [`DEFAULT_LANES`]): full blocks of `LANES`
/// image blocks are served by **one** walk of the ~100k-op compiled
/// trace. Values are bit-identical for every width.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing block.
///
/// # Panics
///
/// Panics if `radius` is negative.
pub fn analysis_blocks_lanes<const LANES: usize>(
    blocks: &[[[f64; BLOCK]; BLOCK]],
    radius: f64,
    engine: &ParallelAnalysis,
) -> Result<Vec<[[f64; BLOCK]; BLOCK]>, AnalysisError> {
    let _span = scorpio_obs::span("kernel.dct.analysis_blocks");
    assert!(radius >= 0.0, "analysis: negative pixel radius");
    engine
        .run_batch_replay_vars_map_lanes::<LANES, _, _, _, _, _>(
            blocks,
            |block| block_inputs(block, radius),
            |ctx, block| register_block(ctx, block, radius),
            |_, vars| Ok(coefficient_map_with(|name| vars.significance_of(name))),
        )
        .map(|(maps, _stats)| maps)
}

/// Per-block input boxes of [`register_block`], in registration order
/// (row-major pixels, mirroring its `input` calls exactly — the replay
/// driver binds them positionally).
pub fn block_inputs(block: &[[f64; BLOCK]; BLOCK], radius: f64) -> Vec<Interval> {
    let mut inputs = Vec::with_capacity(BLOCK * BLOCK);
    for row in block {
        for &p0 in row {
            let lo = (p0 - radius).max(0.0);
            let hi = (p0 + radius).min(255.0);
            inputs.push(Interval::new(lo, hi.max(lo)));
        }
    }
    inputs
}

/// Registers the full per-block pipeline (see [`analysis`] for the
/// modelling rationale).
///
/// Public so external drivers (e.g. the serve layer) can pair it with
/// [`block_inputs`] under a replay driver; all 64 pixels flow through
/// replayable inputs, so the trace shape is block-independent.
pub fn register_block(
    ctx: &Ctx<'_>,
    block: &[[f64; BLOCK]; BLOCK],
    radius: f64,
) -> Result<(), AnalysisError> {
    let mut pixels = Vec::with_capacity(BLOCK * BLOCK);
    for (y, row) in block.iter().enumerate() {
        for (x, &p0) in row.iter().enumerate() {
            let lo = (p0 - radius).max(0.0);
            let hi = (p0 + radius).min(255.0);
            pixels.push(ctx.input(format!("p{y}_{x}"), lo, hi.max(lo)));
        }
    }

    // Forward DCT, registering every coefficient.
    let mut coeffs = Vec::with_capacity(BLOCK * BLOCK);
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = ctx.constant(0.0);
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    acc = acc + pixels[y * BLOCK + x] * (basis(v, y) * basis(u, x));
                }
            }
            // Quant/dequant surrogate: scale down and back up.
            let c = (acc / QUANT[v][u]) * QUANT[v][u];
            ctx.intermediate(&c, format!("c{v}_{u}"));
            coeffs.push(c);
        }
    }

    // Inverse DCT + clip; all pixels registered as outputs (§2.3
    // vector-function treatment).
    let lo = ctx.constant(0.0);
    let hi = ctx.constant(255.0);
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = ctx.constant(0.0);
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    acc = acc + coeffs[v * BLOCK + u] * (basis(v, y) * basis(u, x));
                }
            }
            let px = acc.min(hi).max(lo);
            ctx.output(&px, format!("out{y}_{x}"));
        }
    }
    Ok(())
}

/// A natural-image-like test block (smooth diagonal shading with a soft
/// feature), standing in for the paper's benchmark image set.
pub fn natural_test_block() -> [[f64; BLOCK]; BLOCK] {
    let mut block = [[0.0; BLOCK]; BLOCK];
    for (y, row) in block.iter_mut().enumerate() {
        for (x, p) in row.iter_mut().enumerate() {
            let dx = x as f64 - 3.0;
            let dy = y as f64 - 4.0;
            let feature = 60.0 * (-(dx * dx + dy * dy) / 10.0).exp();
            *p = (40.0 + 18.0 * x as f64 + 9.0 * y as f64 + feature).min(255.0);
        }
    }
    block
}

/// Runs [`analysis`] on [`natural_test_block`] with the pixel-noise
/// radius the figure harness uses.
///
/// # Errors
///
/// Propagates framework errors (none expected).
pub fn analysis_default() -> Result<Report, AnalysisError> {
    analysis(&natural_test_block(), 8.0)
}

/// Reshapes an [`analysis`] report into the 8×8 coefficient-significance
/// map of Fig. 4 (`map[v][u]`).
pub fn coefficient_map(report: &Report) -> [[f64; BLOCK]; BLOCK] {
    coefficient_map_with(|name| report.significance_of(name))
}

/// [`coefficient_map`] over any named-significance lookup — shared by
/// the full-report and replay-mode (rows-only) paths.
fn coefficient_map_with(significance_of: impl Fn(&str) -> Option<f64>) -> [[f64; BLOCK]; BLOCK] {
    let mut map = [[0.0; BLOCK]; BLOCK];
    for (v, row) in map.iter_mut().enumerate() {
        for (u, s) in row.iter_mut().enumerate() {
            *s = significance_of(&format!("c{v}_{u}")).unwrap_or(f64::NAN);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::{gradient, psnr_images, value_noise};

    #[test]
    fn dct_roundtrip_without_quantisation_is_exact() {
        let block = [[128.0; BLOCK]; BLOCK];
        let coeffs = forward_block(&block);
        // Flat block: only DC is nonzero.
        assert!((coeffs[0][0] - 8.0 * 128.0).abs() < 1e-9);
        for v in 0..BLOCK {
            for u in 0..BLOCK {
                if (u, v) != (0, 0) {
                    assert!(coeffs[v][u].abs() < 1e-9, "c[{v}][{u}]");
                }
            }
        }
        let recon = inverse_block(&coeffs);
        for row in &recon {
            for &p in row {
                assert!((p - 128.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dct_is_orthonormal() {
        // Random block → forward → inverse reproduces the input.
        let mut block = [[0.0; BLOCK]; BLOCK];
        for (y, row) in block.iter_mut().enumerate() {
            for (x, p) in row.iter_mut().enumerate() {
                *p = ((x * 31 + y * 17) % 256) as f64;
            }
        }
        let recon = inverse_block(&forward_block(&block));
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                assert!((recon[y][x] - block[y][x]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reference_reconstruction_quality_reasonable() {
        let img = value_noise(32, 32, 11);
        let recon = reference(&img);
        let p = psnr_images(&img, &recon);
        assert!(p > 25.0, "round-trip PSNR {p}");
    }

    #[test]
    fn tasked_ratio_one_matches_reference() {
        let img = gradient(24, 16);
        let executor = Executor::new(4);
        let (out, stats) = tasked(&img, &executor, 1.0);
        assert_eq!(out, reference(&img));
        assert_eq!(stats.accurate, DIAGONALS);
    }

    #[test]
    fn tasked_quality_monotone_in_ratio() {
        let img = value_noise(32, 32, 4);
        let executor = Executor::new(4);
        let full = reference(&img);
        let mut last = -1.0;
        for ratio in [0.1, 0.4, 0.7, 1.0] {
            let (out, _) = tasked(&img, &executor, ratio);
            let p = psnr_images(&full, &out);
            assert!(
                p >= last - 0.5,
                "PSNR fell from {last} to {p} at ratio {ratio}"
            );
            last = p;
        }
    }

    #[test]
    fn dc_diagonal_survives_ratio_zero() {
        // Significance 1.0 forces the DC task: even at ratio 0 the output
        // preserves block averages.
        let img = gradient(16, 16);
        let executor = Executor::new(2);
        let (out, _) = tasked(&img, &executor, 0.0);
        // Mean of the output approximates the mean of the input.
        let mean_in: f64 = img.pixels().iter().sum::<f64>() / img.pixels().len() as f64;
        let mean_out: f64 = out.pixels().iter().sum::<f64>() / out.pixels().len() as f64;
        assert!((mean_in - mean_out).abs() < 10.0);
    }

    #[test]
    fn significance_beats_perforation_on_quality() {
        // Fig. 7 DCT: the significance version wins by ~11 dB on average
        // because perforation drops raster-order (including low-frequency)
        // coefficients while the diagonal tasks drop high frequencies.
        let img = value_noise(48, 48, 21);
        let executor = Executor::new(4);
        let full = reference(&img);
        for ratio in [0.2, 0.5, 0.8] {
            let (sig_out, _) = tasked(&img, &executor, ratio);
            let (perf_out, _) = perforated(&img, ratio);
            let psnr_sig = psnr_images(&full, &sig_out);
            let psnr_perf = psnr_images(&full, &perf_out);
            assert!(
                psnr_sig > psnr_perf,
                "ratio {ratio}: sig {psnr_sig} dB vs perf {psnr_perf} dB"
            );
        }
    }

    #[test]
    fn diagonal_significance_monotone() {
        for d in 1..DIAGONALS {
            assert!(diagonal_significance(d) <= diagonal_significance(d - 1));
        }
        assert_eq!(diagonal_significance(0), 1.0);
    }

    #[test]
    fn analysis_reproduces_fig4_wave() {
        let report = analysis_default().unwrap();
        let map = coefficient_map(&report);
        // DC is the most significant coefficient.
        let dc = map[0][0];
        for (v, row) in map.iter().enumerate() {
            for (u, &s) in row.iter().enumerate() {
                assert!(s.is_finite());
                if (u, v) != (0, 0) {
                    assert!(s <= dc, "c[{v}][{u}] = {s} exceeds DC {dc}");
                }
            }
        }
        // Wave pattern: mean significance per diagonal decreases.
        let mut diag_means = Vec::new();
        for d in 0..DIAGONALS {
            let cells: Vec<f64> = (0..BLOCK)
                .flat_map(|v| (0..BLOCK).map(move |u| (u, v)))
                .filter(|&(u, v)| u + v == d)
                .map(|(u, v)| map[v][u])
                .collect();
            diag_means.push(cells.iter().sum::<f64>() / cells.len() as f64);
        }
        for d in 1..DIAGONALS {
            assert!(
                diag_means[d] <= diag_means[d - 1] * 1.05 + 1e-12,
                "diagonal means not wave-decreasing: {diag_means:?}"
            );
        }
        // And strictly decreasing overall (first vs last).
        assert!(diag_means[0] > diag_means[DIAGONALS - 1]);
    }
}
