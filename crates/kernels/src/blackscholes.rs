//! BlackScholes option pricing (§4.1.5), after the Parsec benchmark.
//!
//! Prices European options with the Black-Scholes closed form:
//!
//! ```text
//! d1 = (ln(S/K) + (r + v²/2)·T) / (v·√T)        — block A
//! d2 = d1 − v·√T                                 — block B
//! price_call = S·Φ(d1) − K·e^(−rT)·Φ(d2)
//! ```
//!
//! The analysis decomposes the computation into four blocks
//! `A, B, C, D` with `sig(A) > sig(B) ≫ sig(C) > sig(D)` (§4.1.5): the
//! `d1`/`d2` computations dominate, the CNDF evaluations and the
//! discount factor tolerate much looser arithmetic. The approximate task
//! body therefore keeps A/B in full precision and evaluates the C/D
//! blocks with [`scorpio_fastmath`] kernels.
//!
//! Loop perforation is **not applicable** to this benchmark — pricing one
//! option has no loop to perforate (§4.2) — so only the
//! significance-driven version exists, as in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scorpio_core::{
    Analysis, AnalysisArena, AnalysisError, Ctx, ParallelAnalysis, Report, VarSignificances,
    DEFAULT_LANES,
};
use scorpio_fastmath::{fast_cndf, fast_exp, fast_ln, fast_sqrt};
use scorpio_interval::real::cndf;
use scorpio_interval::Interval;
use scorpio_runtime::{ExecutionStats, Executor, TaskGroup};

/// One option contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Option_ {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
    /// Time to expiry (years).
    pub time: f64,
    /// `true` for a call, `false` for a put.
    pub call: bool,
}

/// Generates a Parsec-like batch of options (their input generator's
/// documented parameter ranges), deterministically from `seed`.
pub fn generate_options(n: usize, seed: u64) -> Vec<Option_> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Option_ {
            spot: rng.gen_range(5.0..120.0),
            strike: rng.gen_range(10.0..100.0),
            rate: rng.gen_range(0.01..0.1),
            volatility: rng.gen_range(0.05..0.65),
            time: rng.gen_range(0.1..2.0),
            call: rng.gen_bool(0.5),
        })
        .collect()
}

/// Accurate price of one option (double-precision CNDF via `erfc`).
///
/// ```
/// use scorpio_kernels::blackscholes::{price, Option_};
/// let opt = Option_ {
///     spot: 100.0, strike: 100.0, rate: 0.05,
///     volatility: 0.2, time: 1.0, call: true,
/// };
/// let p = price(&opt);
/// assert!((p - 10.4506).abs() < 1e-3); // textbook value
/// ```
pub fn price(opt: &Option_) -> f64 {
    // Block A: d1.
    let sqrt_t = opt.time.sqrt();
    let d1 = ((opt.spot / opt.strike).ln()
        + (opt.rate + 0.5 * opt.volatility * opt.volatility) * opt.time)
        / (opt.volatility * sqrt_t);
    // Block B: d2.
    let d2 = d1 - opt.volatility * sqrt_t;
    // Block C: the CNDF evaluations.
    let nd1 = cndf(d1);
    let nd2 = cndf(d2);
    // Block D: discounting and combination.
    let discount = opt.strike * (-opt.rate * opt.time).exp();
    if opt.call {
        opt.spot * nd1 - discount * nd2
    } else {
        discount * (1.0 - nd2) - opt.spot * (1.0 - nd1)
    }
}

/// Approximate price: blocks A/B accurate, blocks C/D via fastmath
/// (`fast_cndf`, `fast_exp`, `fast_ln`, `fast_sqrt`) — the paper's
/// fastapprox substitution.
pub fn price_approx(opt: &Option_) -> f64 {
    let sqrt_t = fast_sqrt(opt.time);
    let d1 = (fast_ln(opt.spot / opt.strike)
        + (opt.rate + 0.5 * opt.volatility * opt.volatility) * opt.time)
        / (opt.volatility * sqrt_t);
    let d2 = d1 - opt.volatility * sqrt_t;
    let nd1 = fast_cndf(d1);
    let nd2 = fast_cndf(d2);
    let discount = opt.strike * fast_exp(-opt.rate * opt.time);
    if opt.call {
        opt.spot * nd1 - discount * nd2
    } else {
        discount * (1.0 - nd2) - opt.spot * (1.0 - nd1)
    }
}

/// Sequential accurate pricing of a batch.
pub fn reference(options: &[Option_]) -> Vec<f64> {
    let _span = scorpio_obs::span("kernel.blackscholes.reference");
    options.iter().map(price).collect()
}

/// Significance-driven task version: the batch is split into chunks of
/// `chunk` options, one task each (uniform significance 0.5 — the block
/// ranking lives *inside* the approximate body, per §4.1.5); approximate
/// tasks price with [`price_approx`].
pub fn tasked(
    options: &[Option_],
    chunk: usize,
    executor: &Executor,
    ratio: f64,
) -> (Vec<f64>, ExecutionStats) {
    let _span = scorpio_obs::span("kernel.blackscholes.tasked");
    assert!(chunk > 0, "chunk size must be positive");
    let mut prices = vec![0.0f64; options.len()];
    let stats = {
        let mut group = TaskGroup::new("blackscholes");
        for (opts, out) in options.chunks(chunk).zip(prices.chunks_mut(chunk)) {
            let out_acc: *mut [f64] = out;
            let out_acc = SendSlice(out_acc);
            let out_apx = SendSlice(out_acc.0);
            group.spawn(
                0.5,
                move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_accurate_ops(opts.len() as u64 * 10);
                    let out = out_acc.get();
                    for (o, slot) in opts.iter().zip(out.iter_mut()) {
                        *slot = price(o);
                    }
                },
                Some(move |ctx: &scorpio_runtime::TaskCtx| {
                    ctx.count_approx_ops(opts.len() as u64 * 10);
                    let out = out_apx.get();
                    for (o, slot) in opts.iter().zip(out.iter_mut()) {
                        *slot = price_approx(o);
                    }
                }),
            );
        }
        group.taskwait(executor, ratio)
    };
    (prices, stats)
}

/// Slice wrapper for the exactly-one-body-runs write pattern.
struct SendSlice(*mut [f64]);

impl SendSlice {
    #[allow(clippy::mut_from_ref)]
    fn get(&self) -> &mut [f64] {
        // SAFETY: disjoint chunks per task; one body per task runs; the
        // buffer outlives the group.
        unsafe { &mut *self.0 }
    }
}

// SAFETY: see `SendSlice::get`.
unsafe impl Send for SendSlice {}

/// Significance analysis of one option pricing (§4.1.5): inputs are the
/// five market parameters over their Parsec generation ranges; the four
/// blocks `A` (d1), `B` (d2), `C` (the CNDF values), `D` (the discount
/// factor) are registered as intermediates, the call price as the
/// output.
///
/// # Errors
///
/// Propagates framework errors (the call-price path is branch-free).
pub fn analysis() -> Result<Report, AnalysisError> {
    let _span = scorpio_obs::span("kernel.blackscholes.analysis");
    Analysis::new().run(|ctx| {
        let spot = ctx.input("spot", 80.0, 120.0);
        let strike = ctx.input("strike", 90.0, 110.0);
        let rate = ctx.input("rate", 0.01, 0.1);
        let vol = ctx.input("volatility", 0.15, 0.65);
        let time = ctx.input("time", 0.25, 2.0);

        // Block A: d1.
        let sqrt_t = time.sqrt();
        let d1 = ((spot / strike).ln() + (rate + vol.sqr() * 0.5) * time) / (vol * sqrt_t);
        ctx.intermediate(&d1, "A");

        // Block B: d2.
        let d2 = d1 - vol * sqrt_t;
        ctx.intermediate(&d2, "B");

        // Block C: CNDF evaluations.
        let nd1 = d1.cndf();
        ctx.intermediate(&nd1, "C1");
        let nd2 = d2.cndf();
        ctx.intermediate(&nd2, "C2");

        // Block D: the discount factor.
        let discount = (-(rate * time)).exp();
        ctx.intermediate(&discount, "D");

        let price = spot * nd1 - strike * discount * nd2;
        ctx.output(&price, "price");
        Ok(())
    })
}

/// The per-block significances `(A, B, C, D)` from an [`analysis`]
/// report, with C the summed CNDF blocks.
pub fn block_significances(report: &Report) -> (f64, f64, f64, f64) {
    let s = |n: &str| report.significance_of(n).unwrap_or(0.0);
    (s("A"), s("B"), s("C1") + s("C2"), s("D"))
}

/// Relative half-width each market parameter is boxed with in the
/// per-option analysis: ±2% around the option's concrete values keeps
/// the interval enclosures tight enough to stay branch-free while still
/// exercising the adjoint sweep per operating point.
const OPTION_BOX_FRACTION: f64 = 0.02;

/// Per-option significance analysis recording into a reusable arena:
/// the same block structure as [`analysis`], but with every market
/// parameter boxed tightly around `o`'s concrete values, returning the
/// block significances `(A, B, C, D)` at that operating point.
///
/// # Errors
///
/// Propagates framework errors (the call-price path is branch-free).
pub fn analysis_option_in(
    arena: &mut AnalysisArena,
    o: &Option_,
) -> Result<(f64, f64, f64, f64), AnalysisError> {
    let report = Analysis::new().run_in(arena, |ctx| register_option(ctx, o))?;
    Ok(block_significances(&report))
}

/// Per-option batch analysis (§4.1.5 at scale): one tight-box analysis
/// per option, fanned over `engine`'s workers in record-once /
/// replay-many mode — each worker records and compiles the (branch-free,
/// option-independent) pricing trace once, then replays it with every
/// option's input boxes. Returns `(A, B, C, D)` block significances in
/// option order, bit-identical to a serial per-option re-recording loop.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing option.
pub fn analysis_options(
    options: &[Option_],
    engine: &ParallelAnalysis,
) -> Result<Vec<(f64, f64, f64, f64)>, AnalysisError> {
    analysis_options_lanes::<DEFAULT_LANES>(options, engine)
}

/// [`analysis_options`] with an explicit replay lane width (that
/// function fixes `LANES` = [`DEFAULT_LANES`]): full blocks of `LANES`
/// options are served by **one** walk of the compiled pricing trace.
/// Values are bit-identical for every width.
///
/// # Errors
///
/// Propagates the error of the lowest-indexed failing option.
pub fn analysis_options_lanes<const LANES: usize>(
    options: &[Option_],
    engine: &ParallelAnalysis,
) -> Result<Vec<(f64, f64, f64, f64)>, AnalysisError> {
    let _span = scorpio_obs::span("kernel.blackscholes.analysis_options");
    engine
        .run_batch_replay_vars_map_lanes::<LANES, _, _, _, _, _>(
            options,
            option_inputs,
            register_option,
            |_, vars| Ok(block_significances_vars(vars)),
        )
        .map(|(sigs, _stats)| sigs)
}

/// Per-option input boxes of [`register_option`], in registration order
/// (mirroring its `input_centered` calls exactly, as the replay driver
/// binds them positionally).
pub fn option_inputs(o: &Option_) -> Vec<Interval> {
    let boxed = |v: f64| Interval::centered(v, v.abs() * OPTION_BOX_FRACTION);
    vec![
        boxed(o.spot),
        boxed(o.strike),
        boxed(o.rate),
        boxed(o.volatility),
        boxed(o.time),
    ]
}

/// [`block_significances`] over replay-mode rows.
fn block_significances_vars(vars: &VarSignificances) -> (f64, f64, f64, f64) {
    let s = |n: &str| vars.significance_of(n).unwrap_or(0.0);
    (s("A"), s("B"), s("C1") + s("C2"), s("D"))
}

/// Registers the block-structured pricing computation with every input
/// boxed ±2 % (`OPTION_BOX_FRACTION`) around `o`'s values.
///
/// Public so external drivers (e.g. the serve layer) can pair it with
/// [`option_inputs`] under a replay driver; all five option parameters
/// flow through replayable inputs, so the trace shape is
/// option-independent.
pub fn register_option(ctx: &Ctx<'_>, o: &Option_) -> Result<(), AnalysisError> {
    let boxed = |v: f64| v.abs() * OPTION_BOX_FRACTION;
    let spot = ctx.input_centered("spot", o.spot, boxed(o.spot));
    let strike = ctx.input_centered("strike", o.strike, boxed(o.strike));
    let rate = ctx.input_centered("rate", o.rate, boxed(o.rate));
    let vol = ctx.input_centered("volatility", o.volatility, boxed(o.volatility));
    let time = ctx.input_centered("time", o.time, boxed(o.time));

    let sqrt_t = time.sqrt();
    let d1 = ((spot / strike).ln() + (rate + vol.sqr() * 0.5) * time) / (vol * sqrt_t);
    ctx.intermediate(&d1, "A");
    let d2 = d1 - vol * sqrt_t;
    ctx.intermediate(&d2, "B");
    let nd1 = d1.cndf();
    ctx.intermediate(&nd1, "C1");
    let nd2 = d2.cndf();
    ctx.intermediate(&nd2, "C2");
    let discount = (-(rate * time)).exp();
    ctx.intermediate(&discount, "D");
    let price = spot * nd1 - strike * discount * nd2;
    ctx.output(&price, "price");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_quality::{mean_relative_error, relative_error_l2};

    #[test]
    fn put_call_parity() {
        let call = Option_ {
            spot: 95.0,
            strike: 100.0,
            rate: 0.04,
            volatility: 0.3,
            time: 0.75,
            call: true,
        };
        let put = Option_ { call: false, ..call };
        let lhs = price(&call) - price(&put);
        let rhs = call.spot - call.strike * (-call.rate * call.time).exp();
        assert!((lhs - rhs).abs() < 1e-10, "parity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn price_bounds() {
        for o in generate_options(500, 3) {
            let p = price(&o);
            assert!(p >= -1e-9, "negative price {p} for {o:?}");
            if o.call {
                assert!(p <= o.spot + 1e-9);
            } else {
                assert!(p <= o.strike + 1e-9);
            }
        }
    }

    #[test]
    fn approx_price_is_close() {
        let opts = generate_options(1000, 11);
        let exact: Vec<f64> = opts.iter().map(price).collect();
        let approx: Vec<f64> = opts.iter().map(price_approx).collect();
        let err = mean_relative_error(&exact, &approx);
        assert!(err < 1e-3, "mean rel err {err}");
    }

    #[test]
    fn tasked_ratio_one_matches_reference() {
        let opts = generate_options(256, 5);
        let executor = Executor::new(4);
        let (prices, stats) = tasked(&opts, 32, &executor, 1.0);
        assert_eq!(prices, reference(&opts));
        assert_eq!(stats.accurate, 8);
    }

    #[test]
    fn tasked_error_monotone_in_ratio() {
        let opts = generate_options(256, 7);
        let executor = Executor::new(4);
        let exact = reference(&opts);
        let mut last = f64::INFINITY;
        for ratio in [0.0, 0.5, 1.0] {
            let (prices, _) = tasked(&opts, 16, &executor, ratio);
            let err = relative_error_l2(&exact, &prices);
            assert!(err <= last + 1e-15, "err {err} after {last}");
            last = err;
        }
        assert_eq!(last, 0.0);
    }

    #[test]
    fn analysis_block_ordering() {
        // §4.1.5: sig(A) > sig(B) ≫ sig(C) > sig(D).
        let report = analysis().unwrap();
        let (a, b, c, d) = block_significances(&report);
        assert!(a > b, "A = {a} must exceed B = {b}");
        assert!(b > c, "B = {b} must exceed C = {c}");
        assert!(c > d, "C = {c} must exceed D = {d}");
        // The "≫" between B and C: at least 2×.
        assert!(b / c > 2.0, "B/C = {}", b / c);
    }

    #[test]
    fn replayed_batch_matches_rerecorded_options_bitwise() {
        let opts = generate_options(24, 13);
        let engine = ParallelAnalysis::new(1);
        let replayed = analysis_options(&opts, &engine).unwrap();
        let mut arena = AnalysisArena::new();
        for (o, r) in opts.iter().zip(&replayed) {
            let fresh = analysis_option_in(&mut arena, o).unwrap();
            assert_eq!(r.0.to_bits(), fresh.0.to_bits(), "A diverged for {o:?}");
            assert_eq!(r.1.to_bits(), fresh.1.to_bits(), "B diverged for {o:?}");
            assert_eq!(r.2.to_bits(), fresh.2.to_bits(), "C diverged for {o:?}");
            assert_eq!(r.3.to_bits(), fresh.3.to_bits(), "D diverged for {o:?}");
        }
    }

    #[test]
    fn generated_options_in_parsec_ranges() {
        for o in generate_options(200, 1) {
            assert!((5.0..120.0).contains(&o.spot));
            assert!((10.0..100.0).contains(&o.strike));
            assert!((0.01..0.1).contains(&o.rate));
            assert!((0.05..0.65).contains(&o.volatility));
            assert!((0.1..2.0).contains(&o.time));
        }
    }
}
