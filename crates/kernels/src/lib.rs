//! The benchmark kernels of the CGO'16 evaluation (§4.1), each in three
//! versions:
//!
//! * **reference** — the sequential, fully accurate implementation;
//! * **tasked** — restructured into significance-annotated tasks per the
//!   analysis results, with approximate task bodies, executed through
//!   [`scorpio_runtime`] under the `ratio` quality knob;
//! * **perforated** — the loop-perforation baseline (§4.2) skipping the
//!   same fraction of computation.
//!
//! Every kernel module also exposes its **significance analysis**: the
//! instrumented closure reproducing the per-kernel findings of §4.1
//! (Sobel's A/B/C block ranking, the Fig. 4 DCT coefficient map, the
//! Fig. 5/6 Fisheye maps, N-Body's distance correlation, BlackScholes'
//! block ordering) via [`scorpio_core`].
//!
//! | module | paper section | task structure | approximate version |
//! |---|---|---|---|
//! | [`maclaurin`] | §3 running example | one task per series term | `fast_pow` / dropped term |
//! | [`sobel`] | §4.1.1 | per row: parts A (±2), B, C (±1) + combine group | drop the part's contribution |
//! | [`dct`] | §4.1.2 | one task per 8×8 coefficient diagonal | drop the diagonal's coefficients |
//! | [`jpeg`] | end-to-end codec scenario | one task per 8×8 pixel block | BinDCT shift/add lifting transform |
//! | [`fisheye`] | §4.1.3 | one task per 128×64 output block | corner-interpolated mapping + 2×2 bilinear |
//! | [`nbody`] | §4.1.4 | one task per (atom, region) | region centre-of-mass force |
//! | [`blackscholes`] | §4.1.5 | one task per option chunk | fastmath for the C/D blocks |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blackscholes;
pub mod dct;
pub mod fisheye;
pub mod jpeg;
pub mod maclaurin;
pub mod nbody;
pub mod sobel;
