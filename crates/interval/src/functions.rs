//! Elementary interval functions (the `φ_j` of Eq. 5 in the paper).
//!
//! Every function returns an enclosure of the pointwise image
//! `{ f(x) | x ∈ [self] }`. Monotone functions are evaluated at the
//! endpoints and padded outward by a few ULPs to absorb libm error
//! (see [`crate::rounding::ULP_PAD_TRANSCENDENTAL`]); periodic functions
//! additionally test for interior extrema.

use std::f64::consts::{FRAC_PI_2, PI};

use crate::interval::Interval;
use crate::real;
use crate::rounding::{pad_hi, pad_lo, round_hi, round_lo};

/// Decides conservatively whether some point `offset + k·period` (k ∈ ℤ)
/// lies in `[lo, hi]`. "Conservative" means: may answer `true` when the
/// point is just outside (harmless — only widens enclosures), but never
/// answers `false` when a point is inside.
fn contains_grid_point(lo: f64, hi: f64, offset: f64, period: f64) -> bool {
    debug_assert!(period > 0.0);
    if !lo.is_finite() || !hi.is_finite() {
        return true;
    }
    // Absorb the error of the argument reduction below.
    let eps = 8.0 * f64::EPSILON * (lo.abs().max(hi.abs()).max(1.0));
    let lo = lo - eps;
    let hi = hi + eps;
    let k = ((lo - offset) / period).ceil();
    offset + k * period <= hi
}

impl Interval {
    /// Absolute value: `{ |x| : x ∈ [self] }`. Exact (no rounding error).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// assert_eq!(Interval::new(-3.0, 2.0).abs(), Interval::new(0.0, 3.0));
    /// ```
    #[inline]
    pub fn abs(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(self.mig(), self.mag())
    }

    /// The square `x²`, tighter than `self * self` because the two factors
    /// are correlated.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let x = Interval::new(-2.0, 1.0);
    /// assert!(x.sqr().encloses(Interval::new(0.0, 4.0)));
    /// assert!(x.sqr().inf() >= 0.0); // x*x would give −2
    /// ```
    #[inline]
    pub fn sqr(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        let lo = self.mig();
        let hi = self.mag();
        Interval::make(round_lo(lo * lo).max(0.0), round_hi(hi * hi))
    }

    /// Square root; the domain is intersected with `[0, ∞)`.
    ///
    /// Returns the empty interval if `sup < 0`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let r = Interval::new(4.0, 9.0).sqrt();
    /// assert!(r.contains(2.0) && r.contains(3.0));
    /// ```
    #[inline]
    pub fn sqrt(self) -> Interval {
        if self.is_empty() || self.sup() < 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.inf() <= 0.0 {
            0.0
        } else {
            round_lo(self.inf().sqrt()).max(0.0)
        };
        Interval::make(lo, round_hi(self.sup().sqrt()))
    }

    /// Reciprocal `1/x`; the same zero-divisor rules as division apply.
    #[inline]
    pub fn recip(self) -> Interval {
        Interval::ONE / self
    }

    /// Exponential `eˣ`. Always non-negative.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let r = Interval::new(0.0, 1.0).exp();
    /// assert!(r.contains(1.0) && r.contains(std::f64::consts::E));
    /// ```
    #[inline]
    pub fn exp(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(pad_lo(self.inf().exp()).max(0.0), pad_hi(self.sup().exp()))
    }

    /// Base-2 exponential `2ˣ`.
    #[inline]
    pub fn exp2(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(
            pad_lo(self.inf().exp2()).max(0.0),
            pad_hi(self.sup().exp2()),
        )
    }

    /// Natural logarithm; the domain is intersected with `(0, ∞)`.
    ///
    /// Returns the empty interval if `sup ≤ 0`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let r = Interval::new(1.0, std::f64::consts::E).ln();
    /// assert!(r.contains(0.0) && r.contains(1.0));
    /// ```
    #[inline]
    pub fn ln(self) -> Interval {
        if self.is_empty() || self.sup() <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.inf() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            pad_lo(self.inf().ln())
        };
        Interval::make(lo, pad_hi(self.sup().ln()))
    }

    /// Base-2 logarithm with the same domain handling as [`Interval::ln`].
    #[inline]
    pub fn log2(self) -> Interval {
        if self.is_empty() || self.sup() <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.inf() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            pad_lo(self.inf().log2())
        };
        Interval::make(lo, pad_hi(self.sup().log2()))
    }

    /// Base-10 logarithm with the same domain handling as [`Interval::ln`].
    #[inline]
    pub fn log10(self) -> Interval {
        if self.is_empty() || self.sup() <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.inf() <= 0.0 {
            f64::NEG_INFINITY
        } else {
            pad_lo(self.inf().log10())
        };
        Interval::make(lo, pad_hi(self.sup().log10()))
    }

    /// Sine. Interior extrema at `π/2 + 2kπ` (maxima) and `−π/2 + 2kπ`
    /// (minima) are detected conservatively.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// use std::f64::consts::PI;
    /// // Contains the maximum at π/2:
    /// let r = Interval::new(0.0, PI).sin();
    /// assert!(r.sup() >= 1.0);
    /// assert!(r.contains(0.0));
    /// ```
    pub fn sin(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        if !self.is_bounded() || self.width() >= 2.0 * PI {
            return Interval::make(-1.0, 1.0);
        }
        let (a, b) = (self.inf(), self.sup());
        let sa = a.sin();
        let sb = b.sin();
        let mut lo = pad_lo(sa.min(sb));
        let mut hi = pad_hi(sa.max(sb));
        if contains_grid_point(a, b, FRAC_PI_2, 2.0 * PI) {
            hi = 1.0;
        }
        if contains_grid_point(a, b, -FRAC_PI_2, 2.0 * PI) {
            lo = -1.0;
        }
        Interval::make(lo.max(-1.0), hi.min(1.0))
    }

    /// Cosine. Interior extrema at `2kπ` (maxima) and `π + 2kπ` (minima)
    /// are detected conservatively.
    pub fn cos(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        if !self.is_bounded() || self.width() >= 2.0 * PI {
            return Interval::make(-1.0, 1.0);
        }
        let (a, b) = (self.inf(), self.sup());
        let ca = a.cos();
        let cb = b.cos();
        let mut lo = pad_lo(ca.min(cb));
        let mut hi = pad_hi(ca.max(cb));
        if contains_grid_point(a, b, 0.0, 2.0 * PI) {
            hi = 1.0;
        }
        if contains_grid_point(a, b, PI, 2.0 * PI) {
            lo = -1.0;
        }
        Interval::make(lo.max(-1.0), hi.min(1.0))
    }

    /// Tangent. If the interval contains a pole `π/2 + kπ` the result is the
    /// whole real line.
    pub fn tan(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        if !self.is_bounded() || self.width() >= PI {
            return Interval::ENTIRE;
        }
        let (a, b) = (self.inf(), self.sup());
        if contains_grid_point(a, b, FRAC_PI_2, PI) {
            return Interval::ENTIRE;
        }
        Interval::make(pad_lo(a.tan()), pad_hi(b.tan()))
    }

    /// Arc-tangent (monotone, total).
    #[inline]
    pub fn atan(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(
            pad_lo(self.inf().atan()).max(-FRAC_PI_2),
            pad_hi(self.sup().atan()).min(FRAC_PI_2),
        )
    }

    /// Arc-sine; domain intersected with `[-1, 1]`, empty if disjoint.
    pub fn asin(self) -> Interval {
        let x = self.intersection(Interval::make(-1.0, 1.0));
        if x.is_empty() {
            return x;
        }
        Interval::make(pad_lo(x.inf().asin()), pad_hi(x.sup().asin()))
    }

    /// Arc-cosine; domain intersected with `[-1, 1]`, empty if disjoint.
    pub fn acos(self) -> Interval {
        let x = self.intersection(Interval::make(-1.0, 1.0));
        if x.is_empty() {
            return x;
        }
        // acos is decreasing.
        Interval::make(pad_lo(x.sup().acos()).max(0.0), pad_hi(x.inf().acos()))
    }

    /// Hyperbolic sine (monotone, total).
    #[inline]
    pub fn sinh(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(pad_lo(self.inf().sinh()), pad_hi(self.sup().sinh()))
    }

    /// Hyperbolic cosine (even; minimum 1 at 0).
    pub fn cosh(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        let lo = if self.contains(0.0) {
            1.0
        } else {
            pad_lo(self.mig().cosh()).max(1.0)
        };
        Interval::make(lo, pad_hi(self.mag().cosh()))
    }

    /// Hyperbolic tangent (monotone, range `(-1, 1)`).
    #[inline]
    pub fn tanh(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(
            pad_lo(self.inf().tanh()).max(-1.0),
            pad_hi(self.sup().tanh()).min(1.0),
        )
    }

    /// Error function (monotone, range `(-1, 1)`); see [`real::erf`].
    pub fn erf(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        let f = |x: f64| real::erf(x);
        let lo = f(self.inf());
        let hi = f(self.sup());
        let pad = |v: f64| v.abs() * real::ERF_REL_ERROR + f64::MIN_POSITIVE;
        Interval::make(
            pad_lo(lo - pad(lo)).max(-1.0),
            pad_hi(hi + pad(hi)).min(1.0),
        )
    }

    /// Complementary error function (decreasing, range `(0, 2)`).
    pub fn erfc(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        let lo = real::erfc(self.sup());
        let hi = real::erfc(self.inf());
        let pad = |v: f64| v.abs() * real::ERF_REL_ERROR + f64::MIN_POSITIVE;
        Interval::make(pad_lo(lo - pad(lo)).max(0.0), pad_hi(hi + pad(hi)).min(2.0))
    }

    /// Standard-normal CDF `Φ(x)` (monotone, range `(0, 1)`); see
    /// [`real::cndf`].
    pub fn cndf(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        let lo = real::cndf(self.inf());
        let hi = real::cndf(self.sup());
        let pad = |v: f64| v.abs() * real::ERF_REL_ERROR + f64::MIN_POSITIVE;
        Interval::make(pad_lo(lo - pad(lo)).max(0.0), pad_hi(hi + pad(hi)).min(1.0))
    }

    /// Integer power `xⁿ`, with `x⁰ = [1, 1]` for every `x` (matching the
    /// `pow(x, 0) = 1` convention the paper leans on for the Maclaurin
    /// example's zero-significance first term).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let x = Interval::new(-2.0, 3.0);
    /// assert_eq!(x.powi(0), Interval::ONE);
    /// assert!(x.powi(2).encloses(Interval::new(0.0, 9.0)));
    /// assert!(x.powi(3).encloses(Interval::new(-8.0, 27.0)));
    /// ```
    pub fn powi(self, n: i32) -> Interval {
        if self.is_empty() {
            return self;
        }
        if n == 0 {
            return Interval::ONE;
        }
        if n < 0 {
            return self.powi(-n).recip();
        }
        if n % 2 == 0 {
            let lo = self.mig();
            let hi = self.mag();
            Interval::make(pad_lo(lo.powi(n)).max(0.0), pad_hi(hi.powi(n)))
        } else {
            Interval::make(pad_lo(self.inf().powi(n)), pad_hi(self.sup().powi(n)))
        }
    }

    /// Real power `x^p` for scalar `p`, defined on `x ≥ 0` (the domain is
    /// intersected with `[0, ∞)`; empty if disjoint).
    ///
    /// For integer exponents prefer [`Interval::powi`], which also covers
    /// negative bases.
    pub fn powf(self, p: f64) -> Interval {
        if self.is_empty() || p.is_nan() {
            return Interval::EMPTY;
        }
        if p == 0.0 {
            return Interval::ONE;
        }
        let x = self.intersection(Interval::make(0.0, f64::INFINITY));
        if x.is_empty() {
            return Interval::EMPTY;
        }
        let (a, b) = (x.inf(), x.sup());
        let va = a.powf(p);
        let vb = b.powf(p);
        // x^p on [0, ∞) is monotone (increasing for p > 0, decreasing for
        // p < 0); handle 0^negative = ∞.
        let (mut lo, mut hi) = if p > 0.0 { (va, vb) } else { (vb, va) };
        if lo.is_nan() {
            lo = 0.0;
        }
        if hi.is_nan() {
            hi = f64::INFINITY;
        }
        Interval::make(pad_lo(lo).max(0.0), pad_hi(hi))
    }

    /// Euclidean norm `√(x² + y²)` of two intervals, computed tighter than
    /// composing `sqr`, `add` and `sqrt` — the dependence on each variable's
    /// magnitude is monotone.
    pub fn hypot(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        let lo = self.mig().hypot(other.mig());
        let hi = self.mag().hypot(other.mag());
        Interval::make(pad_lo(lo).max(0.0), pad_hi(hi))
    }

    /// Elementwise minimum: `{ min(x, y) }`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let a = Interval::new(0.0, 5.0);
    /// let b = Interval::new(2.0, 3.0);
    /// assert_eq!(a.min(b), Interval::new(0.0, 3.0));
    /// ```
    #[inline]
    pub fn min(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::make(self.inf().min(other.inf()), self.sup().min(other.sup()))
    }

    /// Elementwise maximum: `{ max(x, y) }`.
    #[inline]
    pub fn max(self, other: Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::make(self.inf().max(other.inf()), self.sup().max(other.sup()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn abs_cases() {
        assert_eq!(iv(1.0, 2.0).abs(), iv(1.0, 2.0));
        assert_eq!(iv(-2.0, -1.0).abs(), iv(1.0, 2.0));
        assert_eq!(iv(-1.0, 2.0).abs(), iv(0.0, 2.0));
    }

    #[test]
    fn sqr_tighter_than_mul() {
        let x = iv(-2.0, 1.0);
        assert!(x.sqr().inf() >= 0.0);
        assert!((x * x).inf() < 0.0);
        assert!((x * x).encloses(x.sqr()));
    }

    #[test]
    fn sqrt_domain() {
        assert!(iv(-4.0, -1.0).sqrt().is_empty());
        let partial = iv(-1.0, 4.0).sqrt();
        assert_eq!(partial.inf(), 0.0);
        assert!(partial.contains(2.0));
    }

    #[test]
    fn exp_ln_roundtrip() {
        let x = iv(0.5, 2.0);
        let r = x.exp().ln();
        assert!(r.encloses(x));
        assert!(r.width() < x.width() + 1e-12);
    }

    #[test]
    fn ln_domain() {
        assert!(iv(-2.0, -1.0).ln().is_empty());
        assert_eq!(iv(0.0, 1.0).ln().inf(), f64::NEG_INFINITY);
        assert!(iv(0.0, 1.0).ln().contains(0.0));
    }

    #[test]
    fn sin_extrema_detected() {
        let r = iv(0.0, PI).sin();
        assert_eq!(r.sup(), 1.0);
        assert!(r.inf() <= 0.0);

        let r = iv(PI, 2.0 * PI).sin();
        assert_eq!(r.inf(), -1.0);

        // Narrow interval on a monotone stretch: strictly inside (-1, 1).
        let r = iv(0.1, 0.2).sin();
        assert!(r.inf() > 0.0 && r.sup() < 0.21);
    }

    #[test]
    fn cos_extrema_detected() {
        let r = iv(-0.5, 0.5).cos();
        assert_eq!(r.sup(), 1.0);
        let r = iv(3.0, 3.3).cos(); // contains π
        assert_eq!(r.inf(), -1.0);
    }

    #[test]
    fn sin_cos_wide_interval_is_unit() {
        let wide = iv(0.0, 100.0);
        assert_eq!(wide.sin(), iv(-1.0, 1.0));
        assert_eq!(wide.cos(), iv(-1.0, 1.0));
    }

    #[test]
    fn tan_pole() {
        assert_eq!(iv(1.0, 2.0).tan(), Interval::ENTIRE); // π/2 ≈ 1.5708 inside
        let r = iv(0.1, 0.2).tan();
        assert!(r.is_bounded());
        assert!(r.contains(0.15f64.tan()));
    }

    #[test]
    fn powi_even_odd() {
        let x = iv(-2.0, 3.0);
        assert!(x.powi(2).inf() >= 0.0);
        assert!(x.powi(2).contains(9.0));
        assert!(x.powi(3).contains(-8.0) && x.powi(3).contains(27.0));
        assert_eq!(x.powi(0), Interval::ONE);
        assert_eq!(Interval::ZERO.powi(0), Interval::ONE);
    }

    #[test]
    fn powi_negative_exponent() {
        let x = iv(2.0, 4.0);
        let r = x.powi(-2);
        assert!(r.contains(1.0 / 16.0) && r.contains(0.25));
    }

    #[test]
    fn powf_monotone() {
        let x = iv(1.0, 4.0);
        assert!(x.powf(0.5).encloses(iv(1.0, 2.0)));
        assert!(x.powf(-1.0).contains(0.25));
        assert_eq!(x.powf(0.0), Interval::ONE);
    }

    #[test]
    fn powf_zero_base_negative_exponent() {
        let r = iv(0.0, 1.0).powf(-1.0);
        assert_eq!(r.sup(), f64::INFINITY);
        assert!(r.contains(1.0));
    }

    #[test]
    fn hypot_tight() {
        let r = iv(3.0, 3.0).hypot(iv(4.0, 4.0));
        assert!(r.contains(5.0));
        assert!(r.width() < 1e-12);
        // Straddling zero: mignitude is 0.
        let r = iv(-1.0, 1.0).hypot(iv(0.0, 0.0));
        assert_eq!(r.inf(), 0.0);
    }

    #[test]
    fn erf_cndf_ranges() {
        assert!(Interval::ENTIRE.tanh().encloses(iv(-1.0, 1.0)));
        let r = iv(-1.0, 1.0).erf();
        assert!(r.inf() < 0.0 && r.sup() > 0.0);
        assert!(r.encloses(iv(-0.8427, 0.8427)));
        let c = iv(0.0, 0.0).cndf();
        assert!(c.contains(0.5));
    }

    #[test]
    fn min_max_elementwise() {
        let a = iv(0.0, 5.0);
        let b = iv(2.0, 3.0);
        assert_eq!(a.min(b), iv(0.0, 3.0));
        assert_eq!(a.max(b), iv(2.0, 5.0));
    }

    #[test]
    fn trig_inverse_domains() {
        assert!(iv(2.0, 3.0).asin().is_empty());
        let r = iv(-2.0, 0.0).asin();
        assert!(r.contains(-FRAC_PI_2) && r.contains(0.0));
        let r = iv(-1.0, 1.0).acos();
        assert!(r.contains(0.0) && r.contains(PI));
    }
}
