//! Debug-only invariant checks for the arithmetic operators
//! (`audit-invariants` feature).
//!
//! Every production (outward-rounded) operator result is checked
//! against three invariants:
//!
//! 1. **Canonical representation** — `lo ≤ hi` with no NaN bound, or
//!    the canonical [`Interval::EMPTY`] with *both* bounds NaN. A
//!    half-NaN interval would silently poison every comparison
//!    downstream.
//! 2. **EMPTY absorption** — if either operand is empty the result must
//!    be empty (the empty set has no members to operate on).
//! 3. **Outward-rounding monotonicity** — the outward-rounded result
//!    must enclose the round-to-nearest result of the *same* case
//!    analysis: nudging bounds outward may only ever widen.
//!
//! The checks panic with the operator name and the operands, so a
//! violation surfaced by the fuzzer is immediately attributable. They
//! are compiled out entirely unless the `audit-invariants` feature is
//! enabled (the feature is off by default; see DESIGN.md "Soundness
//! audit").

use crate::interval::Interval;

/// Panics unless `r` is canonically represented.
#[inline]
pub(crate) fn check_canonical(op: &str, r: Interval) {
    let (lo, hi) = (r.inf(), r.sup());
    if lo.is_nan() || hi.is_nan() {
        assert!(
            lo.is_nan() && hi.is_nan(),
            "audit-invariants: {op} produced a half-NaN interval [{lo}, {hi}]"
        );
    } else {
        assert!(
            lo <= hi,
            "audit-invariants: {op} produced inverted bounds [{lo}, {hi}]"
        );
    }
}

/// Full differential check for a binary operator: canonical form,
/// EMPTY absorption, and `outward ⊇ nearest`.
#[inline]
pub(crate) fn check_binary(op: &str, a: Interval, b: Interval, outward: Interval, nearest: Interval) {
    check_canonical(op, outward);
    if a.is_empty() || b.is_empty() {
        assert!(
            outward.is_empty(),
            "audit-invariants: {op}({a:?}, {b:?}) must absorb EMPTY, got {outward:?}"
        );
        return;
    }
    assert!(
        outward.encloses(nearest),
        "audit-invariants: outward {op}({a:?}, {b:?}) = {outward:?} \
         does not enclose the unrounded result {nearest:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_accepts_normal_and_empty() {
        check_canonical("add", Interval::new(1.0, 2.0));
        check_canonical("add", Interval::EMPTY);
        check_canonical("add", Interval::ENTIRE);
    }

    #[test]
    #[should_panic(expected = "half-NaN")]
    fn canonical_rejects_half_nan() {
        // Only constructible by bypassing the public constructors; the
        // check exists exactly to catch such an internal bug.
        let broken = Interval::from_bounds_unchecked(f64::NAN, 1.0);
        check_canonical("test", broken);
    }

    #[test]
    #[should_panic(expected = "does not enclose")]
    fn monotonicity_rejects_narrower_outward() {
        check_binary(
            "test",
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
            Interval::new(0.25, 0.75),
            Interval::new(0.0, 1.0),
        );
    }

    #[test]
    #[should_panic(expected = "absorb EMPTY")]
    fn absorption_rejects_non_empty_result() {
        check_binary(
            "test",
            Interval::EMPTY,
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
        );
    }
}
