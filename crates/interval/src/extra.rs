//! Additional interval functions: accurate near-zero variants, two-arg
//! trigonometry, step functions and FMA — the long tail of elementary
//! operations a production analysis front-end meets in real kernels.

use std::f64::consts::PI;

use crate::interval::Interval;
use crate::rounding::{pad_hi, pad_lo, round_hi, round_lo};

impl Interval {
    /// `exp(x) − 1`, accurate for small `x` (monotone).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let r = Interval::new(-1e-12, 1e-12).exp_m1();
    /// assert!(r.contains(0.0));
    /// assert!(r.width() < 1e-11);
    /// ```
    #[inline]
    pub fn exp_m1(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(
            pad_lo(self.inf().exp_m1()).max(-1.0),
            pad_hi(self.sup().exp_m1()),
        )
    }

    /// `ln(1 + x)`, accurate near zero; domain intersected with
    /// `(-1, ∞)`.
    #[inline]
    pub fn ln_1p(self) -> Interval {
        if self.is_empty() || self.sup() <= -1.0 {
            return Interval::EMPTY;
        }
        let lo = if self.inf() <= -1.0 {
            f64::NEG_INFINITY
        } else {
            pad_lo(self.inf().ln_1p())
        };
        Interval::make(lo, pad_hi(self.sup().ln_1p()))
    }

    /// Four-quadrant arc-tangent `atan2(self, x)`.
    ///
    /// If the `(y, x)` box touches the branch cut (negative x-axis) or
    /// the origin, the full range `[-π, π]` is returned (the sound
    /// single-interval enclosure).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let y = Interval::new(0.9, 1.1);
    /// let x = Interval::new(0.9, 1.1);
    /// let a = y.atan2(x);
    /// assert!(a.contains(std::f64::consts::FRAC_PI_4));
    /// assert!(a.width() < 0.3);
    /// ```
    pub fn atan2(self, x: Interval) -> Interval {
        if self.is_empty() || x.is_empty() {
            return Interval::EMPTY;
        }
        // Branch cut or origin inside the box → full circle.
        if x.inf() <= 0.0 && self.contains(0.0) {
            return Interval::make(-PI, PI);
        }
        // The box avoids the cut: atan2 is continuous on it, and its
        // extrema lie at box corners (it is monotone along each edge for
        // boxes not crossing an axis; for boxes crossing the positive
        // x-axis or the y-axis, corner evaluation still bounds because
        // the partial derivatives -y/(x²+y²), x/(x²+y²) each keep a
        // constant sign on the sub-edges delimited by the axes, which
        // corners plus the axis crossings cover).
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let ys = [self.inf(), self.sup(), 0.0_f64.clamp(self.inf(), self.sup())];
        let xs = [x.inf(), x.sup(), 0.0_f64.clamp(x.inf(), x.sup())];
        for &yy in &ys {
            for &xx in &xs {
                if yy == 0.0 && xx == 0.0 {
                    continue;
                }
                let a = yy.atan2(xx);
                lo = lo.min(a);
                hi = hi.max(a);
            }
        }
        Interval::make(pad_lo(lo).max(-PI), pad_hi(hi).min(PI))
    }

    /// Componentwise floor — a step function: the enclosure is
    /// `[⌊inf⌋, ⌊sup⌋]`.
    ///
    /// Note that, like all step functions, `floor` is not differentiable;
    /// the analysis layer must treat it as a constant-derivative-zero
    /// operation or refuse it.
    #[inline]
    pub fn floor(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(self.inf().floor(), self.sup().floor())
    }

    /// Componentwise ceiling.
    #[inline]
    pub fn ceil(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(self.inf().ceil(), self.sup().ceil())
    }

    /// Componentwise round-half-away-from-zero.
    #[inline]
    pub fn round_step(self) -> Interval {
        if self.is_empty() {
            return self;
        }
        Interval::make(self.inf().round(), self.sup().round())
    }

    /// Fused multiply-add enclosure `self·a + b` (evaluated with the
    /// hardware FMA per bound combination, then outward-rounded — one
    /// rounding instead of two).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let r = Interval::new(1.0, 2.0).mul_add(Interval::new(3.0, 4.0), Interval::new(0.5, 0.5));
    /// assert!(r.contains(3.5) && r.contains(8.5));
    /// ```
    pub fn mul_add(self, a: Interval, b: Interval) -> Interval {
        if self.is_empty() || a.is_empty() || b.is_empty() {
            return Interval::EMPTY;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &[self.inf(), self.sup()] {
            for &y in &[a.inf(), a.sup()] {
                for &z in &[b.inf(), b.sup()] {
                    let v = x.mul_add(y, z);
                    let v = if v.is_nan() { z } else { v };
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        Interval::make(round_lo(lo), round_hi(hi))
    }

    /// Linear interpolation enclosure `self + t·(other − self)` for
    /// `t ∈ [t]`, the workhorse of the interpolation kernels.
    pub fn lerp(self, other: Interval, t: Interval) -> Interval {
        self + t * (other - self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn exp_m1_near_zero_is_tight() {
        let x = iv(-1e-15, 1e-15);
        let naive = x.exp() - Interval::ONE;
        let precise = x.exp_m1();
        assert!(precise.width() < naive.width() * 10.0);
        assert!(precise.contains(0.0));
        // Range bound: exp_m1 ≥ −1.
        assert!(Interval::new(-100.0, 0.0).exp_m1().inf() >= -1.0);
    }

    #[test]
    fn ln_1p_domain() {
        assert!(iv(-3.0, -1.5).ln_1p().is_empty());
        let r = iv(-1.0, 0.0).ln_1p();
        assert_eq!(r.inf(), f64::NEG_INFINITY);
        assert!(r.contains(0.0));
        assert!(iv(0.0, 1.0).ln_1p().contains(2.0f64.ln()));
    }

    #[test]
    fn atan2_quadrants() {
        // First quadrant box.
        let a = iv(1.0, 2.0).atan2(iv(1.0, 2.0));
        assert!(a.inf() > 0.0 && a.sup() < PI / 2.0);
        // Second quadrant.
        let a = iv(1.0, 2.0).atan2(iv(-2.0, -1.0));
        assert!(a.inf() > PI / 2.0);
        // Crossing the positive x-axis: enclosure spans negative to
        // positive angles but stays narrow.
        let a = iv(-0.5, 0.5).atan2(iv(2.0, 3.0));
        assert!(a.contains(0.0));
        assert!(a.width() < 1.0);
        // Touching the branch cut → full circle.
        let a = iv(-0.5, 0.5).atan2(iv(-2.0, -1.0));
        assert_eq!(a, Interval::make(-PI, PI));
    }

    #[test]
    fn atan2_encloses_samples() {
        let ybox = iv(0.3, 1.7);
        let xbox = iv(-1.2, 2.1);
        let enc = ybox.atan2(xbox);
        for i in 0..=10 {
            for j in 0..=10 {
                let y = ybox.inf() + ybox.width() * i as f64 / 10.0;
                let x = xbox.inf() + xbox.width() * j as f64 / 10.0;
                assert!(enc.contains(y.atan2(x)), "atan2({y},{x})");
            }
        }
    }

    #[test]
    fn step_functions() {
        assert_eq!(iv(0.2, 2.7).floor(), iv(0.0, 2.0));
        assert_eq!(iv(0.2, 2.7).ceil(), iv(1.0, 3.0));
        assert_eq!(iv(0.4, 2.6).round_step(), iv(0.0, 3.0));
        assert_eq!(iv(-1.5, -0.2).floor(), iv(-2.0, -1.0));
    }

    #[test]
    fn mul_add_encloses() {
        let x = iv(-1.0, 2.0);
        let a = iv(0.5, 3.0);
        let b = iv(-0.25, 0.25);
        let r = x.mul_add(a, b);
        for i in 0..=4 {
            for j in 0..=4 {
                for k in 0..=4 {
                    let xx = x.inf() + x.width() * i as f64 / 4.0;
                    let aa = a.inf() + a.width() * j as f64 / 4.0;
                    let bb = b.inf() + b.width() * k as f64 / 4.0;
                    assert!(r.contains(xx.mul_add(aa, bb)));
                }
            }
        }
    }

    #[test]
    fn lerp_between_endpoints() {
        let r = iv(0.0, 1.0).lerp(iv(10.0, 11.0), iv(0.0, 1.0));
        assert!(r.contains(0.5) && r.contains(10.5));
        // t = 0.5 point.
        let mid = Interval::point(2.0).lerp(Interval::point(4.0), Interval::point(0.5));
        assert!(mid.contains(3.0));
        assert!(mid.width() < 1e-12);
    }
}
