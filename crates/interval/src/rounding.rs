//! Software directed rounding.
//!
//! Rust (and portable x86-64 code in general) performs floating-point
//! arithmetic in round-to-nearest-even mode. Interval arithmetic needs
//! *outward* rounding: lower bounds rounded towards `-∞`, upper bounds
//! towards `+∞`. Instead of touching the MXCSR control register (which is
//! undefined behaviour under the Rust abstract machine), we post-adjust each
//! computed bound by one unit in the last place in the safe direction.
//!
//! A round-to-nearest result differs from the correctly rounded directed
//! result by at most one ULP, so a single [`next_down`]/[`next_up`] step is
//! sufficient for `+`, `-`, `*`, `/` and `sqrt` (all correctly rounded by
//! IEEE 754). Library transcendentals (`sin`, `exp`, …) are not correctly
//! rounded; for those the interval kernels in this crate pad by
//! [`ULP_PAD_TRANSCENDENTAL`] steps, which covers the ≤ 1–2 ULP error bound
//! of every libm implementation in practical use.

/// Number of ULP steps by which transcendental function results are padded
/// outward to absorb libm rounding error.
pub const ULP_PAD_TRANSCENDENTAL: u32 = 3;

/// Returns the largest `f64` strictly less than `x`.
///
/// Infinities are mapped towards the finite range one step at a time;
/// `next_down(-∞) == -∞` and NaN is propagated unchanged.
///
/// ```
/// use scorpio_interval::next_down;
/// assert!(next_down(1.0) < 1.0);
/// assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
/// ```
#[inline]
pub fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    let next = if x > 0.0 { bits - 1 } else { bits + 1 };
    f64::from_bits(next)
}

/// Returns the smallest `f64` strictly greater than `x`.
///
/// `next_up(+∞) == +∞` and NaN is propagated unchanged.
///
/// ```
/// use scorpio_interval::next_up;
/// assert!(next_up(1.0) > 1.0);
/// assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
/// ```
#[inline]
pub fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    let next = if x > 0.0 { bits + 1 } else { bits - 1 };
    f64::from_bits(next)
}

/// Moves `x` down by `n` ULP steps (saturating at `-∞`).
#[inline]
pub fn steps_down(x: f64, n: u32) -> f64 {
    let mut v = x;
    for _ in 0..n {
        v = next_down(v);
    }
    v
}

/// Moves `x` up by `n` ULP steps (saturating at `+∞`).
#[inline]
pub fn steps_up(x: f64, n: u32) -> f64 {
    let mut v = x;
    for _ in 0..n {
        v = next_up(v);
    }
    v
}

/// Rounds the result of a correctly rounded operation down one step, unless
/// it is exactly representable-infinite (kept) — helper for lower bounds.
#[inline]
pub(crate) fn round_lo(x: f64) -> f64 {
    if x.is_infinite() {
        x
    } else {
        next_down(x)
    }
}

/// Rounds the result of a correctly rounded operation up one step — helper
/// for upper bounds.
#[inline]
pub(crate) fn round_hi(x: f64) -> f64 {
    if x.is_infinite() {
        x
    } else {
        next_up(x)
    }
}

/// Pads a transcendental lower bound outward.
#[inline]
pub(crate) fn pad_lo(x: f64) -> f64 {
    if x.is_infinite() {
        x
    } else {
        steps_down(x, ULP_PAD_TRANSCENDENTAL)
    }
}

/// Pads a transcendental upper bound outward.
#[inline]
pub(crate) fn pad_hi(x: f64) -> f64 {
    if x.is_infinite() {
        x
    } else {
        steps_up(x, ULP_PAD_TRANSCENDENTAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_down_are_inverse_neighbours() {
        for &x in &[1.0, -1.0, 0.5, 1e300, -1e-300, std::f64::consts::PI] {
            assert_eq!(next_down(next_up(x)), x);
            assert_eq!(next_up(next_down(x)), x);
        }
    }

    #[test]
    fn zero_crossing() {
        assert!(next_down(0.0) < 0.0);
        assert!(next_up(0.0) > 0.0);
        assert!(next_down(-0.0) < 0.0);
        assert!(next_up(-0.0) > 0.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(next_down(f64::NAN).is_nan());
        assert!(next_up(f64::NAN).is_nan());
    }

    #[test]
    fn infinities_saturate() {
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
        assert_eq!(next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        // Stepping off the largest finite value reaches infinity.
        assert_eq!(next_up(f64::MAX), f64::INFINITY);
        assert_eq!(next_down(f64::MIN), f64::NEG_INFINITY);
    }

    #[test]
    fn steps_move_n_ulps() {
        let x = 1.0;
        assert_eq!(steps_up(x, 3), next_up(next_up(next_up(x))));
        assert_eq!(steps_down(x, 2), next_down(next_down(x)));
    }
}
