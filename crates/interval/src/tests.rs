//! Property-based tests for the enclosure (soundness) invariant.
//!
//! The fundamental theorem of interval arithmetic — for any `x ∈ [a]`,
//! `y ∈ [b]`: `f(x, y) ∈ f([a], [b])` — is exactly what makes Eq. 4–6 of
//! the paper an over-approximation of all reachable values, so we test it
//! exhaustively with random intervals and random member points.

use proptest::prelude::*;

use crate::Interval;

/// Strategy producing a finite interval plus a member point.
fn interval_with_member() -> impl Strategy<Value = (Interval, f64)> {
    (
        -1.0e6f64..1.0e6,
        0.0f64..1.0e6,
        0.0f64..=1.0, // relative position of the member point
    )
        .prop_map(|(lo, w, t)| {
            let iv = Interval::new(lo, lo + w);
            let x = lo + t * w;
            (iv, x.clamp(iv.inf(), iv.sup()))
        })
}

/// Strategy producing small intervals (|bounds| ≤ 30) for transcendentals.
fn small_interval_with_member() -> impl Strategy<Value = (Interval, f64)> {
    (
        -30.0f64..30.0,
        0.0f64..10.0,
        0.0f64..=1.0,
    )
        .prop_map(|(lo, w, t)| {
            let iv = Interval::new(lo, lo + w);
            let x = lo + t * w;
            (iv, x.clamp(iv.inf(), iv.sup()))
        })
}

proptest! {
    #[test]
    fn add_encloses((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        prop_assert!((a + b).contains(x + y));
    }

    #[test]
    fn sub_encloses((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        prop_assert!((a - b).contains(x - y));
    }

    #[test]
    fn mul_encloses((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        prop_assert!((a * b).contains(x * y));
    }

    #[test]
    fn div_encloses((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        let q = a / b;
        if y != 0.0 && !q.is_empty() {
            prop_assert!(q.contains(x / y), "({a}) / ({b}) = {q} missing {x}/{y} = {}", x / y);
        }
    }

    #[test]
    fn neg_encloses((a, x) in interval_with_member()) {
        prop_assert!((-a).contains(-x));
    }

    #[test]
    fn abs_sqr_sqrt_enclose((a, x) in interval_with_member()) {
        prop_assert!(a.abs().contains(x.abs()));
        // sqr may overflow to inf for 1e6 bounds; still must enclose.
        prop_assert!(a.sqr().contains(x * x));
        if x >= 0.0 {
            prop_assert!(a.sqrt().contains(x.sqrt()));
        }
    }

    #[test]
    fn transcendentals_enclose((a, x) in small_interval_with_member()) {
        prop_assert!(a.sin().contains(x.sin()), "sin {a} {x}");
        prop_assert!(a.cos().contains(x.cos()), "cos {a} {x}");
        prop_assert!(a.exp().contains(x.exp()), "exp {a} {x}");
        prop_assert!(a.atan().contains(x.atan()), "atan {a} {x}");
        prop_assert!(a.tanh().contains(x.tanh()), "tanh {a} {x}");
        prop_assert!(a.sinh().contains(x.sinh()), "sinh {a} {x}");
        prop_assert!(a.cosh().contains(x.cosh()), "cosh {a} {x}");
        prop_assert!(a.erf().contains(crate::real::erf(x)), "erf {a} {x}");
        prop_assert!(a.cndf().contains(crate::real::cndf(x)), "cndf {a} {x}");
        if x > 0.0 {
            prop_assert!(a.ln().contains(x.ln()), "ln {a} {x}");
        }
    }

    #[test]
    fn powi_encloses((a, x) in small_interval_with_member(), n in -5i32..8) {
        let p = a.powi(n);
        let v = x.powi(n);
        if v.is_finite() && !p.is_empty() {
            prop_assert!(p.contains(v), "({a})^{n} = {p} missing {x}^{n} = {v}");
        }
    }

    #[test]
    fn powf_encloses((a, x) in small_interval_with_member(), e in -3.0f64..3.0) {
        if x > 0.0 && a.inf() > 0.0 {
            let p = a.powf(e);
            let v = x.powf(e);
            prop_assert!(p.contains(v), "({a})^{e} = {p} missing {v}");
        }
    }

    #[test]
    fn hypot_encloses((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        prop_assert!(a.hypot(b).contains(x.hypot(y)));
    }

    #[test]
    fn min_max_enclose((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        prop_assert!(a.min(b).contains(x.min(y)));
        prop_assert!(a.max(b).contains(x.max(y)));
    }

    #[test]
    fn hull_contains_both(( a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        let h = a.hull(b);
        prop_assert!(h.contains(x) && h.contains(y));
        prop_assert!(h.encloses(a) && h.encloses(b));
    }

    #[test]
    fn intersection_is_subset((a, _x) in interval_with_member(), (b, _y) in interval_with_member()) {
        let i = a.intersection(b);
        if !i.is_empty() {
            prop_assert!(a.encloses(i) && b.encloses(i));
        }
    }

    #[test]
    fn width_is_nonnegative((a, _x) in interval_with_member()) {
        prop_assert!(a.width() >= 0.0);
        prop_assert!(a.rad() * 2.0 <= a.width() * (1.0 + 1e-15));
    }

    #[test]
    fn mid_is_member((a, _x) in interval_with_member()) {
        prop_assert!(a.contains(a.mid()));
    }

    #[test]
    fn comparisons_sound((a, x) in interval_with_member(), (b, y) in interval_with_member()) {
        // A certain answer must agree with every sampled pair.
        if let Some(ans) = a.certainly_lt(b).to_bool() {
            prop_assert_eq!(ans, x < y);
        }
        if let Some(ans) = a.certainly_le(b).to_bool() {
            prop_assert_eq!(ans, x <= y);
        }
    }

    #[test]
    fn bisect_halves_cover((a, x) in interval_with_member()) {
        if let Some(h) = a.bisect() {
            prop_assert!(h.lower.contains(x) || h.upper.contains(x));
        }
    }

    #[test]
    fn split_covers((a, x) in interval_with_member(), n in 1usize..10) {
        let parts = a.split(n);
        prop_assert!(parts.iter().any(|p| p.contains(x)));
    }

    #[test]
    fn clamp_encloses((a, x) in interval_with_member()) {
        let c = a.clamp_to(0.0, 255.0);
        prop_assert!(c.contains(x.clamp(0.0, 255.0)));
    }

    #[test]
    fn atan2_encloses((a, y) in small_interval_with_member(), (b, x) in small_interval_with_member()) {
        if !(y == 0.0 && x == 0.0) {
            let e = a.atan2(b);
            prop_assert!(e.contains(y.atan2(x)), "atan2({y},{x}) ∉ {e}");
        }
    }

    #[test]
    fn mul_add_encloses((a, x) in small_interval_with_member(),
                        (b, y) in small_interval_with_member(),
                        (c, z) in small_interval_with_member()) {
        prop_assert!(a.mul_add(b, c).contains(x.mul_add(y, z)));
    }

    #[test]
    fn exp_m1_ln_1p_enclose((a, x) in small_interval_with_member()) {
        prop_assert!(a.exp_m1().contains(x.exp_m1()));
        if x > -1.0 {
            prop_assert!(a.ln_1p().contains(x.ln_1p()));
        }
    }

    #[test]
    fn ibox_subdivide_covers_member(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
        k in 1usize..4,
    ) {
        let bx = crate::IBox::new(vec![a, b]);
        let parts = bx.subdivide(k);
        prop_assert_eq!(parts.len(), k * k);
        prop_assert!(parts.iter().any(|p| p.contains(&[x, y])));
        // Bisection covers too.
        if let Some((lo, hi)) = bx.bisect_widest() {
            prop_assert!(lo.contains(&[x, y]) || hi.contains(&[x, y]));
        }
    }
}
