//! Three-valued interval comparisons.
//!
//! §2.2 of the paper: *"With IA, comparisons between values is no longer
//! unique: for `c < [x]` with `c ∈ [x]`, the answer is neither true nor
//! false."* Comparisons therefore return a [`Trichotomy`]; the analysis
//! layer terminates (or splits the input interval) on
//! [`Trichotomy::Ambiguous`].

use crate::interval::Interval;

/// The result of comparing two intervals: definitely true, definitely
/// false, or ambiguous (the operand intervals overlap in a way that makes
/// both outcomes possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trichotomy {
    /// The relation holds for every pair of member values.
    True,
    /// The relation fails for every pair of member values.
    False,
    /// The relation holds for some pairs and fails for others.
    Ambiguous,
}

impl Trichotomy {
    /// `true` iff the relation certainly holds.
    #[inline]
    pub fn is_certainly_true(self) -> bool {
        self == Trichotomy::True
    }

    /// `true` iff the relation certainly fails.
    #[inline]
    pub fn is_certainly_false(self) -> bool {
        self == Trichotomy::False
    }

    /// `true` iff neither outcome is certain.
    #[inline]
    pub fn is_ambiguous(self) -> bool {
        self == Trichotomy::Ambiguous
    }

    /// Converts to `Some(bool)` when certain, `None` when ambiguous.
    ///
    /// ```
    /// use scorpio_interval::{Interval, Trichotomy};
    /// let a = Interval::new(0.0, 1.0);
    /// let b = Interval::new(2.0, 3.0);
    /// assert_eq!(a.certainly_lt(b).to_bool(), Some(true));
    /// ```
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trichotomy::True => Some(true),
            Trichotomy::False => Some(false),
            Trichotomy::Ambiguous => None,
        }
    }

    /// Logical negation (swaps `True` and `False`, keeps `Ambiguous`).
    #[inline]
    pub fn complement(self) -> Trichotomy {
        match self {
            Trichotomy::True => Trichotomy::False,
            Trichotomy::False => Trichotomy::True,
            Trichotomy::Ambiguous => Trichotomy::Ambiguous,
        }
    }
}

impl From<bool> for Trichotomy {
    fn from(b: bool) -> Trichotomy {
        if b {
            Trichotomy::True
        } else {
            Trichotomy::False
        }
    }
}

impl Interval {
    /// Three-valued `self < other`.
    ///
    /// ```
    /// use scorpio_interval::{Interval, Trichotomy};
    /// let x = Interval::new(0.0, 2.0);
    /// assert_eq!(x.certainly_lt(Interval::new(3.0, 4.0)), Trichotomy::True);
    /// assert_eq!(x.certainly_lt(Interval::new(-1.0, -0.5)), Trichotomy::False);
    /// assert_eq!(x.certainly_lt(Interval::new(1.0, 5.0)), Trichotomy::Ambiguous);
    /// ```
    #[inline]
    pub fn certainly_lt(self, other: Interval) -> Trichotomy {
        if self.is_empty() || other.is_empty() {
            return Trichotomy::Ambiguous;
        }
        if self.sup() < other.inf() {
            Trichotomy::True
        } else if self.inf() >= other.sup() {
            Trichotomy::False
        } else {
            Trichotomy::Ambiguous
        }
    }

    /// Three-valued `self ≤ other`.
    #[inline]
    pub fn certainly_le(self, other: Interval) -> Trichotomy {
        if self.is_empty() || other.is_empty() {
            return Trichotomy::Ambiguous;
        }
        if self.sup() <= other.inf() {
            Trichotomy::True
        } else if self.inf() > other.sup() {
            Trichotomy::False
        } else {
            Trichotomy::Ambiguous
        }
    }

    /// Three-valued `self > other`.
    #[inline]
    pub fn certainly_gt(self, other: Interval) -> Trichotomy {
        other.certainly_lt(self)
    }

    /// Three-valued `self ≥ other`.
    #[inline]
    pub fn certainly_ge(self, other: Interval) -> Trichotomy {
        other.certainly_le(self)
    }

    /// Three-valued equality: `True` only for two identical points,
    /// `False` when the intervals are disjoint.
    #[inline]
    pub fn certainly_eq(self, other: Interval) -> Trichotomy {
        if self.is_empty() || other.is_empty() {
            return Trichotomy::Ambiguous;
        }
        if self.is_point() && other.is_point() && self.inf() == other.inf() {
            Trichotomy::True
        } else if !self.intersects(other) {
            Trichotomy::False
        } else {
            Trichotomy::Ambiguous
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn lt_cases() {
        assert_eq!(iv(0.0, 1.0).certainly_lt(iv(2.0, 3.0)), Trichotomy::True);
        assert_eq!(iv(2.0, 3.0).certainly_lt(iv(0.0, 1.0)), Trichotomy::False);
        assert_eq!(
            iv(0.0, 2.0).certainly_lt(iv(1.0, 3.0)),
            Trichotomy::Ambiguous
        );
        // Touching endpoints: 1 < 1 is false, so touching is ambiguous for
        // lt unless strictly separated.
        assert_eq!(
            iv(0.0, 1.0).certainly_lt(iv(1.0, 2.0)),
            Trichotomy::Ambiguous
        );
    }

    #[test]
    fn le_touching_is_true() {
        assert_eq!(iv(0.0, 1.0).certainly_le(iv(1.0, 2.0)), Trichotomy::True);
    }

    #[test]
    fn eq_cases() {
        assert_eq!(
            Interval::point(1.0).certainly_eq(Interval::point(1.0)),
            Trichotomy::True
        );
        assert_eq!(iv(0.0, 1.0).certainly_eq(iv(2.0, 3.0)), Trichotomy::False);
        assert_eq!(
            iv(0.0, 1.0).certainly_eq(iv(0.5, 2.0)),
            Trichotomy::Ambiguous
        );
    }

    #[test]
    fn gt_ge_mirror_lt_le() {
        let a = iv(0.0, 1.0);
        let b = iv(2.0, 3.0);
        assert_eq!(b.certainly_gt(a), Trichotomy::True);
        assert_eq!(b.certainly_ge(a), Trichotomy::True);
        assert_eq!(a.certainly_gt(b), Trichotomy::False);
    }

    #[test]
    fn trichotomy_helpers() {
        assert!(Trichotomy::True.is_certainly_true());
        assert!(Trichotomy::False.is_certainly_false());
        assert!(Trichotomy::Ambiguous.is_ambiguous());
        assert_eq!(Trichotomy::True.complement(), Trichotomy::False);
        assert_eq!(Trichotomy::Ambiguous.complement(), Trichotomy::Ambiguous);
        assert_eq!(Trichotomy::Ambiguous.to_bool(), None);
        assert_eq!(Trichotomy::from(true), Trichotomy::True);
    }
}
