//! Arithmetic operators for [`Interval`] with outward rounding.
//!
//! The binary kernels are written once, generic over a [`Round`] policy, so
//! that the rounding ablation (`nearest` module) shares the exact same case
//! analysis as the production outward-rounded operators.

use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::interval::Interval;
use crate::rounding::{round_hi, round_lo};

/// Rounding policy for the arithmetic kernels.
///
/// This trait is sealed within the crate: the only implementations are
/// [`Outward`] (production) and [`Nearest`] (ablation baseline).
pub(crate) trait Round: Copy {
    /// Adjusts a computed lower bound in the safe direction.
    fn lo(x: f64) -> f64;
    /// Adjusts a computed upper bound in the safe direction.
    fn hi(x: f64) -> f64;
}

/// Outward rounding: lower bounds are nudged down one ULP, upper bounds up.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Outward;

impl Round for Outward {
    #[inline]
    fn lo(x: f64) -> f64 {
        round_lo(x)
    }
    #[inline]
    fn hi(x: f64) -> f64 {
        round_hi(x)
    }
}

/// Round-to-nearest: bounds taken verbatim (enclosure NOT guaranteed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Nearest;

impl Round for Nearest {
    #[inline]
    fn lo(x: f64) -> f64 {
        x
    }
    #[inline]
    fn hi(x: f64) -> f64 {
        x
    }
}

#[inline]
pub(crate) fn add_impl<R: Round>(a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    Interval::make(R::lo(a.inf() + b.inf()), R::hi(a.sup() + b.sup()))
}

#[inline]
pub(crate) fn sub_impl<R: Round>(a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    Interval::make(R::lo(a.inf() - b.sup()), R::hi(a.sup() - b.inf()))
}

/// Multiplies with the standard 4-product rule, treating `0 * ±∞` (which is
/// NaN in IEEE arithmetic) as `0` per interval-arithmetic convention.
#[inline]
pub(crate) fn mul_impl<R: Round>(a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    #[inline]
    fn prod(x: f64, y: f64) -> f64 {
        let p = x * y;
        if p.is_nan() {
            // One factor was 0 and the other ±∞: by convention 0 · ∞ = 0.
            0.0
        } else {
            p
        }
    }
    let p1 = prod(a.inf(), b.inf());
    let p2 = prod(a.inf(), b.sup());
    let p3 = prod(a.sup(), b.inf());
    let p4 = prod(a.sup(), b.sup());
    let lo = p1.min(p2).min(p3).min(p4);
    let hi = p1.max(p2).max(p3).max(p4);
    Interval::make(R::lo(lo), R::hi(hi))
}

/// Divides; if the divisor straddles zero the result is the whole line
/// (the tightest single-interval enclosure of the two-piece true result).
#[inline]
pub(crate) fn div_impl<R: Round>(a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    if b.inf() <= 0.0 && b.sup() >= 0.0 {
        if b.inf() == 0.0 && b.sup() == 0.0 {
            // Division by the point zero: undefined everywhere.
            return Interval::EMPTY;
        }
        if b.inf() == 0.0 {
            // b ⊆ [0, +], divide by (0, sup].
            let q1 = a.inf() / b.sup();
            let q2 = a.sup() / b.sup();
            let (lo, hi) = if a.sup() <= 0.0 {
                (f64::NEG_INFINITY, q2.max(q1))
            } else if a.inf() >= 0.0 {
                (q1.min(q2), f64::INFINITY)
            } else {
                return Interval::ENTIRE;
            };
            return Interval::make(R::lo(lo), R::hi(hi));
        }
        if b.sup() == 0.0 {
            let q1 = a.inf() / b.inf();
            let q2 = a.sup() / b.inf();
            let (lo, hi) = if a.sup() <= 0.0 {
                (q1.min(q2), f64::INFINITY)
            } else if a.inf() >= 0.0 {
                (f64::NEG_INFINITY, q1.max(q2))
            } else {
                return Interval::ENTIRE;
            };
            return Interval::make(R::lo(lo), R::hi(hi));
        }
        return Interval::ENTIRE;
    }
    #[inline]
    fn quot(x: f64, y: f64) -> f64 {
        let q = x / y;
        if q.is_nan() {
            0.0
        } else {
            q
        }
    }
    let q1 = quot(a.inf(), b.inf());
    let q2 = quot(a.inf(), b.sup());
    let q3 = quot(a.sup(), b.inf());
    let q4 = quot(a.sup(), b.sup());
    let lo = q1.min(q2).min(q3).min(q4);
    let hi = q1.max(q2).max(q3).max(q4);
    Interval::make(R::lo(lo), R::hi(hi))
}

/// Applies the differential invariant checks to a binary-operator
/// result when `audit-invariants` is on; a no-op (and fully compiled
/// out) otherwise. The `$nearest` expression is only evaluated under
/// the feature, so the production operators pay nothing.
macro_rules! audited {
    ($name:literal, $a:expr, $b:expr, $outward:expr, $nearest:expr) => {{
        let r = $outward;
        #[cfg(feature = "audit-invariants")]
        crate::audit::check_binary($name, $a, $b, r, $nearest);
        r
    }};
}

impl Add for Interval {
    type Output = Interval;
    #[inline]
    fn add(self, rhs: Interval) -> Interval {
        audited!(
            "add",
            self,
            rhs,
            add_impl::<Outward>(self, rhs),
            add_impl::<Nearest>(self, rhs)
        )
    }
}

impl Sub for Interval {
    type Output = Interval;
    #[inline]
    fn sub(self, rhs: Interval) -> Interval {
        audited!(
            "sub",
            self,
            rhs,
            sub_impl::<Outward>(self, rhs),
            sub_impl::<Nearest>(self, rhs)
        )
    }
}

impl Mul for Interval {
    type Output = Interval;
    #[inline]
    fn mul(self, rhs: Interval) -> Interval {
        audited!(
            "mul",
            self,
            rhs,
            mul_impl::<Outward>(self, rhs),
            mul_impl::<Nearest>(self, rhs)
        )
    }
}

impl Div for Interval {
    type Output = Interval;
    #[inline]
    fn div(self, rhs: Interval) -> Interval {
        audited!(
            "div",
            self,
            rhs,
            div_impl::<Outward>(self, rhs),
            div_impl::<Nearest>(self, rhs)
        )
    }
}

impl Neg for Interval {
    type Output = Interval;
    #[inline]
    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        // Negation is exact: no rounding adjustment needed.
        let r = Interval::make(-self.sup(), -self.inf());
        #[cfg(feature = "audit-invariants")]
        crate::audit::check_canonical("neg", r);
        r
    }
}

macro_rules! scalar_rhs_ops {
    ($($trait:ident :: $method:ident),* $(,)?) => {
        $(
            impl $trait<f64> for Interval {
                type Output = Interval;
                #[inline]
                fn $method(self, rhs: f64) -> Interval {
                    $trait::$method(self, Interval::point(rhs))
                }
            }
            impl $trait<Interval> for f64 {
                type Output = Interval;
                #[inline]
                fn $method(self, rhs: Interval) -> Interval {
                    $trait::$method(Interval::point(self), rhs)
                }
            }
        )*
    };
}

scalar_rhs_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

macro_rules! assign_ops {
    ($($trait:ident :: $method:ident => $base:ident),* $(,)?) => {
        $(
            impl $trait for Interval {
                #[inline]
                fn $method(&mut self, rhs: Interval) {
                    *self = self.$base(rhs);
                }
            }
            impl $trait<f64> for Interval {
                #[inline]
                fn $method(&mut self, rhs: f64) {
                    *self = self.$base(Interval::point(rhs));
                }
            }
        )*
    };
}

assign_ops!(
    AddAssign::add_assign => add,
    SubAssign::sub_assign => sub,
    MulAssign::mul_assign => mul,
    DivAssign::div_assign => div,
);

impl std::iter::Sum for Interval {
    fn sum<I: Iterator<Item = Interval>>(iter: I) -> Interval {
        iter.fold(Interval::ZERO, |acc, x| acc + x)
    }
}

impl std::iter::Product for Interval {
    fn product<I: Iterator<Item = Interval>>(iter: I) -> Interval {
        iter.fold(Interval::ONE, |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use crate::Interval;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn add_basic() {
        let r = iv(1.0, 2.0) + iv(3.0, 4.0);
        assert!(r.contains(4.0) && r.contains(6.0));
        assert!(r.inf() >= 3.999999999 && r.sup() <= 6.000000001);
    }

    #[test]
    fn sub_anticommutes() {
        let r = iv(1.0, 2.0) - iv(0.5, 1.5);
        assert!(r.contains(-0.5) && r.contains(1.5));
    }

    #[test]
    fn mul_sign_cases() {
        // pos * pos
        assert!((iv(1.0, 2.0) * iv(3.0, 4.0)).encloses(iv(3.0, 8.0)));
        // straddle * pos
        assert!((iv(-1.0, 2.0) * iv(3.0, 4.0)).encloses(iv(-4.0, 8.0)));
        // straddle * straddle
        assert!((iv(-2.0, 3.0) * iv(-5.0, 7.0)).encloses(iv(-15.0, 21.0)));
        // neg * neg
        assert!((iv(-2.0, -1.0) * iv(-4.0, -3.0)).encloses(iv(3.0, 8.0)));
    }

    #[test]
    fn mul_zero_times_entire_is_defined() {
        let r = Interval::ZERO * Interval::ENTIRE;
        assert!(!r.is_empty());
        assert!(r.contains(0.0));
    }

    #[test]
    fn div_nonzero() {
        let r = iv(1.0, 2.0) / iv(4.0, 8.0);
        assert!(r.encloses(iv(0.125, 0.5)));
    }

    #[test]
    fn div_straddling_zero_is_entire() {
        assert_eq!(iv(1.0, 2.0) / iv(-1.0, 1.0), Interval::ENTIRE);
    }

    #[test]
    fn div_zero_endpoint_is_half_line() {
        let r = iv(1.0, 2.0) / iv(0.0, 4.0);
        assert_eq!(r.sup(), f64::INFINITY);
        assert!(r.inf() <= 0.25 && r.inf() > 0.0);
    }

    #[test]
    fn div_by_point_zero_is_empty() {
        assert!((iv(1.0, 2.0) / Interval::ZERO).is_empty());
    }

    #[test]
    fn neg_flips() {
        assert_eq!(-iv(1.0, 2.0), iv(-2.0, -1.0));
    }

    #[test]
    fn empty_is_absorbing() {
        assert!((Interval::EMPTY + iv(1.0, 2.0)).is_empty());
        assert!((iv(1.0, 2.0) * Interval::EMPTY).is_empty());
        assert!((-Interval::EMPTY).is_empty());
    }

    #[test]
    fn scalar_mixed_ops() {
        let x = iv(0.0, 1.0);
        assert!((x + 1.0).contains(2.0));
        assert!((2.0 * x).contains(2.0));
        assert!((1.0 - x).contains(0.0));
        assert!((x / 2.0).contains(0.5));
    }

    #[test]
    fn assign_ops_match_binary() {
        let mut a = iv(1.0, 2.0);
        a += iv(1.0, 1.0);
        assert_eq!(a, iv(1.0, 2.0) + iv(1.0, 1.0));
        a *= 2.0;
        assert_eq!(a, (iv(1.0, 2.0) + iv(1.0, 1.0)) * 2.0);
    }

    #[test]
    fn sum_and_product() {
        let xs = [iv(0.0, 1.0), iv(1.0, 2.0), iv(2.0, 3.0)];
        let s: Interval = xs.iter().copied().sum();
        assert!(s.encloses(iv(3.0, 6.0)));
        let p: Interval = xs.iter().copied().product();
        assert!(p.contains(0.0) && p.contains(6.0));
    }

    #[test]
    fn outward_rounding_widens() {
        // 0.1 + 0.2 is inexact; the enclosure must contain the true rational.
        let r = Interval::point(0.1) + Interval::point(0.2);
        assert!(r.inf() < r.sup());
        assert!(r.contains(0.1 + 0.2));
    }
}
