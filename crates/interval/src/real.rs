//! Real-valued special functions not provided by `std`.
//!
//! The Rust standard library lacks `erf`/`erfc`. These are needed twice in
//! this project: by the interval versions used in significance analysis, and
//! by the accurate BlackScholes kernel (cumulative normal distribution).
//!
//! The implementations follow W. J. Cody's rational Chebyshev approximations
//! (*Rational Chebyshev approximation for the error function*, Math. Comp.
//! 23, 1969), the same scheme used by FDLIBM and SPECFUN; the maximum
//! relative error is below `1.2e-16` on each branch, i.e. faithful to double
//! precision.

// The Cody coefficient tables are transcribed digit-for-digit from the
// published approximations; clippy's precision lint would truncate them.
#![allow(clippy::excessive_precision)]

/// Maximum relative error of [`erf`]/[`erfc`], used by interval kernels to
/// pad bounds outward.
pub const ERF_REL_ERROR: f64 = 4e-16;

// Coefficients for |x| <= 0.46875 (erf via R1(x^2)).
const A: [f64; 5] = [
    3.16112374387056560e0,
    1.13864154151050156e2,
    3.77485237685302021e2,
    3.20937758913846947e3,
    1.85777706184603153e-1,
];
const B: [f64; 4] = [
    2.36012909523441209e1,
    2.44024637934444173e2,
    1.28261652607737228e3,
    2.84423683343917062e3,
];

// Coefficients for 0.46875 < |x| <= 4 (erfc via R2(x)).
const C: [f64; 9] = [
    5.64188496988670089e-1,
    8.88314979438837594e0,
    6.61191906371416295e1,
    2.98635138197400131e2,
    8.81952221241769090e2,
    1.71204761263407058e3,
    2.05107837782607147e3,
    1.23033935479799725e3,
    2.15311535474403846e-8,
];
const D: [f64; 8] = [
    1.57449261107098347e1,
    1.17693950891312499e2,
    5.37181101862009858e2,
    1.62138957456669019e3,
    3.29079923573345963e3,
    4.36261909014324716e3,
    3.43936767414372164e3,
    1.23033935480374942e3,
];

// Coefficients for |x| > 4 (erfc via asymptotic R3(1/x^2)).
const P: [f64; 6] = [
    3.05326634961232344e-1,
    3.60344899949804439e-1,
    1.25781726111229246e-1,
    1.60837851487422766e-2,
    6.58749161529837803e-4,
    1.63153871373020978e-2,
];
const Q: [f64; 5] = [
    2.56852019228982242e0,
    1.87295284992346047e0,
    5.27905102951428412e-1,
    6.05183413124413191e-2,
    2.33520497626869185e-3,
];

const SQRT_PI_INV: f64 = 5.6418958354775628695e-1; // 1/sqrt(pi)
const THRESH: f64 = 0.46875;

/// Core of Cody's algorithm: computes `erf(x)` for `|x| <= THRESH`.
fn erf_small(x: f64) -> f64 {
    let y = x.abs();
    let z = y * y;
    let xnum = A[4] * z;
    let xden = z;
    let (mut xnum, mut xden) = (xnum, xden);
    for i in 0..3 {
        xnum = (xnum + A[i]) * z;
        xden = (xden + B[i]) * z;
    }
    x * (xnum + A[3]) / (xden + B[3])
}

/// Computes `erfc(y)` for `THRESH < y <= 4`.
fn erfc_mid(y: f64) -> f64 {
    let mut xnum = C[8] * y;
    let mut xden = y;
    for i in 0..7 {
        xnum = (xnum + C[i]) * y;
        xden = (xden + D[i]) * y;
    }
    let result = (xnum + C[7]) / (xden + D[7]);
    let ysq = (y * 16.0).floor() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * result
}

/// Computes `erfc(y)` for `y > 4`.
fn erfc_large(y: f64) -> f64 {
    if y >= 26.543 {
        return 0.0;
    }
    let z = 1.0 / (y * y);
    let mut xnum = P[5] * z;
    let mut xden = z;
    for i in 0..4 {
        xnum = (xnum + P[i]) * z;
        xden = (xden + Q[i]) * z;
    }
    let mut result = z * (xnum + P[4]) / (xden + Q[4]);
    result = (SQRT_PI_INV - result) / y;
    let ysq = (y * 16.0).floor() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp() * result
}

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^(−t²) dt`.
///
/// Monotonically increasing, odd, with range `(−1, 1)`.
///
/// ```
/// use scorpio_interval::real::erf;
/// assert!((erf(0.0)).abs() < 1e-300);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    if y <= THRESH {
        erf_small(x)
    } else {
        let e = if y <= 4.0 { erfc_mid(y) } else { erfc_large(y) };
        let r = 1.0 - e;
        if x < 0.0 {
            -r
        } else {
            r
        }
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Computed without cancellation for large positive `x`.
///
/// ```
/// use scorpio_interval::real::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let y = x.abs();
    let tail = if y <= THRESH {
        return 1.0 - erf_small(x);
    } else if y <= 4.0 {
        erfc_mid(y)
    } else {
        erfc_large(y)
    };
    if x < 0.0 {
        2.0 - tail
    } else {
        tail
    }
}

/// Cumulative distribution function of the standard normal distribution,
/// `Φ(x) = ½ erfc(−x/√2)` — the "CNDF" at the heart of BlackScholes.
///
/// ```
/// use scorpio_interval::real::cndf;
/// assert!((cndf(0.0) - 0.5).abs() < 1e-15);
/// assert!((cndf(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
pub fn cndf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values computed with mpmath at 50 digits.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.46875, 0.4926134732179379),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
        (5.0, 0.9999999999984626),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!(
                (got - want).abs() <= 1e-15 + 4e-16 * want.abs(),
                "erf({x}) = {got}, want {want}"
            );
            // Odd symmetry.
            assert_eq!(erf(-x), -got);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-6.0, -2.0, -0.3, 0.0, 0.2, 0.47, 1.0, 3.9, 4.1, 8.0] {
            let sum = erf(x) + erfc(x);
            assert!((sum - 1.0).abs() < 1e-14, "erf+erfc at {x} = {sum}");
        }
    }

    #[test]
    fn erfc_large_positive_is_tiny_not_zero() {
        let v = erfc(6.0);
        assert!(v > 0.0 && v < 1e-16);
    }

    #[test]
    fn erfc_saturates_far_out() {
        assert_eq!(erfc(27.0), 0.0);
        assert!((erfc(-27.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn cndf_known_quantiles() {
        assert!((cndf(0.0) - 0.5).abs() < 1e-15);
        assert!((cndf(1.2815515655446004) - 0.9).abs() < 1e-10);
        assert!((cndf(-1.2815515655446004) - 0.1).abs() < 1e-10);
        assert!((cndf(2.3263478740408408) - 0.99).abs() < 1e-10);
    }

    #[test]
    fn erf_monotone_on_grid() {
        let mut prev = erf(-8.0);
        let mut x = -8.0;
        while x < 8.0 {
            x += 0.0625;
            let v = erf(x);
            assert!(v >= prev, "erf not monotone at {x}");
            prev = v;
        }
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
