//! The [`Interval`] type: representation, constructors, set operations.

use std::fmt;

use crate::rounding::{next_down, next_up};

/// Error produced when constructing an interval from invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalError {
    /// The lower bound was greater than the upper bound.
    InvertedBounds,
    /// One of the bounds was NaN.
    NanBound,
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::InvertedBounds => write!(f, "lower bound exceeds upper bound"),
            IntervalError::NanBound => write!(f, "interval bound is NaN"),
        }
    }
}

impl std::error::Error for IntervalError {}

/// A closed interval `[lo, hi]` of `f64` values.
///
/// `Interval` is the value type over which the significance analysis of the
/// CGO'16 paper operates: input ranges are intervals (Eq. 4), every
/// elementary operation is evaluated in interval arithmetic (Eq. 5), and the
/// adjoint sweep propagates interval derivatives (Eq. 10).
///
/// # Invariants
///
/// * `lo ≤ hi` (an *empty* interval is represented by the special value
///   [`Interval::EMPTY`] with NaN bounds and must be checked via
///   [`Interval::is_empty`]).
/// * Bounds may be infinite; `[-∞, ∞]` is [`Interval::ENTIRE`].
///
/// # Examples
///
/// ```
/// use scorpio_interval::Interval;
///
/// let x = Interval::new(1.0, 2.0);
/// assert_eq!(x.inf(), 1.0);
/// assert_eq!(x.sup(), 2.0);
/// assert_eq!(x.width(), 1.0);
/// assert!(x.contains(1.5));
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The empty set. All arithmetic on it yields the empty set.
    ///
    /// Downstream significance analysis treats a node whose value or
    /// adjoint enclosure is empty as having *no defined significance*
    /// (NaN) rather than zero: the empty set is the result of a domain
    /// violation (e.g. `sqrt` of a wholly negative interval), so
    /// ranking it among real significances would be unsound. The
    /// analysis layer surfaces such nodes separately
    /// (`scorpio-core`'s `Report::empty_enclosures`).
    pub const EMPTY: Interval = Interval {
        lo: f64::NAN,
        hi: f64::NAN,
    };

    /// The whole real line `[-∞, +∞]`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The degenerate interval `[1, 1]`.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN. Use [`Interval::try_new`]
    /// for a non-panicking constructor.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let x = Interval::new(-1.0, 1.0);
    /// assert_eq!(x.mid(), 0.0);
    /// ```
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Interval {
        match Interval::try_new(lo, hi) {
            Ok(iv) => iv,
            Err(e) => panic!("Interval::new({lo}, {hi}): {e}"),
        }
    }

    /// Creates the interval `[lo, hi]`, returning an error on invalid bounds.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::InvertedBounds`] if `lo > hi` and
    /// [`IntervalError::NanBound`] if either bound is NaN.
    ///
    /// ```
    /// use scorpio_interval::{Interval, IntervalError};
    /// assert_eq!(Interval::try_new(2.0, 1.0), Err(IntervalError::InvertedBounds));
    /// ```
    #[inline]
    pub fn try_new(lo: f64, hi: f64) -> Result<Interval, IntervalError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(IntervalError::NanBound);
        }
        if lo > hi {
            return Err(IntervalError::InvertedBounds);
        }
        Ok(Interval { lo, hi })
    }

    /// Creates the degenerate (point) interval `[x, x]`.
    ///
    /// A NaN input produces the empty interval.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// assert!(Interval::point(3.0).is_point());
    /// ```
    #[inline]
    pub fn point(x: f64) -> Interval {
        if x.is_nan() {
            Interval::EMPTY
        } else {
            Interval { lo: x, hi: x }
        }
    }

    /// Creates the interval `[mid - radius, mid + radius]` with outward
    /// rounding of the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0` or any argument is NaN.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let x = Interval::centered(0.5, 0.5);
    /// assert!(x.contains(0.0) && x.contains(1.0));
    /// ```
    #[inline]
    pub fn centered(mid: f64, radius: f64) -> Interval {
        assert!(radius >= 0.0, "Interval::centered: negative radius {radius}");
        if radius == 0.0 {
            return Interval::point(mid);
        }
        Interval::new(next_down(mid - radius), next_up(mid + radius))
    }

    /// Creates an interval from two unordered bounds.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// assert_eq!(Interval::from_unordered(2.0, 1.0), Interval::new(1.0, 2.0));
    /// ```
    #[inline]
    pub fn from_unordered(a: f64, b: f64) -> Interval {
        if a.is_nan() || b.is_nan() {
            Interval::EMPTY
        } else {
            Interval {
                lo: a.min(b),
                hi: a.max(b),
            }
        }
    }

    /// Raw constructor bypassing canonicalisation — exists only so the
    /// `audit-invariants` tests can manufacture the malformed values the
    /// checks must reject.
    #[cfg(feature = "audit-invariants")]
    pub(crate) const fn from_bounds_unchecked(lo: f64, hi: f64) -> Interval {
        Interval { lo, hi }
    }

    /// Internal constructor that maps NaN bounds to the empty set.
    #[inline]
    pub(crate) fn make(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Interval::EMPTY
        } else {
            Interval { lo, hi }
        }
    }

    /// Lower bound (infimum). NaN for the empty interval.
    #[inline]
    pub fn inf(&self) -> f64 {
        self.lo
    }

    /// Upper bound (supremum). NaN for the empty interval.
    #[inline]
    pub fn sup(&self) -> f64 {
        self.hi
    }

    /// Width `w([u]) = sup − inf` (Eq. 11's `w(·)`); `0` for points, NaN for
    /// the empty interval.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// assert_eq!(Interval::new(-0.5, 1.5).width(), 2.0);
    /// ```
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi) / 2`, computed overflow-safely.
    #[inline]
    pub fn mid(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        if self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY {
            return 0.0;
        }
        if self.lo == f64::NEG_INFINITY {
            return f64::MIN;
        }
        if self.hi == f64::INFINITY {
            return f64::MAX;
        }
        let m = 0.5 * (self.lo + self.hi);
        if m.is_finite() {
            m
        } else {
            0.5 * self.lo + 0.5 * self.hi
        }
    }

    /// Radius `(hi − lo) / 2`.
    #[inline]
    pub fn rad(&self) -> f64 {
        0.5 * self.width()
    }

    /// Magnitude: `max{|x| : x ∈ [self]}`.
    #[inline]
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Mignitude: `min{|x| : x ∈ [self]}` (0 if the interval contains 0).
    #[inline]
    pub fn mig(&self) -> f64 {
        if self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// `true` iff the interval is the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.is_nan()
    }

    /// `true` iff the interval is a single point `[x, x]`.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` iff both bounds are finite.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// `true` iff `x ∈ [self]`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// assert!(Interval::new(0.0, 1.0).contains(1.0));
    /// assert!(!Interval::new(0.0, 1.0).contains(1.0000001));
    /// ```
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        !self.is_empty() && self.lo <= x && x <= self.hi
    }

    /// `true` iff `other ⊆ self`.
    #[inline]
    pub fn encloses(&self, other: Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` iff `self` and `other` have at least one common point.
    #[inline]
    pub fn intersects(&self, other: Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection `self ∩ other` (possibly empty).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let a = Interval::new(0.0, 2.0);
    /// let b = Interval::new(1.0, 3.0);
    /// assert_eq!(a.intersection(b), Interval::new(1.0, 2.0));
    /// ```
    #[inline]
    pub fn intersection(&self, other: Interval) -> Interval {
        if !self.intersects(other) {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Convex hull: the smallest interval containing both operands.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let a = Interval::new(0.0, 1.0);
    /// let b = Interval::new(3.0, 4.0);
    /// assert_eq!(a.hull(b), Interval::new(0.0, 4.0));
    /// ```
    #[inline]
    pub fn hull(&self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Inflates the interval outward by `eps` in absolute terms.
    #[inline]
    pub fn inflated(&self, eps: f64) -> Interval {
        if self.is_empty() {
            return *self;
        }
        Interval::make(self.lo - eps, self.hi + eps)
    }

    /// Converts to a representative `f64` (the midpoint), mirroring
    /// `dco::ia1s::type::toDouble()` from Listing 6 of the paper.
    #[inline]
    pub fn to_f64(&self) -> f64 {
        self.mid()
    }

    /// Clamps every member into `[lo, hi]`, i.e. the interval version of
    /// `f64::clamp`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let t = Interval::new(-10.0, 300.0);
    /// assert_eq!(t.clamp_to(0.0, 255.0), Interval::new(0.0, 255.0));
    /// ```
    #[inline]
    pub fn clamp_to(&self, lo: f64, hi: f64) -> Interval {
        assert!(lo <= hi, "clamp_to: inverted clamp range");
        if self.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.clamp(lo, hi),
            hi: self.hi.clamp(lo, hi),
        }
    }
}

impl Default for Interval {
    /// The default interval is `[0, 0]`.
    fn default() -> Interval {
        Interval::ZERO
    }
}

impl From<f64> for Interval {
    /// Wraps a scalar into the point interval `[x, x]`.
    fn from(x: f64) -> Interval {
        Interval::point(x)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{:?}, {:?}]", self.lo, self.hi)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}
