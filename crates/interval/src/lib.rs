//! Outward-rounded interval arithmetic.
//!
//! This crate is the interval-arithmetic substrate of the `scorpio`
//! significance-analysis framework, playing the role FILIB++ plays for the
//! original dco/scorpio tool (Vassiliadis et al., *Towards Automatic
//! Significance Analysis for Approximate Computing*, CGO 2016).
//!
//! The central type is [`Interval`], a closed connected set
//! `[a, b] = { x ∈ ℝ | a ≤ x ≤ b }` represented by a pair of `f64` bounds.
//! All arithmetic operations and elementary functions return *enclosures*:
//! the true real result of applying the operation pointwise to every member
//! of the operands is always contained in the returned interval. Directed
//! (outward) rounding is implemented in software by nudging computed bounds
//! with [`next_down`]/[`next_up`], so the enclosure property holds despite
//! the hardware rounding mode being round-to-nearest.
//!
//! # Quick start
//!
//! ```
//! use scorpio_interval::Interval;
//!
//! let x = Interval::new(0.0, 1.0);
//! let y = (x.sin() + x).exp().cos();
//! // Every pointwise result is enclosed:
//! assert!(y.contains(((0.5f64).sin() + 0.5).exp().cos()));
//! ```
//!
//! # Modules
//!
//! * [`rounding`] — software directed-rounding primitives.
//! * [`real`] — auxiliary real-valued special functions (`erf`, `erfc`,
//!   `cndf`) used to build their interval versions.
//! * three-valued ([`Trichotomy`]) interval comparisons, the
//!   mechanism by which ambiguous control flow is detected (§2.2 of the
//!   paper).
//! * [`nearest`] — round-to-nearest variants of the arithmetic kernels, used
//!   only by the rounding ablation study.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "audit-invariants")]
mod audit;
mod boxes;
mod compare;
mod extra;
mod functions;
mod interval;
pub mod nearest;
mod ops;
pub mod real;
pub mod rounding;
mod split;

pub use boxes::IBox;
pub use compare::Trichotomy;
pub use interval::{Interval, IntervalError};
pub use rounding::{next_down, next_up};
pub use split::Bisection;

#[cfg(test)]
mod tests;
