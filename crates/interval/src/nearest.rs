//! Round-to-nearest arithmetic kernels — the **rounding ablation** baseline.
//!
//! These functions perform the same case analysis as the production
//! operators of [`Interval`] but take computed bounds
//! verbatim (no outward ULP nudges). The enclosure property is therefore
//! *not* guaranteed; the only legitimate consumer is the ablation bench that
//! quantifies how much outward rounding costs in enclosure width and whether
//! it ever changes a significance ranking.

use crate::interval::Interval;
use crate::ops::{add_impl, div_impl, mul_impl, sub_impl, Nearest};

/// `a + b` without outward rounding.
///
/// ```
/// use scorpio_interval::{nearest, Interval};
/// let r = nearest::add(Interval::point(0.1), Interval::point(0.2));
/// assert!(r.is_point()); // the outward-rounded version is not a point
/// ```
#[inline]
pub fn add(a: Interval, b: Interval) -> Interval {
    add_impl::<Nearest>(a, b)
}

/// `a - b` without outward rounding.
#[inline]
pub fn sub(a: Interval, b: Interval) -> Interval {
    sub_impl::<Nearest>(a, b)
}

/// `a * b` without outward rounding.
#[inline]
pub fn mul(a: Interval, b: Interval) -> Interval {
    mul_impl::<Nearest>(a, b)
}

/// `a / b` without outward rounding.
#[inline]
pub fn div(a: Interval, b: Interval) -> Interval {
    div_impl::<Nearest>(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_is_never_wider_than_outward() {
        let cases = [
            (Interval::new(0.1, 0.3), Interval::new(-0.7, 0.2)),
            (Interval::new(1e-10, 2e-10), Interval::new(3.0, 4.0)),
            (Interval::new(-5.5, -1.1), Interval::new(-2.2, 7.7)),
        ];
        for (a, b) in cases {
            assert!((a + b).encloses(add(a, b)));
            assert!((a - b).encloses(sub(a, b)));
            assert!((a * b).encloses(mul(a, b)));
            assert!((a / b).encloses(div(a, b)));
        }
    }

    #[test]
    fn nearest_matches_plain_f64_on_points() {
        let a = Interval::point(0.1);
        let b = Interval::point(0.2);
        assert_eq!(add(a, b), Interval::point(0.1 + 0.2));
        assert_eq!(mul(a, b), Interval::point(0.1 * 0.2));
    }
}
