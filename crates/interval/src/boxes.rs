//! Multi-dimensional interval boxes.
//!
//! The splitting extension of the analysis layer manipulates vectors of
//! input ranges; [`IBox`] gives that concept a proper type with the
//! geometric operations subdivision schemes need (widest-dimension
//! bisection, volume, hull, containment).

use std::fmt;
use std::ops::Index;

use crate::interval::Interval;

/// An axis-aligned box `[x₁] × [x₂] × … × [xₙ]` of intervals.
///
/// # Examples
///
/// ```
/// use scorpio_interval::{IBox, Interval};
///
/// let b = IBox::new(vec![Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)]);
/// assert_eq!(b.dim(), 2);
/// assert_eq!(b.widest_dim(), Some(1));
/// assert!((b.volume() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IBox {
    dims: Vec<Interval>,
}

impl IBox {
    /// Creates a box from its per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> IBox {
        IBox { dims }
    }

    /// The degenerate box at a point.
    pub fn point(coords: &[f64]) -> IBox {
        IBox {
            dims: coords.iter().map(|&c| Interval::point(c)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// `true` for the zero-dimensional box.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty() || self.dims.iter().any(Interval::is_empty)
    }

    /// The per-dimension intervals.
    pub fn dims(&self) -> &[Interval] {
        &self.dims
    }

    /// Consumes the box, yielding its intervals.
    pub fn into_dims(self) -> Vec<Interval> {
        self.dims
    }

    /// The midpoint of every dimension.
    pub fn mid(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::mid).collect()
    }

    /// Product of the dimension widths (0 if any dimension is a point).
    pub fn volume(&self) -> f64 {
        self.dims.iter().map(Interval::width).product()
    }

    /// The largest dimension width.
    pub fn max_width(&self) -> f64 {
        self.dims
            .iter()
            .map(Interval::width)
            .fold(0.0, f64::max)
    }

    /// Index of the widest dimension (`None` for 0-dimensional boxes;
    /// first of equals wins).
    pub fn widest_dim(&self) -> Option<usize> {
        (0..self.dims.len()).max_by(|&a, &b| {
            self.dims[a]
                .width()
                .partial_cmp(&self.dims[b].width())
                .unwrap_or(std::cmp::Ordering::Equal)
                // max_by keeps the *last* max; tie-break so the first wins.
                .then(b.cmp(&a))
        })
    }

    /// `true` iff the point lies in every dimension.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn contains(&self, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dim(), "dimension mismatch");
        self.dims
            .iter()
            .zip(point)
            .all(|(iv, &p)| iv.contains(p))
    }

    /// `true` iff `other` fits inside `self` in every dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn encloses(&self, other: &IBox) -> bool {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch");
        self.dims
            .iter()
            .zip(&other.dims)
            .all(|(a, b)| a.encloses(*b))
    }

    /// Componentwise convex hull.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hull(&self, other: &IBox) -> IBox {
        assert_eq!(other.dim(), self.dim(), "dimension mismatch");
        IBox {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(*b))
                .collect(),
        }
    }

    /// Bisects along the widest dimension, returning the two half-boxes
    /// (`None` if no dimension can be split further).
    ///
    /// ```
    /// use scorpio_interval::{IBox, Interval};
    /// let b = IBox::new(vec![Interval::new(0.0, 4.0), Interval::new(0.0, 1.0)]);
    /// let (lo, hi) = b.bisect_widest().unwrap();
    /// assert_eq!(lo[0], Interval::new(0.0, 2.0));
    /// assert_eq!(hi[0], Interval::new(2.0, 4.0));
    /// assert_eq!(lo[1], hi[1]);
    /// ```
    pub fn bisect_widest(&self) -> Option<(IBox, IBox)> {
        let d = self.widest_dim()?;
        let halves = self.dims[d].bisect()?;
        let mut lo = self.clone();
        let mut hi = self.clone();
        lo.dims[d] = halves.lower;
        hi.dims[d] = halves.upper;
        Some((lo, hi))
    }

    /// Uniform subdivision: splits every dimension into `k` parts,
    /// producing the `k^dim` sub-boxes in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn subdivide(&self, k: usize) -> Vec<IBox> {
        assert!(k > 0, "subdivide: k must be positive");
        let per_dim: Vec<Vec<Interval>> =
            self.dims.iter().map(|iv| iv.split(k)).collect();
        let mut out = vec![IBox { dims: Vec::new() }];
        for parts in &per_dim {
            let mut next = Vec::with_capacity(out.len() * parts.len());
            for partial in &out {
                for p in parts {
                    let mut dims = partial.dims.clone();
                    dims.push(*p);
                    next.push(IBox { dims });
                }
            }
            out = next;
        }
        out
    }
}

impl Index<usize> for IBox {
    type Output = Interval;
    fn index(&self, i: usize) -> &Interval {
        &self.dims[i]
    }
}

impl FromIterator<Interval> for IBox {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> IBox {
        IBox {
            dims: iter.into_iter().collect(),
        }
    }
}

impl From<Vec<Interval>> for IBox {
    fn from(dims: Vec<Interval>) -> IBox {
        IBox { dims }
    }
}

impl fmt::Display for IBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit2() -> IBox {
        IBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    #[test]
    fn volume_and_width() {
        let b = IBox::new(vec![Interval::new(0.0, 2.0), Interval::new(1.0, 4.0)]);
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.max_width(), 3.0);
        assert_eq!(b.widest_dim(), Some(1));
    }

    #[test]
    fn widest_dim_tie_breaks_first() {
        let b = unit2();
        assert_eq!(b.widest_dim(), Some(0));
    }

    #[test]
    fn contains_and_encloses() {
        let b = unit2();
        assert!(b.contains(&[0.5, 0.0]));
        assert!(!b.contains(&[1.5, 0.5]));
        let inner = IBox::new(vec![Interval::new(0.2, 0.8), Interval::new(0.0, 1.0)]);
        assert!(b.encloses(&inner));
        assert!(!inner.encloses(&b));
    }

    #[test]
    fn bisect_splits_widest() {
        let b = IBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 3.0)]);
        let (lo, hi) = b.bisect_widest().unwrap();
        assert_eq!(lo[1].sup(), 1.5);
        assert_eq!(hi[1].inf(), 1.5);
        assert_eq!(lo[0], hi[0]);
        assert_eq!(lo.hull(&hi), b);
    }

    #[test]
    fn bisect_point_box_fails() {
        let b = IBox::point(&[1.0, 2.0]);
        assert!(b.bisect_widest().is_none());
    }

    #[test]
    fn subdivide_counts_and_covers() {
        let b = unit2();
        let parts = b.subdivide(3);
        assert_eq!(parts.len(), 9);
        let hull = parts
            .iter()
            .skip(1)
            .fold(parts[0].clone(), |acc, p| acc.hull(p));
        assert_eq!(hull, b);
        let total: f64 = parts.iter().map(IBox::volume).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_conversions() {
        let b: IBox = vec![Interval::new(0.0, 1.0)].into();
        assert_eq!(b.to_string(), "([0, 1])");
        let c: IBox = b.dims().iter().copied().collect();
        assert_eq!(b, c);
        assert_eq!(c.into_dims().len(), 1);
    }

    #[test]
    fn point_box_has_zero_volume() {
        let b = IBox::point(&[3.0]);
        assert_eq!(b.volume(), 0.0);
        assert!(b.contains(&[3.0]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn contains_checks_dims() {
        let _ = unit2().contains(&[0.5]);
    }
}
