//! Interval bisection utilities.
//!
//! These support the interval-splitting extension mentioned as ongoing
//! research in §2.2 of the paper: when an interval comparison is ambiguous,
//! the analysis can bisect the offending input range and re-run on each
//! half until control flow becomes unique.

use crate::interval::Interval;

/// The two halves produced by bisecting an interval at its midpoint.
///
/// The halves overlap in the single midpoint, so their union covers the
/// original interval exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bisection {
    /// The lower half `[inf, mid]`.
    pub lower: Interval,
    /// The upper half `[mid, sup]`.
    pub upper: Interval,
}

impl Interval {
    /// Bisects at the midpoint.
    ///
    /// Returns `None` for empty or point intervals, and for intervals so
    /// narrow that the midpoint equals an endpoint (no further progress
    /// possible).
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let halves = Interval::new(0.0, 2.0).bisect().unwrap();
    /// assert_eq!(halves.lower, Interval::new(0.0, 1.0));
    /// assert_eq!(halves.upper, Interval::new(1.0, 2.0));
    /// ```
    pub fn bisect(self) -> Option<Bisection> {
        if self.is_empty() || self.is_point() {
            return None;
        }
        let m = self.mid();
        if m <= self.inf() || m >= self.sup() {
            return None;
        }
        Some(Bisection {
            lower: Interval::new(self.inf(), m),
            upper: Interval::new(m, self.sup()),
        })
    }

    /// Splits the interval into `n` equal-width sub-intervals.
    ///
    /// Useful for the wider-input-range sweeps in the paper's future-work
    /// section. Returns an empty vector for an empty interval, and a single
    /// copy for a point interval or `n == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// ```
    /// use scorpio_interval::Interval;
    /// let parts = Interval::new(0.0, 1.0).split(4);
    /// assert_eq!(parts.len(), 4);
    /// assert_eq!(parts[0].inf(), 0.0);
    /// assert_eq!(parts[3].sup(), 1.0);
    /// ```
    pub fn split(self, n: usize) -> Vec<Interval> {
        assert!(n > 0, "Interval::split: n must be positive");
        if self.is_empty() {
            return Vec::new();
        }
        if self.is_point() || n == 1 {
            return vec![self];
        }
        let mut parts = Vec::with_capacity(n);
        let w = self.width() / n as f64;
        let mut lo = self.inf();
        for i in 0..n {
            let hi = if i == n - 1 {
                self.sup()
            } else {
                (self.inf() + w * (i + 1) as f64).min(self.sup())
            };
            parts.push(Interval::new(lo, hi.max(lo)));
            lo = hi.max(lo);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_covers_original() {
        let x = Interval::new(-1.0, 3.0);
        let b = x.bisect().unwrap();
        assert_eq!(b.lower.hull(b.upper), x);
        assert_eq!(b.lower.sup(), b.upper.inf());
    }

    #[test]
    fn bisect_degenerate() {
        assert!(Interval::point(1.0).bisect().is_none());
        assert!(Interval::EMPTY.bisect().is_none());
    }

    #[test]
    fn split_partitions() {
        let x = Interval::new(0.0, 10.0);
        let parts = x.split(5);
        assert_eq!(parts.len(), 5);
        for pair in parts.windows(2) {
            assert_eq!(pair[0].sup(), pair[1].inf());
        }
        let union = parts.iter().fold(Interval::EMPTY, |acc, p| acc.hull(*p));
        assert_eq!(union, x);
    }

    #[test]
    fn split_point_interval() {
        let parts = Interval::point(2.0).split(7);
        assert_eq!(parts, vec![Interval::point(2.0)]);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn split_zero_panics() {
        let _ = Interval::new(0.0, 1.0).split(0);
    }
}
