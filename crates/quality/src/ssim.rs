//! Structural similarity (SSIM) — a perceptual image-quality metric
//! complementing PSNR.
//!
//! PSNR (the paper's metric) weighs all pixel errors equally; SSIM
//! (Wang et al., IEEE TIP 2004) compares local luminance, contrast and
//! structure, and is the de-facto second opinion in codec evaluation.
//! The implementation is the standard windowed form with an 8×8 box
//! window and the usual stabilisation constants for 8-bit dynamic range.

use crate::image::GrayImage;

const C1: f64 = 6.5025; // (0.01 * 255)²
const C2: f64 = 58.5225; // (0.03 * 255)²
const WINDOW: usize = 8;

/// Mean SSIM between two images over non-overlapping 8×8 windows.
///
/// Returns a value in `[-1, 1]`; `1.0` for identical images.
///
/// # Panics
///
/// Panics if the image dimensions differ or are smaller than the 8×8
/// window.
///
/// ```
/// use scorpio_quality::{gradient, ssim};
/// let img = gradient(32, 32);
/// assert_eq!(ssim(&img, &img), 1.0);
/// ```
pub fn ssim(reference: &GrayImage, candidate: &GrayImage) -> f64 {
    assert_eq!(reference.width(), candidate.width(), "width mismatch");
    assert_eq!(reference.height(), candidate.height(), "height mismatch");
    assert!(
        reference.width() >= WINDOW && reference.height() >= WINDOW,
        "image smaller than the SSIM window"
    );

    let mut total = 0.0;
    let mut windows = 0usize;
    for wy in 0..(reference.height() / WINDOW) {
        for wx in 0..(reference.width() / WINDOW) {
            total += window_ssim(reference, candidate, wx * WINDOW, wy * WINDOW);
            windows += 1;
        }
    }
    total / windows as f64
}

fn window_ssim(a: &GrayImage, b: &GrayImage, x0: usize, y0: usize) -> f64 {
    let n = (WINDOW * WINDOW) as f64;
    let (mut ma, mut mb) = (0.0, 0.0);
    for y in y0..y0 + WINDOW {
        for x in x0..x0 + WINDOW {
            ma += a.get(x, y);
            mb += b.get(x, y);
        }
    }
    ma /= n;
    mb /= n;

    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for y in y0..y0 + WINDOW {
        for x in x0..x0 + WINDOW {
            let da = a.get(x, y) - ma;
            let db = b.get(x, y) - mb;
            va += da * da;
            vb += db * db;
            cov += da * db;
        }
    }
    va /= n - 1.0;
    vb /= n - 1.0;
    cov /= n - 1.0;

    ((2.0 * ma * mb + C1) * (2.0 * cov + C2)) / ((ma * ma + mb * mb + C1) * (va + vb + C2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{checkerboard, gradient, value_noise};

    #[test]
    fn identical_images_score_one() {
        for img in [gradient(32, 32), checkerboard(32, 32, 8), value_noise(32, 32, 1)] {
            assert!((ssim(&img, &img) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ssim_decreases_with_distortion() {
        let reference = value_noise(64, 64, 9);
        let mut mild = reference.clone();
        for p in mild.pixels_mut() {
            *p = (*p + 5.0).min(255.0);
        }
        let mut severe = reference.clone();
        for (i, p) in severe.pixels_mut().iter_mut().enumerate() {
            *p = if i % 2 == 0 { 0.0 } else { 255.0 };
        }
        let s_mild = ssim(&reference, &mild);
        let s_severe = ssim(&reference, &severe);
        assert!(s_mild > 0.9, "mild distortion {s_mild}");
        assert!(s_severe < 0.3, "severe distortion {s_severe}");
        assert!(s_mild > s_severe);
    }

    #[test]
    fn constant_shift_scores_high_structure() {
        // SSIM forgives uniform luminance shifts far more than PSNR does.
        let reference = gradient(32, 32);
        let mut shifted = reference.clone();
        for p in shifted.pixels_mut() {
            *p += 10.0;
        }
        let s = ssim(&reference, &shifted);
        assert!(s > 0.85, "shifted {s}");
    }

    #[test]
    fn black_vs_white_scores_near_zero() {
        let black = GrayImage::new(16, 16);
        let white = GrayImage::from_fn(16, 16, |_, _| 255.0);
        let s = ssim(&black, &white);
        assert!(s < 0.05, "{s}");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn dimension_mismatch_panics() {
        let _ = ssim(&GrayImage::new(16, 16), &GrayImage::new(24, 16));
    }

    #[test]
    #[should_panic(expected = "smaller than the SSIM window")]
    fn tiny_image_panics() {
        let _ = ssim(&GrayImage::new(4, 4), &GrayImage::new(4, 4));
    }
}
