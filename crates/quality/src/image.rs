//! A minimal grayscale image type with PGM I/O.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced by image constructors and PGM parsing.
#[derive(Debug)]
pub enum ImageError {
    /// Pixel buffer length does not match `width * height`.
    DimensionMismatch {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
        /// Actual buffer length.
        len: usize,
    },
    /// The PGM stream was malformed.
    Format(String),
    /// The PGM header declares a maxval this reader cannot represent
    /// faithfully (0 or above 255 — 16-bit PGM would need two bytes per
    /// pixel and would be silently mis-scaled if read as 8-bit).
    UnsupportedMaxval {
        /// The declared maxval.
        maxval: usize,
    },
    /// The pixel payload ended before `width * height` bytes.
    TruncatedPixels {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::DimensionMismatch { width, height, len } => write!(
                f,
                "pixel buffer of length {len} does not match {width}x{height} image"
            ),
            ImageError::Format(msg) => write!(f, "malformed PGM: {msg}"),
            ImageError::UnsupportedMaxval { maxval } => {
                write!(f, "unsupported PGM maxval {maxval} (must be 1..=255)")
            }
            ImageError::TruncatedPixels { expected, got } => write!(
                f,
                "truncated PGM pixel data: expected {expected} bytes, got {got}"
            ),
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// A grayscale image with `f64` pixels in `[0, 255]`, stored row-major.
///
/// Pixels are `f64` rather than `u8` because the kernels (DCT, bicubic
/// interpolation, Sobel) compute in floating point and only clip at the
/// very end; keeping full precision lets quality metrics see the true
/// degradation introduced by approximation rather than quantisation noise.
///
/// # Examples
///
/// ```
/// use scorpio_quality::GrayImage;
///
/// let mut img = GrayImage::new(4, 3);
/// img.set(2, 1, 128.0);
/// assert_eq!(img.get(2, 1), 128.0);
/// assert_eq!(img.width(), 4);
/// assert_eq!(img.height(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl GrayImage {
    /// Creates a black (all-zero) image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> GrayImage {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::DimensionMismatch`] if `pixels.len()` is not
    /// `width * height`.
    pub fn from_pixels(
        width: usize,
        height: usize,
        pixels: Vec<f64>,
    ) -> Result<GrayImage, ImageError> {
        if pixels.len() != width * height {
            return Err(ImageError::DimensionMismatch {
                width,
                height,
                len: pixels.len(),
            });
        }
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Builds an image by evaluating `f(x, y)` at every pixel.
    ///
    /// ```
    /// use scorpio_quality::GrayImage;
    /// let img = GrayImage::from_fn(8, 8, |x, y| (x + y) as f64);
    /// assert_eq!(img.get(3, 4), 7.0);
    /// ```
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> GrayImage {
        let mut img = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` with coordinates clamped into the image — the
    /// standard border handling of the convolution and interpolation
    /// kernels.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f64 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[cy * self.width + cx]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f64) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = value;
    }

    /// Row-major pixel slice.
    #[inline]
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Mutable row-major pixel slice.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [f64] {
        &mut self.pixels
    }

    /// One image row.
    #[inline]
    pub fn row(&self, y: usize) -> &[f64] {
        &self.pixels[y * self.width..(y + 1) * self.width]
    }

    /// Clips every pixel into `[0, 255]` (the final stage of Sobel in
    /// §4.1.1 of the paper).
    pub fn clip(&mut self) {
        for p in &mut self.pixels {
            *p = p.clamp(0.0, 255.0);
        }
    }

    /// Writes the image as a binary PGM (P5), rounding pixels to `u8`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_pgm<W: Write>(&self, mut w: W) -> Result<(), ImageError> {
        writeln!(w, "P5\n{} {}\n255", self.width, self.height)?;
        let bytes: Vec<u8> = self
            .pixels
            .iter()
            .map(|&p| p.clamp(0.0, 255.0).round() as u8)
            .collect();
        w.write_all(&bytes)?;
        Ok(())
    }

    /// Reads a binary PGM (P5) image. Maxvals below 255 are rescaled
    /// into the canonical `[0, 255]` pixel range.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::Format`] on malformed headers,
    /// [`ImageError::UnsupportedMaxval`] for maxval 0 or above 255
    /// (16-bit PGM), [`ImageError::TruncatedPixels`] when the payload is
    /// shorter than the header promises, and [`ImageError::Io`] on
    /// reader failures.
    pub fn read_pgm<R: BufRead>(mut r: R) -> Result<GrayImage, ImageError> {
        let mut header = Vec::new();
        let mut fields = Vec::new();
        // Read header fields (magic, width, height, maxval), skipping
        // comments, then the single whitespace byte before pixel data.
        let mut byte = [0u8; 1];
        let mut token = Vec::new();
        let mut in_comment = false;
        while fields.len() < 4 {
            let n = r.read(&mut byte)?;
            if n == 0 {
                return Err(ImageError::Format("truncated header".into()));
            }
            let b = byte[0];
            header.push(b);
            if in_comment {
                if b == b'\n' {
                    in_comment = false;
                }
                continue;
            }
            if b == b'#' {
                in_comment = true;
                continue;
            }
            if b.is_ascii_whitespace() {
                if !token.is_empty() {
                    fields.push(String::from_utf8_lossy(&token).into_owned());
                    token.clear();
                }
            } else {
                token.push(b);
            }
        }
        if fields[0] != "P5" {
            return Err(ImageError::Format(format!(
                "expected magic P5, got {}",
                fields[0]
            )));
        }
        let width: usize = fields[1]
            .parse()
            .map_err(|_| ImageError::Format("bad width".into()))?;
        let height: usize = fields[2]
            .parse()
            .map_err(|_| ImageError::Format("bad height".into()))?;
        let maxval: usize = fields[3]
            .parse()
            .map_err(|_| ImageError::Format("bad maxval".into()))?;
        if maxval == 0 || maxval > 255 {
            return Err(ImageError::UnsupportedMaxval { maxval });
        }
        if width == 0 || height == 0 {
            return Err(ImageError::Format("zero dimension".into()));
        }
        let expected = width * height;
        let mut data = vec![0u8; expected];
        let mut got = 0usize;
        while got < expected {
            let n = r.read(&mut data[got..])?;
            if n == 0 {
                return Err(ImageError::TruncatedPixels { expected, got });
            }
            got += n;
        }
        let scale = 255.0 / maxval as f64;
        let pixels = data.into_iter().map(|b| f64::from(b) * scale).collect();
        GrayImage::from_pixels(width, height, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pixels_validates_length() {
        assert!(GrayImage::from_pixels(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            GrayImage::from_pixels(2, 2, vec![0.0; 5]),
            Err(ImageError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn get_clamped_handles_borders() {
        let img = GrayImage::from_fn(3, 3, |x, y| (y * 3 + x) as f64);
        assert_eq!(img.get_clamped(-1, -1), 0.0);
        assert_eq!(img.get_clamped(5, 5), 8.0);
        assert_eq!(img.get_clamped(1, 1), 4.0);
    }

    #[test]
    fn clip_saturates() {
        let mut img = GrayImage::from_pixels(2, 1, vec![-5.0, 300.0]).unwrap();
        img.clip();
        assert_eq!(img.pixels(), &[0.0, 255.0]);
    }

    #[test]
    fn pgm_roundtrip() {
        let img = GrayImage::from_fn(17, 9, |x, y| ((x * 13 + y * 29) % 256) as f64);
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = GrayImage::read_pgm(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.width(), 17);
        assert_eq!(back.height(), 9);
        assert_eq!(back.pixels(), img.pixels());
    }

    #[test]
    fn pgm_with_comment() {
        let mut buf = Vec::from(&b"P5\n# a comment line\n2 1\n255\n"[..]);
        buf.extend_from_slice(&[7, 9]);
        let img = GrayImage::read_pgm(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(img.pixels(), &[7.0, 9.0]);
    }

    #[test]
    fn pgm_rejects_bad_magic() {
        let buf = Vec::from(&b"P2\n2 1\n255\n12"[..]);
        assert!(matches!(
            GrayImage::read_pgm(std::io::Cursor::new(buf)),
            Err(ImageError::Format(_))
        ));
    }

    #[test]
    fn pgm_rejects_16bit_maxval() {
        let mut buf = Vec::from(&b"P5\n2 1\n65535\n"[..]);
        buf.extend_from_slice(&[0, 7, 0, 9]);
        assert!(matches!(
            GrayImage::read_pgm(std::io::Cursor::new(buf)),
            Err(ImageError::UnsupportedMaxval { maxval: 65535 })
        ));
    }

    #[test]
    fn pgm_rejects_zero_maxval() {
        let buf = Vec::from(&b"P5\n2 1\n0\n\x00\x00"[..]);
        assert!(matches!(
            GrayImage::read_pgm(std::io::Cursor::new(buf)),
            Err(ImageError::UnsupportedMaxval { maxval: 0 })
        ));
    }

    #[test]
    fn pgm_rejects_truncated_pixels() {
        let mut buf = Vec::from(&b"P5\n3 2\n255\n"[..]);
        buf.extend_from_slice(&[1, 2, 3, 4]); // 4 of 6 pixel bytes
        assert!(matches!(
            GrayImage::read_pgm(std::io::Cursor::new(buf)),
            Err(ImageError::TruncatedPixels {
                expected: 6,
                got: 4
            })
        ));
    }

    #[test]
    fn pgm_low_maxval_is_rescaled() {
        let mut buf = Vec::from(&b"P5\n3 1\n15\n"[..]);
        buf.extend_from_slice(&[0, 15, 3]);
        let img = GrayImage::read_pgm(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 0), 255.0);
        assert!((img.get(2, 0) - 3.0 * 255.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn row_access() {
        let img = GrayImage::from_fn(4, 2, |x, y| (y * 4 + x) as f64);
        assert_eq!(img.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = GrayImage::new(0, 5);
    }
}
