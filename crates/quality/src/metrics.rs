//! The quality metrics of §4.3: PSNR and relative error, plus helpers.

use crate::image::GrayImage;

/// Mean squared error between two signals.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// ```
/// use scorpio_quality::mse;
/// assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]), 12.5);
/// ```
pub fn mse(reference: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "mse: signal lengths differ"
    );
    assert!(!reference.is_empty(), "mse: empty signals");
    let sum: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c) * (r - c))
        .sum();
    sum / reference.len() as f64
}

/// Peak signal-to-noise ratio in dB for 8-bit-range signals
/// (`peak = 255`), the image-quality metric of the paper ("higher is
/// better; note that PSNR is a logarithmic metric").
///
/// Returns `f64::INFINITY` when the signals are identical — the paper's
/// fully-accurate (`ratio = 1`) data point.
///
/// ```
/// use scorpio_quality::psnr;
/// let reference = [100.0, 150.0, 200.0];
/// assert_eq!(psnr(&reference, &reference), f64::INFINITY);
/// let noisy = [101.0, 150.0, 200.0];
/// assert!(psnr(&reference, &noisy) > 40.0);
/// ```
pub fn psnr(reference: &[f64], candidate: &[f64]) -> f64 {
    let e = mse(reference, candidate);
    if e == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (255.0 * 255.0 / e).log10()
}

/// PSNR between two images of identical dimensions.
///
/// # Panics
///
/// Panics if the image dimensions differ.
pub fn psnr_images(reference: &GrayImage, candidate: &GrayImage) -> f64 {
    assert_eq!(reference.width(), candidate.width(), "width mismatch");
    assert_eq!(reference.height(), candidate.height(), "height mismatch");
    psnr(reference.pixels(), candidate.pixels())
}

/// L2 relative error `‖ref − cand‖₂ / ‖ref‖₂` — the "relative error"
/// metric used for N-Body and BlackScholes (lower is better).
///
/// Returns 0 for identical signals. If the reference has zero norm the
/// candidate norm is returned (absolute error fallback).
///
/// ```
/// use scorpio_quality::relative_error_l2;
/// assert_eq!(relative_error_l2(&[3.0, 4.0], &[3.0, 4.0]), 0.0);
/// assert!((relative_error_l2(&[3.0, 4.0], &[3.0, 4.1]) - 0.02).abs() < 1e-12);
/// ```
pub fn relative_error_l2(reference: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "relative_error_l2: signal lengths differ"
    );
    let err: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c) * (r - c))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = reference.iter().map(|r| r * r).sum::<f64>().sqrt();
    if norm == 0.0 {
        err
    } else {
        err / norm
    }
}

/// Mean per-element relative error `mean(|ref − cand| / max(|ref|, ε))`,
/// an alternative scalar-quality metric robust to near-zero entries.
///
/// ```
/// use scorpio_quality::mean_relative_error;
/// let e = mean_relative_error(&[2.0, 4.0], &[2.2, 4.0]);
/// assert!((e - 0.05).abs() < 1e-12);
/// ```
pub fn mean_relative_error(reference: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "mean_relative_error: signal lengths differ"
    );
    assert!(!reference.is_empty(), "mean_relative_error: empty signals");
    let eps = 1e-12;
    let sum: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c).abs() / r.abs().max(eps))
        .sum();
    sum / reference.len() as f64
}

/// Maximum absolute error between two signals.
///
/// ```
/// use scorpio_quality::max_abs_error;
/// assert_eq!(max_abs_error(&[1.0, 2.0], &[1.5, 2.25]), 0.5);
/// ```
pub fn max_abs_error(reference: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(
        reference.len(),
        candidate.len(),
        "max_abs_error: signal lengths differ"
    );
    reference
        .iter()
        .zip(candidate)
        .map(|(r, c)| (r - c).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(mse(&[0.0], &[2.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 1 → PSNR = 10·log10(255²) ≈ 48.13 dB.
        let reference = [0.0; 100];
        let candidate = [1.0; 100];
        let p = psnr(&reference, &candidate);
        assert!((p - 48.1308).abs() < 1e-3);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let reference: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let small: Vec<f64> = reference.iter().map(|r| r + 0.5).collect();
        let large: Vec<f64> = reference.iter().map(|r| r + 5.0).collect();
        assert!(psnr(&reference, &small) > psnr(&reference, &large));
    }

    #[test]
    fn psnr_images_checks_dims() {
        let a = GrayImage::new(2, 2);
        let b = GrayImage::new(2, 2);
        assert_eq!(psnr_images(&a, &b), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn psnr_images_dim_mismatch_panics() {
        let a = GrayImage::new(2, 2);
        let b = GrayImage::new(3, 2);
        let _ = psnr_images(&a, &b);
    }

    #[test]
    fn relative_error_zero_reference() {
        assert_eq!(relative_error_l2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn mean_relative_error_protects_small_denominators() {
        let e = mean_relative_error(&[0.0], &[1e-13]);
        assert!(e.is_finite());
    }

    #[test]
    fn max_abs_error_picks_maximum() {
        assert_eq!(max_abs_error(&[0.0, 0.0, 0.0], &[0.1, -0.7, 0.3]), 0.7);
    }
}
