//! Quality metrics and image substrate for the benchmark suite.
//!
//! §4.3 of the CGO'16 paper evaluates output quality with **PSNR** (Sobel,
//! DCT, Fisheye — "higher is better, logarithmic") and **relative error**
//! (N-Body, BlackScholes — "lower is better"), always with respect to the
//! fully accurate execution of the same input. This crate provides those
//! metrics, a minimal grayscale image type the image kernels operate on,
//! PGM import/export for eyeballing results, and deterministic synthetic
//! image generators standing in for the image-compression benchmark set
//! the paper uses (its ref. 5); see DESIGN.md §5 for why synthetic inputs
//! preserve the evaluation's behaviour.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod image;
mod metrics;
mod ssim;
mod synth;

pub use image::{GrayImage, ImageError};
pub use metrics::{max_abs_error, mean_relative_error, mse, psnr, psnr_images, relative_error_l2};
pub use ssim::ssim;
pub use synth::{checkerboard, gaussian_blobs, gradient, value_noise, SyntheticImage};
