//! Deterministic synthetic test images.
//!
//! The paper runs its image kernels on a published image-compression
//! benchmark set (the paper's ref. 5); those photos are not redistributable, so we
//! generate structurally varied synthetic inputs instead: gradients
//! (smooth regions), checkerboards (hard edges — the Sobel stressor),
//! Gaussian blobs (soft features) and value noise (broadband texture).
//! Significance analysis only depends on the declared *input ranges*, and
//! all quality comparisons are self-relative, so the substitution
//! preserves the evaluation's behaviour (see DESIGN.md §5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::image::GrayImage;

/// The synthetic image families available to workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticImage {
    /// Smooth diagonal gradient.
    Gradient,
    /// High-contrast checkerboard with 16-pixel cells.
    Checkerboard,
    /// Sum of a few Gaussian intensity blobs.
    GaussianBlobs,
    /// Smooth value noise (seeded, deterministic).
    ValueNoise,
}

impl SyntheticImage {
    /// Renders this family at the given dimensions with a deterministic
    /// seed.
    pub fn render(self, width: usize, height: usize, seed: u64) -> GrayImage {
        match self {
            SyntheticImage::Gradient => gradient(width, height),
            SyntheticImage::Checkerboard => checkerboard(width, height, 16),
            SyntheticImage::GaussianBlobs => gaussian_blobs(width, height, seed),
            SyntheticImage::ValueNoise => value_noise(width, height, seed),
        }
    }

    /// All families, for sweeps over the whole set.
    pub fn all() -> [SyntheticImage; 4] {
        [
            SyntheticImage::Gradient,
            SyntheticImage::Checkerboard,
            SyntheticImage::GaussianBlobs,
            SyntheticImage::ValueNoise,
        ]
    }
}

/// Smooth diagonal gradient covering the full `[0, 255]` range.
///
/// ```
/// use scorpio_quality::gradient;
/// let img = gradient(64, 64);
/// assert_eq!(img.get(0, 0), 0.0);
/// assert!(img.get(63, 63) > 250.0);
/// ```
pub fn gradient(width: usize, height: usize) -> GrayImage {
    GrayImage::from_fn(width, height, |x, y| {
        255.0 * (x + y) as f64 / (width + height - 2).max(1) as f64
    })
}

/// Checkerboard with `cell`-pixel squares alternating 16 and 240 — hard
/// edges in both directions, the worst case for edge-detection
/// approximation.
///
/// # Panics
///
/// Panics if `cell == 0`.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> GrayImage {
    assert!(cell > 0, "checkerboard: cell size must be positive");
    GrayImage::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)).is_multiple_of(2) {
            16.0
        } else {
            240.0
        }
    })
}

/// Sum of eight Gaussian intensity blobs at seeded random positions.
pub fn gaussian_blobs(width: usize, height: usize, seed: u64) -> GrayImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let blobs: Vec<(f64, f64, f64, f64)> = (0..8)
        .map(|_| {
            (
                rng.gen_range(0.0..width as f64),
                rng.gen_range(0.0..height as f64),
                rng.gen_range(width as f64 / 16.0..width as f64 / 4.0),
                rng.gen_range(80.0..255.0),
            )
        })
        .collect();
    GrayImage::from_fn(width, height, |x, y| {
        let v: f64 = blobs
            .iter()
            .map(|&(cx, cy, sigma, amp)| {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                amp * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp()
            })
            .sum();
        v.min(255.0)
    })
}

/// Smooth value noise: bilinear interpolation of a seeded 17×17 lattice of
/// random values, rescaled to `[0, 255]`.
pub fn value_noise(width: usize, height: usize, seed: u64) -> GrayImage {
    const LATTICE: usize = 17;
    let mut rng = StdRng::seed_from_u64(seed);
    let lattice: Vec<f64> = (0..LATTICE * LATTICE)
        .map(|_| rng.gen_range(0.0..1.0))
        .collect();
    let at = |i: usize, j: usize| lattice[j.min(LATTICE - 1) * LATTICE + i.min(LATTICE - 1)];
    GrayImage::from_fn(width, height, |x, y| {
        let fx = x as f64 / width as f64 * (LATTICE - 1) as f64;
        let fy = y as f64 / height as f64 * (LATTICE - 1) as f64;
        let (i, j) = (fx as usize, fy as usize);
        let (tx, ty) = (fx - i as f64, fy - j as f64);
        let v = at(i, j) * (1.0 - tx) * (1.0 - ty)
            + at(i + 1, j) * tx * (1.0 - ty)
            + at(i, j + 1) * (1.0 - tx) * ty
            + at(i + 1, j + 1) * tx * ty;
        v * 255.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_is_monotone_diagonal() {
        let img = gradient(32, 32);
        for d in 1..32 {
            assert!(img.get(d, d) >= img.get(d - 1, d - 1));
        }
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(64, 64, 16);
        assert_eq!(img.get(0, 0), 16.0);
        assert_eq!(img.get(16, 0), 240.0);
        assert_eq!(img.get(16, 16), 16.0);
    }

    #[test]
    fn blobs_in_range_and_deterministic() {
        let a = gaussian_blobs(48, 48, 42);
        let b = gaussian_blobs(48, 48, 42);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&p| (0.0..=255.0).contains(&p)));
        // A different seed produces a different image.
        let c = gaussian_blobs(48, 48, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn value_noise_in_range_and_deterministic() {
        let a = value_noise(64, 48, 7);
        let b = value_noise(64, 48, 7);
        assert_eq!(a, b);
        assert!(a.pixels().iter().all(|&p| (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn render_dispatch() {
        for family in SyntheticImage::all() {
            let img = family.render(16, 16, 1);
            assert_eq!(img.width(), 16);
            assert_eq!(img.height(), 16);
        }
    }
}
