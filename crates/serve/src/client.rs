//! A small blocking client for the serve protocol.
//!
//! One request out, one response line back, per call — exactly the
//! per-connection ordering the server guarantees. Used by the
//! `scorpio_load` generator, the round-trip integration test and the
//! verify smoke; library users talking to a server from Rust can use
//! it too:
//!
//! ```no_run
//! use scorpio_serve::Client;
//!
//! let mut client = Client::connect("127.0.0.1:7070").unwrap();
//! let reply = client
//!     .request(r#"{"id":1,"kernel":"maclaurin","n":8,"items":[0.3]}"#)
//!     .unwrap();
//! assert_eq!(reply.get("ok").and_then(|v| v.as_f64()), None); // ok is a bool
//! ```

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use scorpio_obs::json::{self, Value};

/// A blocking serve-protocol connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            pending: Vec::new(),
        })
    }

    /// Sends one request line and returns the raw response line.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a closed connection surfaces as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request_raw(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.read_line()
    }

    /// Sends one request line and parses the response.
    ///
    /// # Errors
    ///
    /// I/O failures as [`Client::request_raw`]; an unparsable response
    /// surfaces as [`io::ErrorKind::InvalidData`].
    pub fn request(&mut self, line: &str) -> io::Result<Value> {
        let response = self.request_raw(line)?;
        json::parse(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Fetches the server's stats block.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self) -> io::Result<Value> {
        self.request(r#"{"cmd":"stats"}"#)
    }

    /// Drops every cached compiled trace server-side.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn cache_clear(&mut self) -> io::Result<Value> {
        self.request(r#"{"cmd":"cache_clear"}"#)
    }

    /// Fetches the Prometheus text exposition (the `metrics` verb) and
    /// returns its body.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; a reply without a `body` string
    /// surfaces as [`io::ErrorKind::InvalidData`].
    pub fn metrics(&mut self) -> io::Result<String> {
        let v = self.request(r#"{"cmd":"metrics"}"#)?;
        v.get("body")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "metrics reply without body")
            })
    }

    /// Fetches the per-kernel sliding-window SLO snapshots.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn window(&mut self) -> io::Result<Value> {
        self.request(r#"{"cmd":"window"}"#)
    }

    /// Fetches the tail-retained slow/error exemplars.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn exemplars(&mut self) -> io::Result<Value> {
        self.request(r#"{"cmd":"exemplars"}"#)
    }

    /// Asks the server to shut down (it replies, then stops accepting).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Value> {
        self.request(r#"{"cmd":"shutdown"}"#)
    }

    /// Reads bytes until the next newline, buffering any overshoot for
    /// the following call.
    fn read_line(&mut self) -> io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                return String::from_utf8(line[..pos].to_vec())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }
}
