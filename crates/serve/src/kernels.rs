//! The served kernel catalogue.
//!
//! Each serve request names one of the five paper kernels plus its
//! structural parameters and a batch of items. This module turns the
//! parsed JSON into a typed [`KernelRequest`], derives the **shape
//! key** the compiled-tape cache is keyed on, and executes the batch
//! through a [`ReplayOrRecord`] driver over the public
//! `register_*`/`*_inputs` pairs the kernel crate exports.
//!
//! # Shape keys
//!
//! A compiled trace replays correctly only for requests whose trace
//! *structure* matches; everything that is baked into the trace as a
//! constant (rather than flowing through a positional input) must be
//! part of the key:
//!
//! * `fisheye` — the lens focal length and image centre are trace
//!   constants, so the key hashes `(width, height)`; the per-pixel
//!   coordinates are replayable inputs.
//! * `maclaurin` — the series length `n` decides the trace length, so
//!   it *is* the key; `x₀` is a replayable input.
//! * `blackscholes`, `dct`, `nbody` — every varying value flows
//!   through positional inputs, so each has a single constant key.
//!
//! An incorrect key cannot corrupt results — the driver's own keyed
//! guards degrade a mismatch to a fresh recording — but a missing key
//! component would silently disable caching, so each kernel's key is
//! spelled out here next to its registration closure.

use scorpio_core::{
    Analysis, AnalysisArena, AnalysisError, Ctx, LaneScratch, Report, ReplayOrRecord,
    VarSignificances, DEFAULT_LANES,
};
use scorpio_kernels::blackscholes::{self, Option_};
use scorpio_kernels::dct::{self, BLOCK};
use scorpio_kernels::fisheye::{self, Lens};
use scorpio_kernels::{maclaurin, nbody};
use scorpio_obs::json::Value;

/// Names of the served kernels, in catalogue order (the order stats
/// responses and per-kernel counters use).
pub const KERNEL_NAMES: [&str; 5] = ["fisheye", "blackscholes", "dct", "maclaurin", "nbody"];

/// Catalogue index of `name`, if it names a served kernel.
pub fn kernel_index(name: &str) -> Option<usize> {
    KERNEL_NAMES.iter().position(|&k| k == name)
}

/// One parsed analyze request: the kernel, its structural parameters
/// and the item batch.
#[derive(Debug, Clone)]
pub enum KernelRequest {
    /// Fisheye InverseMapping pixels on a `width × height` image.
    Fisheye {
        /// Image width the lens is fitted to.
        width: usize,
        /// Image height the lens is fitted to.
        height: usize,
        /// `(u, v)` pixel coordinates to analyse.
        items: Vec<(f64, f64)>,
    },
    /// Black–Scholes option pricing.
    Blackscholes {
        /// Options to analyse (the `call` flag defaults to `true`; the
        /// analysis traces the call-branch block structure either way).
        items: Vec<Option_>,
    },
    /// 8×8 DCT blocks.
    Dct {
        /// Per-pixel input-box radius.
        radius: f64,
        /// Row-major 64-pixel blocks.
        items: Vec<[[f64; BLOCK]; BLOCK]>,
    },
    /// Maclaurin series of §3.
    Maclaurin {
        /// Series length (trace-structural: part of the shape key).
        n: usize,
        /// Expansion points `x₀`.
        items: Vec<f64>,
    },
    /// Lennard-Jones pair force.
    Nbody {
        /// `(r0, radius)` separations to analyse.
        items: Vec<(f64, f64)>,
    },
}

/// splitmix64 finalizer — the same mixer the audit fuzzer's
/// [`SplitMix64`](scorpio_core::audit::SplitMix64) stream uses, applied
/// here to spread low-entropy structural parameters over the key space.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Reads a required finite number field.
fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .filter(|x| x.is_finite())
        .ok_or_else(|| format!("missing or non-numeric field \"{key}\""))
}

/// Reads an optional number field, defaulting to `default`.
fn num_field_or(v: &Value, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => x
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("non-numeric field \"{key}\"")),
    }
}

/// Reads a required non-negative integer field.
fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    let x = num_field(v, key)?;
    if x < 0.0 || x.fract() != 0.0 || x > u32::MAX as f64 {
        return Err(format!("field \"{key}\" must be a small non-negative integer"));
    }
    Ok(x as usize)
}

impl KernelRequest {
    /// Parses the kernel-specific part of an analyze request (the
    /// `kernel` field plus its parameters and `items`).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field; the server
    /// echoes it verbatim in the error reply.
    pub fn from_value(v: &Value) -> Result<KernelRequest, String> {
        let kernel = v
            .get("kernel")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"kernel\" field".to_string())?;
        let items = v
            .get("items")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing \"items\" array".to_string())?;
        if items.is_empty() {
            return Err("\"items\" must not be empty".to_string());
        }
        match kernel {
            "fisheye" => {
                let width = usize_field(v, "width")?;
                let height = usize_field(v, "height")?;
                if width == 0 || height == 0 {
                    return Err("fisheye image must be non-empty".to_string());
                }
                let items = items
                    .iter()
                    .map(|it| Ok((num_field(it, "u")?, num_field(it, "v")?)))
                    .collect::<Result<_, String>>()?;
                Ok(KernelRequest::Fisheye {
                    width,
                    height,
                    items,
                })
            }
            "blackscholes" => {
                let items = items
                    .iter()
                    .map(|it| {
                        Ok(Option_ {
                            spot: num_field(it, "spot")?,
                            strike: num_field(it, "strike")?,
                            rate: num_field(it, "rate")?,
                            volatility: num_field(it, "volatility")?,
                            time: num_field(it, "time")?,
                            call: true,
                        })
                    })
                    .collect::<Result<_, String>>()?;
                Ok(KernelRequest::Blackscholes { items })
            }
            "dct" => {
                let radius = num_field_or(v, "radius", 1.0)?;
                let items = items
                    .iter()
                    .map(|it| {
                        let pixels = it
                            .as_arr()
                            .filter(|a| a.len() == BLOCK * BLOCK)
                            .ok_or_else(|| {
                                format!("each dct item must be an array of {} pixels", BLOCK * BLOCK)
                            })?;
                        let mut block = [[0.0; BLOCK]; BLOCK];
                        for (i, p) in pixels.iter().enumerate() {
                            block[i / BLOCK][i % BLOCK] = p
                                .as_f64()
                                .filter(|x| x.is_finite())
                                .ok_or_else(|| "non-numeric dct pixel".to_string())?;
                        }
                        Ok(block)
                    })
                    .collect::<Result<_, String>>()?;
                Ok(KernelRequest::Dct { radius, items })
            }
            "maclaurin" => {
                let n = usize_field(v, "n")?;
                if n == 0 || n > 4096 {
                    return Err("maclaurin \"n\" must be in 1..=4096".to_string());
                }
                let items = items
                    .iter()
                    .map(|it| {
                        it.as_f64()
                            .filter(|x| x.is_finite())
                            .ok_or_else(|| "each maclaurin item must be a number x0".to_string())
                    })
                    .collect::<Result<_, String>>()?;
                Ok(KernelRequest::Maclaurin { n, items })
            }
            "nbody" => {
                let items = items
                    .iter()
                    .map(|it| Ok((num_field(it, "r0")?, num_field(it, "radius")?)))
                    .collect::<Result<_, String>>()?;
                Ok(KernelRequest::Nbody { items })
            }
            other => Err(format!("unknown kernel \"{other}\"")),
        }
    }

    /// The kernel's catalogue name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelRequest::Fisheye { .. } => "fisheye",
            KernelRequest::Blackscholes { .. } => "blackscholes",
            KernelRequest::Dct { .. } => "dct",
            KernelRequest::Maclaurin { .. } => "maclaurin",
            KernelRequest::Nbody { .. } => "nbody",
        }
    }

    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        match self {
            KernelRequest::Fisheye { items, .. } => items.len(),
            KernelRequest::Blackscholes { items } => items.len(),
            KernelRequest::Dct { items, .. } => items.len(),
            KernelRequest::Maclaurin { items, .. } => items.len(),
            KernelRequest::Nbody { items } => items.len(),
        }
    }

    /// `true` when the batch has no items (rejected at parse time, so
    /// never observed on the execution path).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache shape key (see the [module docs](self) for what each
    /// kernel must include and why).
    pub fn shape_key(&self) -> u64 {
        match self {
            KernelRequest::Fisheye { width, height, .. } => {
                mix(mix(*width as u64) ^ (*height as u64))
            }
            KernelRequest::Blackscholes { .. } => 0,
            KernelRequest::Dct { .. } => 0,
            KernelRequest::Maclaurin { n, .. } => *n as u64,
            KernelRequest::Nbody { .. } => 0,
        }
    }

    /// Runs the batch in variables-only detail (skips the significance
    /// graph; the serve default), chunking items at
    /// [`DEFAULT_LANES`] granularity so full blocks take one walk of
    /// the compiled op stream.
    ///
    /// # Errors
    ///
    /// Propagates the first failing item's [`AnalysisError`].
    pub fn run_vars(
        &self,
        driver: &mut ReplayOrRecord,
        arena: &mut AnalysisArena,
        lanes: &mut LaneScratch<DEFAULT_LANES>,
    ) -> Result<Vec<VarSignificances>, AnalysisError> {
        let key = self.shape_key();
        let mut out = Vec::with_capacity(self.len());
        match self {
            KernelRequest::Fisheye {
                width,
                height,
                items,
            } => {
                let lens = Lens::for_image(*width, *height);
                for block in items.chunks(DEFAULT_LANES) {
                    driver.run_keyed_vars_lanes_in(
                        key,
                        arena,
                        lanes,
                        block,
                        &|&(u, v)| fisheye::inverse_mapping_inputs(&lens, u, v),
                        &|ctx, &(u, v)| fisheye::register_inverse_mapping(ctx, &lens, u, v),
                        &mut out,
                    )?;
                }
            }
            KernelRequest::Blackscholes { items } => {
                for block in items.chunks(DEFAULT_LANES) {
                    driver.run_keyed_vars_lanes_in(
                        key,
                        arena,
                        lanes,
                        block,
                        &blackscholes::option_inputs,
                        &|ctx, o| blackscholes::register_option(ctx, o),
                        &mut out,
                    )?;
                }
            }
            KernelRequest::Dct { radius, items } => {
                for block in items.chunks(DEFAULT_LANES) {
                    driver.run_keyed_vars_lanes_in(
                        key,
                        arena,
                        lanes,
                        block,
                        &|b| dct::block_inputs(b, *radius),
                        &|ctx, b| dct::register_block(ctx, b, *radius),
                        &mut out,
                    )?;
                }
            }
            KernelRequest::Maclaurin { n, items } => {
                for block in items.chunks(DEFAULT_LANES) {
                    driver.run_keyed_vars_lanes_in(
                        key,
                        arena,
                        lanes,
                        block,
                        &|&x0| maclaurin::series_inputs(x0),
                        &|ctx, &x0| maclaurin::register_series(ctx, x0, *n),
                        &mut out,
                    )?;
                }
            }
            KernelRequest::Nbody { items } => {
                for block in items.chunks(DEFAULT_LANES) {
                    driver.run_keyed_vars_lanes_in(
                        key,
                        arena,
                        lanes,
                        block,
                        &|&(r0, radius)| nbody::pair_inputs(r0, radius),
                        &|ctx, &(r0, radius)| nbody::register_pair(ctx, r0, radius),
                        &mut out,
                    )?;
                }
            }
        }
        Ok(out)
    }

    /// Runs the batch in full detail (complete [`Report`]s including
    /// the node-level significance graph), one keyed replay per item.
    ///
    /// # Errors
    ///
    /// Propagates the first failing item's [`AnalysisError`].
    pub fn run_full(
        &self,
        driver: &mut ReplayOrRecord,
        arena: &mut AnalysisArena,
    ) -> Result<Vec<Report>, AnalysisError> {
        let key = self.shape_key();
        let mut out = Vec::with_capacity(self.len());
        match self {
            KernelRequest::Fisheye {
                width,
                height,
                items,
            } => {
                let lens = Lens::for_image(*width, *height);
                for &(u, v) in items {
                    let inputs = fisheye::inverse_mapping_inputs(&lens, u, v);
                    out.push(driver.run_keyed_in(key, arena, &inputs, |ctx| {
                        fisheye::register_inverse_mapping(ctx, &lens, u, v)
                    })?);
                }
            }
            KernelRequest::Blackscholes { items } => {
                for o in items {
                    let inputs = blackscholes::option_inputs(o);
                    out.push(driver.run_keyed_in(key, arena, &inputs, |ctx| {
                        blackscholes::register_option(ctx, o)
                    })?);
                }
            }
            KernelRequest::Dct { radius, items } => {
                for b in items {
                    let inputs = dct::block_inputs(b, *radius);
                    out.push(driver.run_keyed_in(key, arena, &inputs, |ctx| {
                        dct::register_block(ctx, b, *radius)
                    })?);
                }
            }
            KernelRequest::Maclaurin { n, items } => {
                for &x0 in items {
                    let inputs = maclaurin::series_inputs(x0);
                    out.push(driver.run_keyed_in(key, arena, &inputs, |ctx| {
                        maclaurin::register_series(ctx, x0, *n)
                    })?);
                }
            }
            KernelRequest::Nbody { items } => {
                for &(r0, radius) in items {
                    let inputs = nbody::pair_inputs(r0, radius);
                    out.push(driver.run_keyed_in(key, arena, &inputs, |ctx| {
                        nbody::register_pair(ctx, r0, radius)
                    })?);
                }
            }
        }
        Ok(out)
    }

    /// Runs the batch as direct, replay-free library calls — one fresh
    /// [`Analysis`] recording per item, exactly what a caller linking
    /// the library would compute. The round-trip test compares served
    /// reports against these bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the first failing item's [`AnalysisError`].
    pub fn direct_reports(&self) -> Result<Vec<Report>, AnalysisError> {
        let run = |f: &dyn Fn(&Ctx<'_>) -> Result<(), AnalysisError>| Analysis::new().run(f);
        match self {
            KernelRequest::Fisheye {
                width,
                height,
                items,
            } => {
                let lens = Lens::for_image(*width, *height);
                items
                    .iter()
                    .map(|&(u, v)| {
                        run(&|ctx| fisheye::register_inverse_mapping(ctx, &lens, u, v))
                    })
                    .collect()
            }
            KernelRequest::Blackscholes { items } => items
                .iter()
                .map(|o| run(&|ctx| blackscholes::register_option(ctx, o)))
                .collect(),
            KernelRequest::Dct { radius, items } => items
                .iter()
                .map(|b| run(&|ctx| dct::register_block(ctx, b, *radius)))
                .collect(),
            KernelRequest::Maclaurin { n, items } => items
                .iter()
                .map(|&x0| run(&|ctx| maclaurin::register_series(ctx, x0, *n)))
                .collect(),
            KernelRequest::Nbody { items } => items
                .iter()
                .map(|&(r0, radius)| run(&|ctx| nbody::register_pair(ctx, r0, radius)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio_obs::json::parse;

    #[test]
    fn parse_rejects_bad_requests() {
        let cases = [
            (r#"{"cmd":"analyze"}"#, "kernel"),
            (r#"{"kernel":"warp","items":[1]}"#, "unknown kernel"),
            (r#"{"kernel":"maclaurin","n":4,"items":[]}"#, "empty"),
            (r#"{"kernel":"maclaurin","items":[0.5]}"#, "\"n\""),
            (r#"{"kernel":"maclaurin","n":4,"items":["x"]}"#, "number"),
            (r#"{"kernel":"fisheye","width":0,"height":8,"items":[{"u":1,"v":1}]}"#, "non-empty"),
            (r#"{"kernel":"dct","items":[[1,2,3]]}"#, "64"),
        ];
        for (line, needle) in cases {
            let v = parse(line).unwrap();
            let err = KernelRequest::from_value(&v).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn shape_keys_separate_structural_variants() {
        let req = |line: &str| KernelRequest::from_value(&parse(line).unwrap()).unwrap();
        let a = req(r#"{"kernel":"maclaurin","n":4,"items":[0.5]}"#);
        let b = req(r#"{"kernel":"maclaurin","n":5,"items":[0.5]}"#);
        assert_ne!(a.shape_key(), b.shape_key());
        let c = req(r#"{"kernel":"fisheye","width":64,"height":64,"items":[{"u":1,"v":2}]}"#);
        let d = req(r#"{"kernel":"fisheye","width":64,"height":32,"items":[{"u":1,"v":2}]}"#);
        assert_ne!(c.shape_key(), d.shape_key());
        // Item values must NOT affect the key: same shape ⇒ same trace.
        let e = req(r#"{"kernel":"fisheye","width":64,"height":64,"items":[{"u":9,"v":9}]}"#);
        assert_eq!(c.shape_key(), e.shape_key());
    }

    #[test]
    fn replayed_batch_is_bit_identical_to_direct_calls() {
        let req = KernelRequest::Maclaurin {
            n: 8,
            items: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        };
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let full = req.run_full(&mut driver, &mut arena).unwrap();
        let direct = req.direct_reports().unwrap();
        assert_eq!(full.len(), direct.len());
        for (a, b) in full.iter().zip(&direct) {
            assert_eq!(
                scorpio_obs::json::to_string(&a.to_record()),
                scorpio_obs::json::to_string(&b.to_record())
            );
        }
        assert!(driver.stats().replays > 0, "batch must replay after item 1");
    }

    #[test]
    fn vars_rows_match_full_reports() {
        // 9 items: the first block of 4 is warm-up (records scalar),
        // the second full block replays as one lane sweep, the ninth
        // item is scalar remainder.
        let req = KernelRequest::Nbody {
            items: (0..9)
                .map(|i| (1.0 + 0.12 * i as f64, 0.01 + 0.005 * i as f64))
                .collect(),
        };
        let mut driver = ReplayOrRecord::new(Analysis::new());
        let mut arena = AnalysisArena::new();
        let mut lanes = LaneScratch::new();
        let vars = req.run_vars(&mut driver, &mut arena, &mut lanes).unwrap();
        let direct = req.direct_reports().unwrap();
        for (v, r) in vars.iter().zip(&direct) {
            assert_eq!(
                v.output_significance_raw().to_bits(),
                r.output_significance_raw().to_bits()
            );
            for (a, b) in v.registered().iter().zip(r.registered()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.significance.to_bits(), b.significance.to_bits());
            }
        }
        assert!(driver.stats().lane_blocks >= 1, "full block must use lanes");
    }
}
