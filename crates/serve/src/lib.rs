//! Analysis-as-a-service: a persistent significance-analysis server.
//!
//! Every harness binary in this workspace is one-shot: it pays the
//! record+compile cost of every kernel trace on every invocation. The
//! runtime of the source paper is the opposite — a long-lived system
//! that amortizes analysis across repeated task submissions. This crate
//! closes that gap with a TCP server speaking newline-delimited JSON
//! (one request object per line, one response object per line) that
//! keeps compiled traces alive *across* requests, connections and
//! worker threads:
//!
//! * [`protocol`] — the wire format: requests parsed with
//!   [`scorpio_obs::json`], responses serialized with the same
//!   serde-backed writer the run manifests use (so served reports are
//!   byte-comparable with [`scorpio_core::Report::to_json`] output).
//! * [`kernels`] — the served kernel catalogue (fisheye, blackscholes,
//!   dct, maclaurin, nbody): per-kernel request parsing, shape keys and
//!   replay-driver execution over the public `register_*`/`*_inputs`
//!   pairs the kernel crate exports.
//! * [`server`] — the accept loop, the fixed worker pool (one
//!   [`AnalysisArena`](scorpio_core::AnalysisArena) +
//!   [`LaneScratch`](scorpio_core::LaneScratch) per worker) and the
//!   shared [`TapeCache`](scorpio_core::TapeCache): a request whose
//!   `(kernel, shape_key)` was served before — by *any* worker —
//!   installs the cached [`CompiledTrace`](scorpio_core::CompiledTrace)
//!   and replays without recording.
//! * [`client`] — a small blocking client used by the load generator,
//!   the integration tests and the verify smoke.
//!
//! The server is deliberately `std::net`-only: the build environment
//! has no crate registry, and the request rate the analysis itself can
//! sustain (micro- to milliseconds per item) makes thread-per-connection
//! plus a bounded worker pool the right tool anyway.
//!
//! # Protocol at a glance
//!
//! ```json
//! {"id":1,"cmd":"analyze","kernel":"maclaurin","n":12,"ratio":0.5,"items":[0.3,0.4]}
//! {"id":1,"ok":true,"kernel":"maclaurin","cached":true,"server_ns":180000,"tasks":[...],"reports":[...]}
//! ```
//!
//! Control commands: `{"cmd":"stats"}`, `{"cmd":"cache_clear"}`,
//! `{"cmd":"shutdown"}` (the latter also writes the run manifest,
//! making server lifecycles deterministic in tests and benchmarks).
//!
//! # Live observability
//!
//! The server is observable *while it runs* (see
//! `docs/architecture.md` §live observability):
//!
//! * every analyze request carries a **trace id** (client-supplied or
//!   server-generated) stamped onto all spans and task events it
//!   emits; the [`exemplar`] ring tail-retains the slowest and all
//!   failed requests' complete span trees, dumpable live with
//!   `{"cmd":"exemplars"}`;
//! * `{"cmd":"metrics"}` renders the metrics registry, cache/replay
//!   gauges and sliding windows as Prometheus text exposition — the
//!   same body an optional read-only HTTP **sidecar listener**
//!   ([`ServerConfig::metrics_addr`]) serves to scrapers;
//! * `{"cmd":"window"}` reports per-kernel sliding-window SLO
//!   telemetry (request/error rate, latency quantiles, cache hit
//!   rate, achieved-vs-requested ratio over the last 10s/1m/5m) from
//!   [`scorpio_obs::SlidingWindow`] aggregators that are always on —
//!   their cost is a handful of adds under a per-second mutex, and
//!   the `bench_obs` ablation pins the total observability overhead.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod exemplar;
pub mod kernels;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use exemplar::{Exemplar, ExemplarRing};
pub use kernels::KernelRequest;
pub use protocol::{AnalyzeRequest, Command, Detail, Request};
pub use server::{Server, ServerConfig, ServerSummary};
