//! The newline-delimited JSON wire format.
//!
//! One request object per line, one response object per line, in
//! request order per connection. Requests are parsed with
//! [`scorpio_obs::json::parse`]; responses are serde structs rendered
//! by [`scorpio_obs::json::to_string`] — the same writer
//! [`Report::to_json`](scorpio_core::Report::to_json) uses, so a
//! served [`ReportRecord`] is byte-identical to the record a direct
//! library call would serialize (the property the round-trip test
//! pins).
//!
//! # Requests
//!
//! ```json
//! {"id":7,"cmd":"analyze","kernel":"fisheye","width":64,"height":64,
//!  "ratio":0.5,"detail":"vars","items":[{"u":3,"v":9},{"u":60,"v":60}]}
//! {"id":8,"cmd":"stats"}
//! {"id":9,"cmd":"cache_clear"}
//! {"id":10,"cmd":"shutdown"}
//! ```
//!
//! `cmd` defaults to `"analyze"`, `ratio` to `1.0`, `detail` to
//! `"vars"` (`"full"` adds the node-level significance graph to each
//! report). Kernel parameters are documented in [`crate::kernels`].
//!
//! # Responses
//!
//! Every response carries the request's `id` and an `ok` flag; errors
//! (malformed JSON, unknown kernel/command, analysis failures) answer
//! `{"id":N,"ok":false,"error":"..."}` on the same connection without
//! closing it.

use scorpio_core::{ReportRecord, VarRecord, VarSignificances};
use scorpio_obs::json::{self, Value};
use serde::Serialize;

use crate::kernels::KernelRequest;

/// How much of the analysis result a request wants back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// Registered-variable rows only (skips building the significance
    /// graph — the fast path and the default).
    Vars,
    /// Full reports including the node-level graph records.
    Full,
}

/// One parsed analyze command.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// The kernel batch to run.
    pub kernel: KernelRequest,
    /// Requested taskwait ratio in `[0, 1]`: the fraction of the
    /// batch's tasks classified (and event-logged) as accurate, ranked
    /// by per-item output significance.
    pub ratio: f64,
    /// Result detail level.
    pub detail: Detail,
}

/// The commands a request line can carry.
#[derive(Debug, Clone)]
pub enum Command {
    /// Run a kernel batch.
    Analyze(AnalyzeRequest),
    /// Report server/cache/replay statistics.
    Stats,
    /// Drop every cached compiled trace (the cold-cache ablation knob).
    CacheClear,
    /// Stop the server after replying (deterministic lifecycle for
    /// tests and benchmarks; also writes the run manifest).
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the response (defaults to 0).
    pub id: u64,
    /// The command to execute.
    pub cmd: Command,
}

/// A parse failure, keeping the best-effort request id so the error
/// reply still correlates with the request that caused it.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// The request's id if one could be read, else 0.
    pub id: u64,
    /// Human-readable description, echoed in the error reply.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseError`] with a message naming what was wrong; the connection
/// stays usable.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let v = json::parse(line).map_err(|e| ParseError {
        id: 0,
        message: format!("malformed JSON: {e}"),
    })?;
    let id = v
        .get("id")
        .and_then(Value::as_f64)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .map(|x| x as u64)
        .unwrap_or(0);
    let fail = |message: String| ParseError { id, message };
    let cmd = match v.get("cmd").and_then(Value::as_str).unwrap_or("analyze") {
        "analyze" => {
            let kernel = KernelRequest::from_value(&v).map_err(&fail)?;
            let ratio = match v.get("ratio") {
                None | Some(Value::Null) => 1.0,
                Some(x) => x
                    .as_f64()
                    .filter(|r| r.is_finite() && (0.0..=1.0).contains(r))
                    .ok_or_else(|| fail("\"ratio\" must be a number in [0, 1]".to_string()))?,
            };
            let detail = match v.get("detail").and_then(Value::as_str).unwrap_or("vars") {
                "vars" => Detail::Vars,
                "full" => Detail::Full,
                other => {
                    return Err(fail(format!(
                        "unknown detail \"{other}\" (expected \"vars\" or \"full\")"
                    )))
                }
            };
            Command::Analyze(AnalyzeRequest {
                kernel,
                ratio,
                detail,
            })
        }
        "stats" => Command::Stats,
        "cache_clear" => Command::CacheClear,
        "shutdown" => Command::Shutdown,
        other => return Err(fail(format!("unknown cmd \"{other}\""))),
    };
    Ok(Request { id, cmd })
}

/// Per-task classification row of an analyze response: how the
/// requested taskwait ratio ranked this item.
#[derive(Debug, Clone, Serialize)]
pub struct TaskRecord {
    /// Item index within the request batch.
    pub task_id: u64,
    /// The item's raw output significance (the ranking key).
    pub significance: f64,
    /// `"accurate"` or `"approximate"` under the requested ratio.
    pub class: String,
}

/// Successful analyze response.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true` (errors use [`ErrorResponse`]).
    pub ok: bool,
    /// Kernel catalogue name.
    pub kernel: &'static str,
    /// `true` when the compiled trace came from the tape cache
    /// (i.e. this request skipped recording entirely).
    pub cached: bool,
    /// Server-side wall time for the batch, nanoseconds.
    pub server_ns: u64,
    /// Ratio-driven task classification, one row per item.
    pub tasks: Vec<TaskRecord>,
    /// One report per item, in item order (`detail: "vars"` leaves
    /// `nodes` empty).
    pub reports: Vec<ReportRecord>,
}

/// Error reply (parse failures, unknown kernels, analysis errors).
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Echoed request id (0 if unknown).
    pub id: u64,
    /// Always `false`.
    pub ok: bool,
    /// Human-readable description.
    pub error: String,
}

/// Cache section of a stats response.
#[derive(Debug, Clone, Serialize)]
pub struct CacheStatsRecord {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that recorded afresh.
    pub misses: u64,
    /// Traces stored.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Entry capacity.
    pub capacity: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Replay section of a stats response (worker totals, merged via
/// [`ReplayStats::merge`](scorpio_core::ReplayStats::merge)).
#[derive(Debug, Clone, Serialize)]
pub struct ReplayStatsRecord {
    /// Items served by replaying a compiled trace.
    pub replays: u64,
    /// Items that recorded from scratch.
    pub records: u64,
    /// Recordings forced despite a compiled trace existing.
    pub fallbacks: u64,
    /// Full lane blocks replayed in one op-stream walk.
    pub lane_blocks: u64,
    /// Items served scalar by the lane drivers.
    pub lane_remainder: u64,
}

/// Per-kernel request tally of a stats response.
#[derive(Debug, Clone, Serialize)]
pub struct KernelCountRecord {
    /// Kernel catalogue name.
    pub kernel: &'static str,
    /// Analyze requests served (including failed ones).
    pub requests: u64,
}

/// Stats response.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Total request lines handled (all commands).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Compiled-tape cache counters.
    pub cache: CacheStatsRecord,
    /// Merged per-worker replay counters.
    pub replay: ReplayStatsRecord,
    /// Analyze-request tallies per kernel.
    pub kernels: Vec<KernelCountRecord>,
}

/// Bare acknowledgement (`cache_clear`, `shutdown`).
#[derive(Debug, Clone, Serialize)]
pub struct AckResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
}

/// Serializes `response` as one wire line (no trailing newline).
pub fn response_line<T: Serialize>(response: &T) -> String {
    json::to_string(response)
}

/// Builds the error reply line for `(id, message)`.
pub fn error_line(id: u64, message: impl Into<String>) -> String {
    response_line(&ErrorResponse {
        id,
        ok: false,
        error: message.into(),
    })
}

/// Converts variables-only results into [`ReportRecord`]s (empty
/// `nodes`), mirroring [`Report::to_record`](scorpio_core::Report::to_record)
/// field for field so the shared rows stay byte-identical.
pub fn vars_to_record(vars: &VarSignificances) -> ReportRecord {
    ReportRecord {
        tape_len: vars.tape_len(),
        output_significance_raw: vars.output_significance_raw(),
        vars: vars
            .registered()
            .iter()
            .map(|v| VarRecord {
                name: v.name.clone(),
                kind: v.kind.to_string(),
                enclosure: [v.enclosure.inf(), v.enclosure.sup()],
                derivative: [v.derivative.inf(), v.derivative.sup()],
                significance_raw: v.significance_raw,
                significance: v.significance,
            })
            .collect(),
        nodes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_bounds() {
        let req = parse_request(r#"{"kernel":"maclaurin","n":3,"items":[0.5]}"#).unwrap();
        assert_eq!(req.id, 0);
        match req.cmd {
            Command::Analyze(a) => {
                assert_eq!(a.ratio, 1.0);
                assert_eq!(a.detail, Detail::Vars);
                assert_eq!(a.kernel.name(), "maclaurin");
            }
            other => panic!("expected analyze, got {other:?}"),
        }
        let err = parse_request(r#"{"id":4,"kernel":"maclaurin","n":3,"ratio":1.5,"items":[1]}"#)
            .unwrap_err();
        assert_eq!(err.id, 4, "error must keep the request id");
        assert!(err.message.contains("ratio"));
        let err = parse_request("not json").unwrap_err();
        assert!(err.message.contains("malformed"));
        let err = parse_request(r#"{"id":2,"cmd":"reboot"}"#).unwrap_err();
        assert!(err.message.contains("unknown cmd"));
    }

    #[test]
    fn control_commands_parse() {
        for (line, want) in [
            (r#"{"id":1,"cmd":"stats"}"#, "Stats"),
            (r#"{"id":2,"cmd":"cache_clear"}"#, "CacheClear"),
            (r#"{"id":3,"cmd":"shutdown"}"#, "Shutdown"),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(format!("{:?}", req.cmd), want);
        }
    }

    #[test]
    fn error_line_escapes_message() {
        let line = error_line(3, "bad \"field\"");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("bad \"field\""));
    }
}
