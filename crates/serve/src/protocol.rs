//! The newline-delimited JSON wire format.
//!
//! One request object per line, one response object per line, in
//! request order per connection. Requests are parsed with
//! [`scorpio_obs::json::parse`]; responses are serde structs rendered
//! by [`scorpio_obs::json::to_string`] — the same writer
//! [`Report::to_json`](scorpio_core::Report::to_json) uses, so a
//! served [`ReportRecord`] is byte-identical to the record a direct
//! library call would serialize (the property the round-trip test
//! pins).
//!
//! # Requests
//!
//! ```json
//! {"id":7,"cmd":"analyze","kernel":"fisheye","width":64,"height":64,
//!  "ratio":0.5,"detail":"vars","items":[{"u":3,"v":9},{"u":60,"v":60}]}
//! {"id":8,"cmd":"stats"}
//! {"id":9,"cmd":"cache_clear"}
//! {"id":10,"cmd":"shutdown"}
//! {"id":11,"cmd":"metrics"}
//! {"id":12,"cmd":"window"}
//! {"id":13,"cmd":"exemplars"}
//! ```
//!
//! `cmd` defaults to `"analyze"`, `ratio` to `1.0`, `detail` to
//! `"vars"` (`"full"` adds the node-level significance graph to each
//! report). Kernel parameters are documented in [`crate::kernels`].
//!
//! Any request may carry a `trace_id` — a string of up to 16 hex
//! digits (preferred: survives f64 JSON number parsing losslessly) or
//! a non-negative integer. Analyze requests without one get a
//! server-generated id; the id is echoed in the analyze response and
//! stamps every span and task event the request emits, which is how
//! the `exemplars` dump reassembles a request's full span tree. The
//! live-observability verbs are answered on the connection thread:
//! `metrics` returns the Prometheus text exposition (also served by
//! the HTTP sidecar, see [`ServerConfig`](crate::ServerConfig)),
//! `window` the sliding-window SLO snapshots, `exemplars` the
//! tail-retained slow/error span trees.
//!
//! # Responses
//!
//! Every response carries the request's `id` and an `ok` flag; errors
//! (malformed JSON, unknown kernel/command, analysis failures) answer
//! `{"id":N,"ok":false,"error":"..."}` on the same connection without
//! closing it.

use scorpio_core::{ReportRecord, VarRecord, VarSignificances};
use scorpio_obs::json::{self, Value};
use scorpio_obs::{KernelWindowStats, TaskEventRecord};
use serde::Serialize;

use crate::exemplar::Exemplar;
use crate::kernels::{kernel_index, KernelRequest, KERNEL_NAMES};

/// How much of the analysis result a request wants back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detail {
    /// Registered-variable rows only (skips building the significance
    /// graph — the fast path and the default).
    Vars,
    /// Full reports including the node-level graph records.
    Full,
}

/// One parsed analyze command.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// The kernel batch to run.
    pub kernel: KernelRequest,
    /// Requested taskwait ratio in `[0, 1]`: the fraction of the
    /// batch's tasks classified (and event-logged) as accurate, ranked
    /// by per-item output significance.
    pub ratio: f64,
    /// Result detail level.
    pub detail: Detail,
}

/// The commands a request line can carry.
#[derive(Debug, Clone)]
pub enum Command {
    /// Run a kernel batch.
    Analyze(AnalyzeRequest),
    /// Report server/cache/replay statistics.
    Stats,
    /// Drop every cached compiled trace (the cold-cache ablation knob).
    CacheClear,
    /// Render the Prometheus text exposition (live scrape).
    Metrics,
    /// Report the sliding-window SLO snapshots per kernel.
    Window,
    /// Dump the tail-retained slow/error exemplars.
    Exemplars,
    /// Stop the server after replying (deterministic lifecycle for
    /// tests and benchmarks; also writes the run manifest).
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed verbatim in the response (defaults to 0).
    pub id: u64,
    /// Client-supplied trace id (0 = none; the server generates one
    /// for analyze requests).
    pub trace_id: u64,
    /// The command to execute.
    pub cmd: Command,
}

/// A parse failure, keeping the best-effort request id so the error
/// reply still correlates with the request that caused it.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// The request's id if one could be read, else 0.
    pub id: u64,
    /// The catalogue kernel the request named, when that much parsed —
    /// lets the server attribute the error to a kernel in its
    /// per-kernel error counts and windows.
    pub kernel: Option<&'static str>,
    /// Human-readable description, echoed in the error reply.
    pub message: String,
}

/// Parses one request line.
///
/// # Errors
///
/// [`ParseError`] with a message naming what was wrong; the connection
/// stays usable.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let v = json::parse(line).map_err(|e| ParseError {
        id: 0,
        kernel: None,
        message: format!("malformed JSON: {e}"),
    })?;
    let id = v
        .get("id")
        .and_then(Value::as_f64)
        .filter(|x| x.is_finite() && *x >= 0.0)
        .map(|x| x as u64)
        .unwrap_or(0);
    // Best-effort kernel attribution for error accounting: resolve the
    // catalogue name even when the rest of the request fails to parse.
    let kernel_name: Option<&'static str> = v
        .get("kernel")
        .and_then(Value::as_str)
        .and_then(kernel_index)
        .map(|i| KERNEL_NAMES[i]);
    let fail = |message: String| ParseError {
        id,
        kernel: kernel_name,
        message,
    };
    let trace_id = parse_trace_id(&v).map_err(|m| fail(m.to_string()))?;
    let cmd = match v.get("cmd").and_then(Value::as_str).unwrap_or("analyze") {
        "analyze" => {
            let kernel = KernelRequest::from_value(&v).map_err(&fail)?;
            let ratio = match v.get("ratio") {
                None | Some(Value::Null) => 1.0,
                Some(x) => x
                    .as_f64()
                    .filter(|r| r.is_finite() && (0.0..=1.0).contains(r))
                    .ok_or_else(|| fail("\"ratio\" must be a number in [0, 1]".to_string()))?,
            };
            let detail = match v.get("detail").and_then(Value::as_str).unwrap_or("vars") {
                "vars" => Detail::Vars,
                "full" => Detail::Full,
                other => {
                    return Err(fail(format!(
                        "unknown detail \"{other}\" (expected \"vars\" or \"full\")"
                    )))
                }
            };
            Command::Analyze(AnalyzeRequest {
                kernel,
                ratio,
                detail,
            })
        }
        "stats" => Command::Stats,
        "cache_clear" => Command::CacheClear,
        "metrics" => Command::Metrics,
        "window" => Command::Window,
        "exemplars" => Command::Exemplars,
        "shutdown" => Command::Shutdown,
        other => return Err(fail(format!("unknown cmd \"{other}\""))),
    };
    Ok(Request { id, trace_id, cmd })
}

/// Reads the optional `trace_id` field: a string of 1–16 hex digits
/// (lossless for the full u64 range) or a non-negative integer
/// (client convenience; capped by f64 integer precision at 2⁵³).
///
/// # Errors
///
/// A message describing the accepted forms.
pub fn parse_trace_id(v: &Value) -> Result<u64, &'static str> {
    const MSG: &str = "\"trace_id\" must be a string of 1-16 hex digits or a non-negative integer";
    match v.get("trace_id") {
        None | Some(Value::Null) => Ok(0),
        Some(Value::Str(s)) => {
            if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(MSG);
            }
            u64::from_str_radix(s, 16).map_err(|_| MSG)
        }
        Some(x) => x
            .as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15)
            .map(|n| n as u64)
            .ok_or(MSG),
    }
}

/// Renders a trace id the way the wire carries it: 16 hex digits.
pub fn trace_id_hex(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// Per-task classification row of an analyze response: how the
/// requested taskwait ratio ranked this item.
#[derive(Debug, Clone, Serialize)]
pub struct TaskRecord {
    /// Item index within the request batch.
    pub task_id: u64,
    /// The item's raw output significance (the ranking key).
    pub significance: f64,
    /// `"accurate"` or `"approximate"` under the requested ratio.
    pub class: String,
}

/// Successful analyze response.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true` (errors use [`ErrorResponse`]).
    pub ok: bool,
    /// The request's trace id as 16 hex digits (client-supplied or
    /// server-generated) — the handle for `exemplars` lookups.
    pub trace_id: String,
    /// Kernel catalogue name.
    pub kernel: &'static str,
    /// `true` when the compiled trace came from the tape cache
    /// (i.e. this request skipped recording entirely).
    pub cached: bool,
    /// Server-side wall time for the batch, nanoseconds.
    pub server_ns: u64,
    /// Ratio-driven task classification, one row per item.
    pub tasks: Vec<TaskRecord>,
    /// One report per item, in item order (`detail: "vars"` leaves
    /// `nodes` empty).
    pub reports: Vec<ReportRecord>,
}

/// Error reply (parse failures, unknown kernels, analysis errors).
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Echoed request id (0 if unknown).
    pub id: u64,
    /// Always `false`.
    pub ok: bool,
    /// Human-readable description.
    pub error: String,
}

/// Cache section of a stats response.
#[derive(Debug, Clone, Serialize)]
pub struct CacheStatsRecord {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that recorded afresh.
    pub misses: u64,
    /// Traces stored.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Entry capacity.
    pub capacity: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
}

/// Replay section of a stats response (worker totals, merged via
/// [`ReplayStats::merge`](scorpio_core::ReplayStats::merge)).
#[derive(Debug, Clone, Serialize)]
pub struct ReplayStatsRecord {
    /// Items served by replaying a compiled trace.
    pub replays: u64,
    /// Items that recorded from scratch.
    pub records: u64,
    /// Recordings forced despite a compiled trace existing.
    pub fallbacks: u64,
    /// Full lane blocks replayed in one op-stream walk.
    pub lane_blocks: u64,
    /// Items served scalar by the lane drivers.
    pub lane_remainder: u64,
}

/// Per-kernel request tally of a stats response.
#[derive(Debug, Clone, Serialize)]
pub struct KernelCountRecord {
    /// Kernel catalogue name.
    pub kernel: &'static str,
    /// Analyze requests served (including failed ones).
    pub requests: u64,
    /// Requests for this kernel answered with an error (parse or
    /// analysis failures).
    pub errors: u64,
}

/// Stats response.
#[derive(Debug, Clone, Serialize)]
pub struct StatsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Milliseconds since the server started serving.
    pub uptime_ms: u64,
    /// Task events dropped by the bounded per-thread rings over the
    /// process lifetime (previously only visible in the shutdown
    /// manifest).
    pub events_dropped: u64,
    /// Spans evicted from the bounded global trace sink over the
    /// process lifetime (per-request exemplar capture is unaffected).
    pub spans_dropped: u64,
    /// Total request lines handled (all commands).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Compiled-tape cache counters.
    pub cache: CacheStatsRecord,
    /// Merged per-worker replay counters.
    pub replay: ReplayStatsRecord,
    /// Analyze-request tallies per kernel.
    pub kernels: Vec<KernelCountRecord>,
}

/// `metrics` response: the Prometheus text exposition as one JSON
/// string field (the HTTP sidecar serves the same body raw).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
    /// Exposition format identifier.
    pub format: &'static str,
    /// The exposition text (`# TYPE` comments + samples, newline
    /// separated).
    pub body: String,
}

/// One span of one kernel's sliding window in a `window` response.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSpanRecord {
    /// Span label (`"10s"`, `"1m"`, `"5m"`).
    pub span: &'static str,
    /// Requests inside the span.
    pub requests: u64,
    /// Failed requests inside the span.
    pub errors: u64,
    /// Requests per second over the span.
    pub rate_per_s: f64,
    /// `errors / requests` (`null` when no requests).
    pub error_rate: f64,
    /// Median service latency, nanoseconds (`null` when empty).
    pub p50_ns: f64,
    /// 90th-percentile service latency, nanoseconds.
    pub p90_ns: f64,
    /// 99th-percentile service latency, nanoseconds.
    pub p99_ns: f64,
    /// Tape-cache lookups inside the span.
    pub cache_lookups: u64,
    /// Tape-cache hits inside the span.
    pub cache_hits: u64,
    /// `cache_hits / cache_lookups` (`null` when no lookups).
    pub cache_hit_rate: f64,
    /// Mean requested taskwait ratio (`null` when no samples).
    pub requested_ratio: f64,
    /// Mean achieved taskwait ratio (`null` when no samples).
    pub achieved_ratio: f64,
}

/// Per-kernel window section of a `window` response.
#[derive(Debug, Clone, Serialize)]
pub struct KernelWindowRecord {
    /// Kernel catalogue name.
    pub kernel: String,
    /// One record per span in
    /// [`WINDOW_SPANS`](scorpio_obs::WINDOW_SPANS) order.
    pub spans: Vec<WindowSpanRecord>,
}

/// `window` response.
#[derive(Debug, Clone, Serialize)]
pub struct WindowResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
    /// Milliseconds since the server started (the windows' "now").
    pub uptime_ms: u64,
    /// Per-kernel sliding-window snapshots.
    pub kernels: Vec<KernelWindowRecord>,
}

/// Converts an obs [`KernelWindowStats`] into its wire record.
pub fn window_to_record(stats: &KernelWindowStats) -> KernelWindowRecord {
    KernelWindowRecord {
        kernel: stats.kernel.clone(),
        spans: stats
            .spans
            .iter()
            .map(|&(span, w)| WindowSpanRecord {
                span,
                requests: w.requests,
                errors: w.errors,
                rate_per_s: w.rate_per_s,
                error_rate: w.error_rate,
                p50_ns: w.p50_ns,
                p90_ns: w.p90_ns,
                p99_ns: w.p99_ns,
                cache_lookups: w.cache_lookups,
                cache_hits: w.cache_hits,
                cache_hit_rate: w.cache_hit_rate,
                requested_ratio: w.requested_ratio_mean,
                achieved_ratio: w.achieved_ratio_mean,
            })
            .collect(),
    }
}

/// One span row of an exemplar dump (a flattened
/// [`TraceEvent`](scorpio_obs::TraceEvent)).
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    /// Slash-joined ancestry within the recording thread.
    pub path: String,
    /// The span's own name.
    pub name: String,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Nesting depth within the thread.
    pub depth: usize,
}

/// One retained request in an `exemplars` response.
#[derive(Debug, Clone, Serialize)]
pub struct ExemplarRecord {
    /// Trace id, 16 hex digits.
    pub trace_id: String,
    /// Kernel catalogue name (`"-"` when unresolved).
    pub kernel: &'static str,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Whether the compiled trace came from the tape cache.
    pub cached: bool,
    /// Service latency, nanoseconds.
    pub latency_ns: u64,
    /// Completion time, nanoseconds since server start.
    pub end_t_ns: u64,
    /// The request's span tree, in completion order.
    pub spans: Vec<SpanRecord>,
    /// The request's task events (same rows as the manifest JSONL).
    pub events: Vec<TaskEventRecord>,
}

/// Converts a retained [`Exemplar`] into its wire record.
pub fn exemplar_to_record(e: &Exemplar) -> ExemplarRecord {
    ExemplarRecord {
        trace_id: trace_id_hex(e.trace_id),
        kernel: e.kernel,
        ok: e.ok,
        cached: e.cached,
        latency_ns: e.latency_ns,
        end_t_ns: e.end_t_ns,
        spans: e
            .spans
            .iter()
            .map(|s| SpanRecord {
                path: s.path.clone(),
                name: s.name.clone(),
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                tid: s.tid,
                depth: s.depth,
            })
            .collect(),
        events: e.events.iter().map(scorpio_obs::TaskEvent::to_record).collect(),
    }
}

/// `exemplars` response.
#[derive(Debug, Clone, Serialize)]
pub struct ExemplarsResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
    /// Retained exemplars: errors newest-first, then slow requests
    /// slowest-first.
    pub exemplars: Vec<ExemplarRecord>,
    /// Successful requests offered to the ring but not retained.
    pub passed: u64,
}

/// Bare acknowledgement (`cache_clear`, `shutdown`).
#[derive(Debug, Clone, Serialize)]
pub struct AckResponse {
    /// Echoed request id.
    pub id: u64,
    /// Always `true`.
    pub ok: bool,
}

/// Serializes `response` as one wire line (no trailing newline).
pub fn response_line<T: Serialize>(response: &T) -> String {
    json::to_string(response)
}

/// Builds the error reply line for `(id, message)`.
pub fn error_line(id: u64, message: impl Into<String>) -> String {
    response_line(&ErrorResponse {
        id,
        ok: false,
        error: message.into(),
    })
}

/// Converts variables-only results into [`ReportRecord`]s (empty
/// `nodes`), mirroring [`Report::to_record`](scorpio_core::Report::to_record)
/// field for field so the shared rows stay byte-identical.
pub fn vars_to_record(vars: &VarSignificances) -> ReportRecord {
    ReportRecord {
        tape_len: vars.tape_len(),
        output_significance_raw: vars.output_significance_raw(),
        vars: vars
            .registered()
            .iter()
            .map(|v| VarRecord {
                name: v.name.clone(),
                kind: v.kind.to_string(),
                enclosure: [v.enclosure.inf(), v.enclosure.sup()],
                derivative: [v.derivative.inf(), v.derivative.sup()],
                significance_raw: v.significance_raw,
                significance: v.significance,
            })
            .collect(),
        nodes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_bounds() {
        let req = parse_request(r#"{"kernel":"maclaurin","n":3,"items":[0.5]}"#).unwrap();
        assert_eq!(req.id, 0);
        match req.cmd {
            Command::Analyze(a) => {
                assert_eq!(a.ratio, 1.0);
                assert_eq!(a.detail, Detail::Vars);
                assert_eq!(a.kernel.name(), "maclaurin");
            }
            other => panic!("expected analyze, got {other:?}"),
        }
        let err = parse_request(r#"{"id":4,"kernel":"maclaurin","n":3,"ratio":1.5,"items":[1]}"#)
            .unwrap_err();
        assert_eq!(err.id, 4, "error must keep the request id");
        assert!(err.message.contains("ratio"));
        let err = parse_request("not json").unwrap_err();
        assert!(err.message.contains("malformed"));
        let err = parse_request(r#"{"id":2,"cmd":"reboot"}"#).unwrap_err();
        assert!(err.message.contains("unknown cmd"));
    }

    #[test]
    fn control_commands_parse() {
        for (line, want) in [
            (r#"{"id":1,"cmd":"stats"}"#, "Stats"),
            (r#"{"id":2,"cmd":"cache_clear"}"#, "CacheClear"),
            (r#"{"id":3,"cmd":"shutdown"}"#, "Shutdown"),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(format!("{:?}", req.cmd), want);
        }
    }

    #[test]
    fn error_line_escapes_message() {
        let line = error_line(3, "bad \"field\"");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("bad \"field\""));
    }
}
