//! Tail-based exemplar retention: a bounded ring keeping the complete
//! span trees and task events of the N slowest requests plus every
//! error request, dumpable live through the `exemplars` protocol verb.
//!
//! Tail sampling decides *after* a request finishes whether it is worth
//! keeping — the interesting tail (slow and failed requests) is
//! retained in full while the fast bulk is dropped, so memory stays
//! bounded no matter the traffic. Slow exemplars use min-replacement:
//! a finished request only displaces the current fastest "slow"
//! exemplar when it is slower, so under steady load the ring converges
//! to the true slowest-N. Error exemplars keep a separate FIFO bound so
//! a burst of failures cannot evict the latency tail (and vice versa).

use std::collections::VecDeque;
use std::sync::Mutex;

use scorpio_obs::{TaskEvent, TraceEvent};

/// Everything retained about one request: identity, outcome, and the
/// captured span tree / task events.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The request's trace id (always nonzero for served requests).
    pub trace_id: u64,
    /// Kernel catalogue name (`"-"` for requests that never resolved
    /// one, e.g. malformed analyze lines).
    pub kernel: &'static str,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Whether the compiled trace came from the tape cache.
    pub cached: bool,
    /// Service latency in nanoseconds (the retention key).
    pub latency_ns: u64,
    /// Completion time, nanoseconds since server start.
    pub end_t_ns: u64,
    /// The request's captured spans (parse → cache lookup → analyze →
    /// classify → serialize), in completion order.
    pub spans: Vec<TraceEvent>,
    /// The request's captured task events (task / taskwait /
    /// ratio_decision rows).
    pub events: Vec<TaskEvent>,
}

/// The bounded tail-exemplar ring; see the [module](self) docs.
#[derive(Debug)]
pub struct ExemplarRing {
    slow_cap: usize,
    error_cap: usize,
    inner: Mutex<Rings>,
}

#[derive(Debug, Default)]
struct Rings {
    /// Slowest successful requests (unordered; min-replaced).
    slow: Vec<Exemplar>,
    /// Most recent failed requests (FIFO).
    errors: VecDeque<Exemplar>,
    /// Successful exemplars offered but not retained (faster than the
    /// current slowest-N).
    passed: u64,
}

impl ExemplarRing {
    /// A ring retaining at most `slow_cap` slow and `error_cap` error
    /// exemplars.
    pub fn new(slow_cap: usize, error_cap: usize) -> ExemplarRing {
        ExemplarRing {
            slow_cap: slow_cap.max(1),
            error_cap: error_cap.max(1),
            inner: Mutex::new(Rings::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Rings> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Offers a finished request. Errors are always retained (oldest
    /// error evicted past the bound); successes are retained while the
    /// slow ring has room, then only when slower than its current
    /// fastest member.
    pub fn offer(&self, exemplar: Exemplar) {
        let mut rings = self.lock();
        if !exemplar.ok {
            rings.errors.push_back(exemplar);
            if rings.errors.len() > self.error_cap {
                rings.errors.pop_front();
            }
            return;
        }
        if rings.slow.len() < self.slow_cap {
            rings.slow.push(exemplar);
            return;
        }
        let (min_i, min_ns) = rings
            .slow
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.latency_ns))
            .min_by_key(|&(_, ns)| ns)
            .expect("slow ring non-empty at capacity");
        if exemplar.latency_ns > min_ns {
            rings.slow[min_i] = exemplar;
        } else {
            rings.passed += 1;
        }
    }

    /// Clones out every retained exemplar: errors newest-first, then
    /// slow successes sorted slowest-first.
    pub fn snapshot(&self) -> Vec<Exemplar> {
        let rings = self.lock();
        let mut out: Vec<Exemplar> = rings.errors.iter().rev().cloned().collect();
        let mut slow: Vec<Exemplar> = rings.slow.clone();
        slow.sort_by_key(|e| std::cmp::Reverse(e.latency_ns));
        out.extend(slow);
        out
    }

    /// Successful requests offered but not retained.
    pub fn passed(&self) -> u64 {
        self.lock().passed
    }

    /// `(slow, errors)` currently retained.
    pub fn len(&self) -> (usize, usize) {
        let rings = self.lock();
        (rings.slow.len(), rings.errors.len())
    }

    /// `true` when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        let (s, e) = self.len();
        s == 0 && e == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(trace_id: u64, ok: bool, latency_ns: u64) -> Exemplar {
        Exemplar {
            trace_id,
            kernel: "maclaurin",
            ok,
            cached: false,
            latency_ns,
            end_t_ns: latency_ns,
            spans: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn slow_ring_converges_to_slowest_n() {
        let ring = ExemplarRing::new(3, 2);
        for (id, ns) in [(1, 50), (2, 10), (3, 40), (4, 90), (5, 20), (6, 70)] {
            ring.offer(ex(id, true, ns));
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![4, 6, 1], "slowest three, slowest first");
        assert_eq!(ring.passed(), 1, "only the 20ns offer passed outright");
    }

    #[test]
    fn errors_keep_their_own_fifo_bound() {
        let ring = ExemplarRing::new(1, 2);
        ring.offer(ex(1, true, 5));
        for id in 10..14 {
            ring.offer(ex(id, false, 1));
        }
        let snap = ring.snapshot();
        let errors: Vec<u64> = snap
            .iter()
            .filter(|e| !e.ok)
            .map(|e| e.trace_id)
            .collect();
        assert_eq!(errors, vec![13, 12], "two newest errors, newest first");
        assert!(
            snap.iter().any(|e| e.ok && e.trace_id == 1),
            "error burst must not evict the latency tail"
        );
    }
}
