//! The serve loop: accept thread, connection threads, worker pool and
//! the shared compiled-tape cache.
//!
//! # Threading model
//!
//! * The **accept loop** ([`Server::run`]) hands each connection to its
//!   own thread — connections only parse, enqueue and write lines, so
//!   thread-per-connection is cheap and keeps per-connection response
//!   order trivially correct.
//! * Analyze commands are pushed onto one shared MPSC queue consumed by
//!   a **fixed pool of worker threads**. Each worker owns the mutable
//!   analysis state — an [`AnalysisArena`], a [`LaneScratch`] and one
//!   [`ReplayOrRecord`] driver per kernel — so the hot path never locks
//!   anything but the queue and one cache shard.
//! * Control commands (`stats`, `cache_clear`, `shutdown`) are answered
//!   on the connection thread; they touch only shared atomics and the
//!   cache.
//!
//! # The cache is the source of truth
//!
//! On every analyze request the worker consults the shared
//! [`TapeCache`] under the request's `(kernel, shape_key)`:
//!
//! * **hit** — the cached [`CompiledTrace`](scorpio_core::CompiledTrace)
//!   is installed into the
//!   worker's driver ([`ReplayOrRecord::install`], an `Arc` bump) and
//!   the whole batch replays without recording.
//! * **miss** — the worker *clears* its driver's private trace first
//!   ([`ReplayOrRecord::clear_compiled`]) so the request pays a true
//!   fresh recording, then publishes the new trace
//!   ([`ReplayOrRecord::share`]) for every other worker.
//!
//! Clearing on miss keeps worker-private state from shadowing the
//! cache: after `cache_clear`, the next request per shape genuinely
//! re-records — which is exactly what the cold-vs-warm ablation in
//! `scorpio_load` measures.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use scorpio_core::{
    Analysis, AnalysisArena, LaneScratch, ReplayOrRecord, ReplayStats, TapeCache, TapeCacheStats,
    DEFAULT_LANES,
};
use scorpio_obs::expose::PrometheusRenderer;
use scorpio_obs::{KernelWindowStats, RequestSample, RunSession, SlidingWindow, TraceEvent};

use crate::exemplar::{Exemplar, ExemplarRing};
use crate::kernels::{kernel_index, KERNEL_NAMES};
use crate::protocol::{
    error_line, exemplar_to_record, parse_request, response_line, trace_id_hex, vars_to_record,
    window_to_record, AckResponse, AnalyzeRequest, AnalyzeResponse, CacheStatsRecord, Command,
    Detail, ExemplarsResponse, KernelCountRecord, MetricsResponse, ReplayStatsRecord,
    StatsResponse, TaskRecord, WindowResponse,
};

/// Slow-request exemplars retained by the tail ring.
const EXEMPLAR_SLOW_CAP: usize = 16;
/// Error-request exemplars retained by the tail ring.
const EXEMPLAR_ERROR_CAP: usize = 32;

/// Per-thread event-ring capacity (records) while serving; see the
/// sizing note in [`Server::run`].
const SERVE_EVENT_RING_CAPACITY: usize = 256;
/// Exited-thread spill bound (records) while serving.
const SERVE_EVENT_SPILL_CAPACITY: usize = 1 << 16;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size.
    pub workers: usize,
    /// Compiled-tape cache capacity (entries).
    pub cache_capacity: usize,
    /// When set, tracing is enabled for the server's lifetime and a
    /// `RUN_<name>.json` manifest (per-kernel latency histograms, task
    /// events, counters) is written into `out_dir` on shutdown.
    pub manifest: Option<String>,
    /// Artifact directory for the manifest (the `--out-dir`
    /// convention; default `out/`).
    pub out_dir: PathBuf,
    /// Live observability: when `true` (the default) tracing is
    /// enabled for the server's lifetime, so per-request spans and
    /// task events are recorded, stamped with trace ids and
    /// tail-retained in the exemplar ring. Sliding windows and the
    /// `metrics`/`window` verbs work either way (their cost is not
    /// gated); `bench_obs` measures the difference.
    pub obs: bool,
    /// Keep *detail* spans (per-item `replay`/`reverse`/`significance`,
    /// per-lane-block `forward_lanes`, …) while serving. Off by
    /// default: a warm batch request emits ~16 interior spans whose
    /// recording cost lands on the service path, so the daemon keeps
    /// only stage-level spans (`serve.request` → `parse`/
    /// `cache_lookup`/`analyze`/`classify`/`serialize`) plus the
    /// lock-free task-event telemetry. Operators who want the deep
    /// tree in exemplars opt back in (`--obs-detail`).
    pub obs_detail: bool,
    /// When set, a read-only HTTP sidecar listener binds here
    /// (`127.0.0.1:0` picks an ephemeral port) and answers every
    /// request with the Prometheus text exposition — scrapeable
    /// without speaking the JSON protocol or shutting the server
    /// down.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            cache_capacity: 64,
            manifest: None,
            out_dir: PathBuf::from("out"),
            obs: true,
            obs_detail: false,
            metrics_addr: None,
        }
    }
}

/// What the server observed over its lifetime, returned by
/// [`Server::run`] after a clean shutdown.
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Request lines handled (all commands).
    pub requests: u64,
    /// Requests answered with an error reply.
    pub errors: u64,
    /// Analyze requests per kernel, in [`KERNEL_NAMES`] order.
    pub kernel_requests: [u64; 5],
    /// Merged per-worker replay counters.
    pub replay: ReplayStats,
    /// Cache traffic counters.
    pub cache: TapeCacheStats,
}

/// Shared server state (one per [`Server::run`]).
struct Shared {
    cache: TapeCache,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    kernel_requests: [AtomicU64; 5],
    kernel_errors: [AtomicU64; 5],
    /// Worker replay counters, folded in after every analyze request so
    /// `stats` replies are always current.
    replay: Mutex<ReplayStats>,
    workers: usize,
    /// Serving epoch: window timestamps and `uptime_ms` count from
    /// here.
    started: Instant,
    /// Per-kernel sliding-window SLO aggregators (always on).
    windows: [SlidingWindow; 5],
    /// Tail-retained slow/error exemplars.
    exemplars: ExemplarRing,
    /// Monotonic source for server-generated trace ids.
    trace_counter: AtomicU64,
}

/// SplitMix64 finalizer: spreads the sequential trace counter over the
/// id space so server-generated ids don't collide with small
/// client-chosen ones.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Shared {
    fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn count_kernel_error(&self, kernel: &str) {
        if let Some(i) = kernel_index(kernel) {
            self.kernel_errors[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Nanoseconds since the server started serving.
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// A fresh, never-zero trace id.
    fn next_trace_id(&self) -> u64 {
        let id = mix64(self.trace_counter.fetch_add(1, Ordering::Relaxed));
        id | 1
    }

    /// Folds one finished request into its kernel's sliding window.
    fn record_window(&self, kernel: &str, sample: RequestSample) {
        if let Some(i) = kernel_index(kernel) {
            self.windows[i].record(self.now_ns(), &sample);
        }
    }

    fn stats_response(&self, id: u64) -> StatsResponse {
        let cache = self.cache.stats();
        // A worker that panicked mid-merge poisons this mutex; the
        // guarded data is plain counters (at worst missing that
        // worker's last delta), so salvage it — `stats` must keep
        // answering after a bad job rather than panicking the daemon.
        let replay = *self
            .replay
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        StatsResponse {
            id,
            ok: true,
            workers: self.workers,
            uptime_ms: self.uptime_ms(),
            events_dropped: scorpio_obs::events_dropped(),
            spans_dropped: scorpio_obs::spans_dropped(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: CacheStatsRecord {
                hits: cache.hits,
                misses: cache.misses,
                insertions: cache.insertions,
                evictions: cache.evictions,
                len: self.cache.len(),
                capacity: self.cache.capacity(),
                hit_rate: cache.hit_rate(),
            },
            replay: ReplayStatsRecord {
                replays: replay.replays,
                records: replay.records,
                fallbacks: replay.fallbacks,
                lane_blocks: replay.lane_blocks,
                lane_remainder: replay.lane_remainder,
            },
            kernels: KERNEL_NAMES
                .iter()
                .enumerate()
                .map(|(i, &kernel)| KernelCountRecord {
                    kernel,
                    requests: self.kernel_requests[i].load(Ordering::Relaxed),
                    errors: self.kernel_errors[i].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Per-kernel window snapshots at "now", in catalogue order.
    fn window_stats(&self) -> Vec<KernelWindowStats> {
        let now_ns = self.now_ns();
        KERNEL_NAMES
            .iter()
            .enumerate()
            .map(|(i, &kernel)| KernelWindowStats {
                kernel: kernel.to_string(),
                spans: self.windows[i].snapshot_all(now_ns),
            })
            .collect()
    }

    fn window_response(&self, id: u64) -> WindowResponse {
        WindowResponse {
            id,
            ok: true,
            uptime_ms: self.uptime_ms(),
            kernels: self.window_stats().iter().map(window_to_record).collect(),
        }
    }

    fn exemplars_response(&self, id: u64) -> ExemplarsResponse {
        ExemplarsResponse {
            id,
            ok: true,
            exemplars: self
                .exemplars
                .snapshot()
                .iter()
                .map(exemplar_to_record)
                .collect(),
            passed: self.exemplars.passed(),
        }
    }

    /// Renders the full Prometheus text exposition: the global metrics
    /// registry, server/cache/replay gauges, and the sliding windows.
    fn metrics_body(&self) -> String {
        let mut r = PrometheusRenderer::new();
        r.render_registry();
        r.counter(
            "scorpio_serve_requests_total",
            "Request lines handled (all commands).",
            &[],
            self.requests.load(Ordering::Relaxed) as f64,
        );
        r.counter(
            "scorpio_serve_errors_total",
            "Requests answered with an error.",
            &[],
            self.errors.load(Ordering::Relaxed) as f64,
        );
        r.gauge(
            "scorpio_serve_uptime_seconds",
            "Seconds since the server started serving.",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        r.counter(
            "scorpio_events_dropped_total",
            "Task events dropped by the bounded per-thread rings.",
            &[],
            scorpio_obs::events_dropped() as f64,
        );
        r.counter(
            "scorpio_spans_dropped_total",
            "Spans evicted from the bounded global trace sink.",
            &[],
            scorpio_obs::spans_dropped() as f64,
        );
        let cache = self.cache.stats();
        for (name, help, v) in [
            ("scorpio_cache_hits_total", "Tape-cache lookups served from the cache.", cache.hits),
            ("scorpio_cache_misses_total", "Tape-cache lookups that recorded afresh.", cache.misses),
            ("scorpio_cache_insertions_total", "Compiled traces stored.", cache.insertions),
            ("scorpio_cache_evictions_total", "Entries evicted by the LRU bound.", cache.evictions),
        ] {
            r.counter(name, help, &[], v as f64);
        }
        r.gauge(
            "scorpio_cache_entries",
            "Compiled traces currently cached.",
            &[],
            self.cache.len() as f64,
        );
        r.gauge(
            "scorpio_cache_capacity",
            "Tape-cache entry capacity.",
            &[],
            self.cache.capacity() as f64,
        );
        let replay = *self
            .replay
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, help, v) in [
            ("scorpio_replay_replays_total", "Items served by replaying a compiled trace.", replay.replays),
            ("scorpio_replay_records_total", "Items that recorded from scratch.", replay.records),
            ("scorpio_replay_lane_blocks_total", "Full lane blocks replayed in one op-stream walk.", replay.lane_blocks),
        ] {
            r.counter(name, help, &[], v as f64);
        }
        for (i, &kernel) in KERNEL_NAMES.iter().enumerate() {
            let labels = [("kernel", kernel)];
            r.counter(
                "scorpio_kernel_requests_total",
                "Analyze requests per kernel.",
                &labels,
                self.kernel_requests[i].load(Ordering::Relaxed) as f64,
            );
            r.counter(
                "scorpio_kernel_errors_total",
                "Failed requests per kernel.",
                &labels,
                self.kernel_errors[i].load(Ordering::Relaxed) as f64,
            );
        }
        for stats in self.window_stats() {
            for &(span, w) in &stats.spans {
                let labels = [("kernel", stats.kernel.as_str()), ("span", span)];
                r.gauge("scorpio_window_requests", "Requests in the sliding window.", &labels, w.requests as f64);
                r.gauge("scorpio_window_rate_per_s", "Request rate over the window.", &labels, w.rate_per_s);
                r.gauge("scorpio_window_error_rate", "Error rate over the window.", &labels, w.error_rate);
                r.gauge("scorpio_window_cache_hit_rate", "Tape-cache hit rate over the window.", &labels, w.cache_hit_rate);
                r.gauge("scorpio_window_achieved_ratio", "Mean achieved taskwait ratio over the window.", &labels, w.achieved_ratio_mean);
                for (q, v) in [("0.5", w.p50_ns), ("0.9", w.p90_ns), ("0.99", w.p99_ns)] {
                    let labels = [("kernel", stats.kernel.as_str()), ("span", span), ("quantile", q)];
                    r.gauge("scorpio_window_latency_ns", "Service-latency quantile over the window.", &labels, v);
                }
            }
        }
        r.finish()
    }
}

/// One queued analyze job; the worker sends the finished response line
/// back through `reply`.
struct Job {
    id: u64,
    /// The request's trace id (client-supplied or server-generated;
    /// never 0).
    trace_id: u64,
    /// When the connection thread started parsing the line,
    /// nanoseconds since the *trace epoch* (`scorpio_obs::epoch_ns`) —
    /// the synthetic parse span must share the captured spans' time
    /// base. Zero when tracing is off.
    parse_start_ns: u64,
    /// How long the parse took, nanoseconds.
    parse_dur_ns: u64,
    request: AnalyzeRequest,
    reply: mpsc::Sender<String>,
}

/// A bound, not-yet-running server. Splitting bind from run lets tests
/// and the load harness learn the ephemeral port before serving.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    config: ServerConfig,
}

impl Server {
    /// Binds the configured address (and the metrics sidecar address,
    /// when one is configured).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        Ok(Server {
            listener,
            metrics_listener,
            config,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The sidecar scrape address, when one was configured.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Serves until a `shutdown` command arrives, then drains workers,
    /// writes the manifest (if configured) and returns the lifetime
    /// summary.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop and manifest I/O failures. Per-connection
    /// I/O errors only end that connection.
    pub fn run(self) -> io::Result<ServerSummary> {
        let session = self
            .config
            .manifest
            .as_ref()
            .map(|name| RunSession::start(name.clone()));
        if self.config.obs {
            // A serving daemon reads its telemetry through the
            // per-request capture buffers, sliding windows and metrics
            // registry — the global event timeline is only consulted by
            // the shutdown manifest. Size the per-thread rings and the
            // exited-thread spill list for that: the executor's scoped
            // workers live for one taskwait, so the default 8192-record
            // ring would be allocated (and spilled) per request, and
            // the default 2^20-record spill bound would let a
            // long-lived server pin ~100 MB of drained-by-nobody
            // events. Overflow degrades gracefully into the
            // `events_dropped` counter surfaced by `stats`.
            scorpio_obs::events::set_ring_capacity(SERVE_EVENT_RING_CAPACITY);
            scorpio_obs::events::set_spill_capacity(SERVE_EVENT_SPILL_CAPACITY);
            if self.config.obs_detail {
                scorpio_obs::enable_detail();
            } else {
                scorpio_obs::disable_detail();
            }
            scorpio_obs::enable();
        }
        let addr = self.local_addr()?;
        let shared = Arc::new(Shared {
            cache: TapeCache::new(self.config.cache_capacity),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            kernel_requests: Default::default(),
            kernel_errors: Default::default(),
            replay: Mutex::new(ReplayStats::default()),
            workers: self.config.workers.max(1),
            started: Instant::now(),
            windows: Default::default(),
            exemplars: ExemplarRing::new(EXEMPLAR_SLOW_CAP, EXEMPLAR_ERROR_CAP),
            trace_counter: AtomicU64::new(1),
        });

        let sidecar = self.metrics_listener.map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || sidecar_loop(&listener, &shared))
        });

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<_> = (0..shared.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || worker_loop(&shared, &job_rx))
            })
            .collect();

        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            // One reply segment per request (no Nagle/delayed-ACK
            // stalls), and a finite read timeout so idle connections
            // notice the shutdown flag instead of pinning the join.
            stream.set_nodelay(true).ok();
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                .ok();
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            connections.push(std::thread::spawn(move || {
                connection_loop(stream, &shared, &job_tx, addr);
            }));
        }
        // Connections hold job-sender clones: join them first so the
        // worker queue's senders all drop and the workers run dry.
        drop(job_tx);
        for conn in connections {
            let _ = conn.join();
        }
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(sidecar) = sidecar {
            let _ = sidecar.join();
        }

        let summary = ServerSummary {
            requests: shared.requests.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
            kernel_requests: std::array::from_fn(|i| {
                shared.kernel_requests[i].load(Ordering::Relaxed)
            }),
            replay: *shared
                .replay
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            cache: shared.cache.stats(),
        };
        if let Some(session) = session {
            let config = [
                ("workers".to_string(), shared.workers.to_string()),
                (
                    "cache_capacity".to_string(),
                    self.config.cache_capacity.to_string(),
                ),
                ("requests".to_string(), summary.requests.to_string()),
            ];
            session.finish_in(&self.config.out_dir, shared.workers, &config, None)?;
        }
        Ok(summary)
    }
}

/// Reads newline-delimited requests off one connection and writes one
/// response line per request, in order. Returns when the peer closes,
/// on an I/O error, or right after serving a `shutdown`.
fn connection_loop(
    mut stream: TcpStream,
    shared: &Shared,
    job_tx: &mpsc::Sender<Job>,
    addr: SocketAddr,
) {
    let mut pending = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            // The accept loop arms a read timeout so idle connections
            // poll the shutdown flag instead of blocking forever.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        pending.extend_from_slice(&chunk[..n]);
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..pos]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let (mut response, is_shutdown) = handle_line(&line, shared, job_tx);
            response.push('\n');
            let write = stream.write_all(response.as_bytes());
            if is_shutdown {
                // Flag first, then nudge the accept loop awake with a
                // throwaway connection so it observes the flag.
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(addr);
                return;
            }
            if write.is_err() {
                return;
            }
        }
    }
}

/// Executes one request line, returning the response line and whether
/// it was a shutdown.
fn handle_line(line: &str, shared: &Shared, job_tx: &mpsc::Sender<Job>) -> (String, bool) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let parse_start_ns = shared.now_ns();
    let parse_start_epoch_ns = if scorpio_obs::enabled() {
        scorpio_obs::epoch_ns()
    } else {
        0
    };
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.count_error();
            // Attribute the failure: per-kernel error count, an error
            // sample in the kernel's window, and an error exemplar —
            // all when the line parsed far enough to name a kernel.
            if let Some(kernel) = e.kernel {
                shared.count_kernel_error(kernel);
                shared.record_window(
                    kernel,
                    RequestSample {
                        error: true,
                        ..RequestSample::default()
                    },
                );
            }
            shared.exemplars.offer(Exemplar {
                trace_id: shared.next_trace_id(),
                kernel: e.kernel.unwrap_or("-"),
                ok: false,
                cached: false,
                latency_ns: shared.now_ns().saturating_sub(parse_start_ns),
                end_t_ns: shared.now_ns(),
                spans: Vec::new(),
                events: Vec::new(),
            });
            return (error_line(e.id, e.message), false);
        }
    };
    let parse_dur_ns = shared.now_ns().saturating_sub(parse_start_ns);
    match request.cmd {
        Command::Analyze(analyze) => {
            if let Some(i) = kernel_index(analyze.kernel.name()) {
                shared.kernel_requests[i].fetch_add(1, Ordering::Relaxed);
            }
            let trace_id = if request.trace_id != 0 {
                request.trace_id
            } else {
                shared.next_trace_id()
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                id: request.id,
                trace_id,
                parse_start_ns: parse_start_epoch_ns,
                parse_dur_ns,
                request: analyze,
                reply: reply_tx,
            };
            if job_tx.send(job).is_err() {
                shared.count_error();
                return (error_line(request.id, "server is shutting down"), false);
            }
            match reply_rx.recv() {
                Ok(line) => (line, false),
                Err(_) => {
                    shared.count_error();
                    (error_line(request.id, "worker dropped the request"), false)
                }
            }
        }
        Command::Stats => (response_line(&shared.stats_response(request.id)), false),
        Command::Metrics => (
            response_line(&MetricsResponse {
                id: request.id,
                ok: true,
                format: "prometheus-text-0.0.4",
                body: shared.metrics_body(),
            }),
            false,
        ),
        Command::Window => (response_line(&shared.window_response(request.id)), false),
        Command::Exemplars => (response_line(&shared.exemplars_response(request.id)), false),
        Command::CacheClear => {
            shared.cache.clear();
            (
                response_line(&AckResponse {
                    id: request.id,
                    ok: true,
                }),
                false,
            )
        }
        Command::Shutdown => (
            response_line(&AckResponse {
                id: request.id,
                ok: true,
            }),
            true,
        ),
    }
}

/// The read-only HTTP sidecar: answers every connection with one
/// `200 OK` carrying the current Prometheus exposition, then closes.
/// Polls the shutdown flag between accepts so it dies with the server.
fn sidecar_loop(listener: &TcpListener, shared: &Shared) {
    listener.set_nonblocking(true).ok();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                    .ok();
                // Consume (best-effort) the request head; the body we
                // serve does not depend on it.
                let mut head = [0u8; 1024];
                let _ = stream.read(&mut head);
                let body = shared.metrics_body();
                let response = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(_) => return,
        }
    }
}

/// One worker: owns the arena, the lane scratch and one replay driver
/// per kernel; drains the job queue until every sender is gone.
fn worker_loop(shared: &Shared, job_rx: &Mutex<mpsc::Receiver<Job>>) {
    let mut arena = AnalysisArena::with_capacity(4096);
    let mut lanes = LaneScratch::<DEFAULT_LANES>::new();
    let mut drivers: HashMap<&'static str, ReplayOrRecord> = HashMap::new();
    loop {
        // Poison on the queue just means a sibling worker panicked
        // while blocked in recv(); the receiver itself is still sound.
        let job = match job_rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => return,
        };
        let line = run_analyze(shared, &mut arena, &mut lanes, &mut drivers, &job);
        // A send failure means the connection died mid-request; the
        // work is done either way.
        let _ = job.reply.send(line);
    }
}

/// Per-kernel static names for the latency histogram (the observe
/// registry interns `&'static str` keys).
fn latency_metric(kernel: &str) -> &'static str {
    match kernel {
        "fisheye" => "serve.latency_us.fisheye",
        "blackscholes" => "serve.latency_us.blackscholes",
        "dct" => "serve.latency_us.dct",
        "maclaurin" => "serve.latency_us.maclaurin",
        _ => "serve.latency_us.nbody",
    }
}

/// Runs one analyze job on this worker's state and builds its response
/// line: opens the request's trace context (stamping + capture), runs
/// the analysis under spans, then folds the outcome into the kernel's
/// sliding window and offers the captured span tree to the exemplar
/// ring.
fn run_analyze(
    shared: &Shared,
    arena: &mut AnalysisArena,
    lanes: &mut LaneScratch<DEFAULT_LANES>,
    drivers: &mut HashMap<&'static str, ReplayOrRecord>,
    job: &Job,
) -> String {
    let capture = scorpio_obs::enabled();
    let mut ctx = scorpio_obs::trace_context(job.trace_id, capture);
    let outcome = run_analyze_spanned(shared, arena, lanes, drivers, job);
    let mut spans = ctx.take_spans();
    let events = ctx.take_task_events();
    drop(ctx);

    // The connection thread parsed before the job was queued; splice a
    // synthetic span in so the exemplar's tree covers parse → reply.
    if capture {
        spans.push(TraceEvent {
            path: "serve.request/parse".to_string(),
            name: "parse".to_string(),
            start_ns: job.parse_start_ns,
            dur_ns: job.parse_dur_ns,
            tid: u64::MAX, // connection thread; not a worker tid
            depth: 1,
            trace_id: job.trace_id,
        });
    }

    let kernel = job.request.kernel.name();
    shared.record_window(
        kernel,
        RequestSample {
            latency_ns: outcome.server_ns.max(1),
            error: !outcome.ok,
            cache_hit: Some(outcome.cached),
            requested_ratio: Some(job.request.ratio),
            achieved_ratio: outcome.achieved_ratio,
        },
    );
    shared.exemplars.offer(Exemplar {
        trace_id: job.trace_id,
        kernel,
        ok: outcome.ok,
        cached: outcome.cached,
        latency_ns: outcome.server_ns,
        end_t_ns: shared.now_ns(),
        spans,
        events,
    });
    outcome.line
}

/// What one analyze run produced, for the caller's window/exemplar
/// accounting.
struct AnalyzeOutcome {
    line: String,
    ok: bool,
    cached: bool,
    server_ns: u64,
    achieved_ratio: Option<f64>,
}

/// The span-instrumented body of [`run_analyze`] (runs inside the
/// job's trace context).
fn run_analyze_spanned(
    shared: &Shared,
    arena: &mut AnalysisArena,
    lanes: &mut LaneScratch<DEFAULT_LANES>,
    drivers: &mut HashMap<&'static str, ReplayOrRecord>,
    job: &Job,
) -> AnalyzeOutcome {
    let _span = scorpio_obs::span("serve.request");
    let request = &job.request;
    let kernel = request.kernel.name();
    let key = request.kernel.shape_key();
    let driver = drivers
        .entry(kernel)
        .or_insert_with(|| ReplayOrRecord::new(Analysis::new()));
    let stats_before = driver.stats();

    // Cache as source of truth: a hit installs the shared trace, a miss
    // clears worker-private state so the recording cost is honest (see
    // the module docs).
    let cached = {
        let _s = scorpio_obs::span("serve.cache_lookup");
        match shared.cache.get(kernel, key) {
            Some(trace) => {
                driver.install(&trace);
                true
            }
            None => {
                driver.clear_compiled();
                false
            }
        }
    };

    let started = Instant::now();
    let result = {
        let _s = scorpio_obs::span("serve.analyze");
        match request.detail {
            Detail::Vars => request
                .kernel
                .run_vars(driver, arena, lanes)
                .map(|vars| (vars.iter().map(vars_to_record).collect::<Vec<_>>(), vars_sigs(&vars))),
            Detail::Full => request.kernel.run_full(driver, arena).map(|reports| {
                (
                    reports.iter().map(|r| r.to_record()).collect::<Vec<_>>(),
                    reports
                        .iter()
                        .map(|r| r.output_significance_raw())
                        .collect(),
                )
            }),
        }
    };
    let server_ns = started.elapsed().as_nanos() as u64;

    if !cached {
        if let Some(trace) = driver.share() {
            // Only publish what the request actually keyed: a branchy
            // trace never gets here (share() refuses it) and a foreign
            // key means the driver recorded under other terms.
            if trace.shape_key() == Some(key) {
                shared.cache.insert(kernel, key, trace);
            }
        }
    }
    shared
        .replay
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .merge(driver.stats().since(stats_before));
    scorpio_obs::observe(latency_metric(kernel), server_ns as f64 / 1_000.0);

    match result {
        Ok((reports, significances)) => {
            let (tasks, achieved) = {
                let _s = scorpio_obs::span("serve.classify");
                classify_tasks(kernel, request.ratio, &significances, server_ns)
            };
            let line = {
                let _s = scorpio_obs::span("serve.serialize");
                response_line(&AnalyzeResponse {
                    id: job.id,
                    ok: true,
                    trace_id: trace_id_hex(job.trace_id),
                    kernel,
                    cached,
                    server_ns,
                    tasks,
                    reports,
                })
            };
            AnalyzeOutcome {
                line,
                ok: true,
                cached,
                server_ns,
                achieved_ratio: Some(achieved),
            }
        }
        Err(e) => {
            shared.count_error();
            shared.count_kernel_error(kernel);
            AnalyzeOutcome {
                line: error_line(job.id, format!("analysis failed: {e}")),
                ok: false,
                cached,
                server_ns,
                achieved_ratio: None,
            }
        }
    }
}

/// Extracts per-item raw output significances from vars-detail results.
fn vars_sigs(vars: &[scorpio_core::VarSignificances]) -> Vec<f64> {
    vars.iter().map(|v| v.output_significance_raw()).collect()
}

/// Ranks the batch by significance, classifies the top `ratio` fraction
/// accurate, and emits the task/taskwait events for the run manifest.
/// Returns the rows plus the achieved ratio (`accurate / total`).
fn classify_tasks(
    kernel: &str,
    ratio: f64,
    significances: &[f64],
    server_ns: u64,
) -> (Vec<TaskRecord>, f64) {
    let k = significances.len();
    let accurate_n = ((ratio * k as f64).ceil() as usize).min(k);
    let mut order: Vec<usize> = (0..k).collect();
    // Descending by significance, index-stable for ties (and NaN sorts
    // last, matching "least significant").
    order.sort_by(|&a, &b| {
        significances[b]
            .partial_cmp(&significances[a])
            .unwrap_or_else(|| b.cmp(&a).reverse())
    });
    let mut classes = vec!["approximate"; k];
    for &i in order.iter().take(accurate_n) {
        classes[i] = "accurate";
    }
    let per_task_ns = server_ns / (k as u64).max(1);
    let label = format!("serve.{kernel}");
    // Per-item task events scale with the batch (one per item), so like
    // interior spans they are detail-level telemetry: the daemon's
    // default keeps the per-request `taskwait` summary event and the
    // aggregate counters, and `--obs-detail` restores the per-item
    // timeline in exemplars and JSONL exports.
    if scorpio_obs::detail_enabled() {
        for (i, (&sig, &class)) in significances.iter().zip(&classes).enumerate() {
            let task_class = if class == "accurate" {
                scorpio_obs::TaskClass::Accurate
            } else {
                scorpio_obs::TaskClass::Approx
            };
            scorpio_obs::task_event(&label, i as u64, sig, task_class, per_task_ns);
        }
    }
    let achieved = if k == 0 {
        0.0
    } else {
        accurate_n as f64 / k as f64
    };
    scorpio_obs::taskwait_event(
        &label,
        ratio,
        achieved,
        accurate_n as u64,
        (k - accurate_n) as u64,
        0,
        server_ns,
    );
    let rows = significances
        .iter()
        .zip(&classes)
        .enumerate()
        .map(|(i, (&sig, &class))| TaskRecord {
            task_id: i as u64,
            significance: sig,
            class: class.to_string(),
        })
        .collect();
    (rows, achieved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> Arc<Shared> {
        Arc::new(Shared {
            cache: TapeCache::new(4),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            kernel_requests: Default::default(),
            kernel_errors: Default::default(),
            replay: Mutex::new(ReplayStats::default()),
            workers: 1,
            started: Instant::now(),
            windows: Default::default(),
            exemplars: ExemplarRing::new(4, 4),
            trace_counter: AtomicU64::new(1),
        })
    }

    /// Panics while holding `m`, leaving it poisoned.
    fn poison<T: Send>(m: &Mutex<T>) {
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = m.lock().unwrap();
                panic!("deliberate poison");
            });
            assert!(handle.join().is_err());
        });
        assert!(m.is_poisoned(), "mutex must be poisoned for this test");
    }

    #[test]
    fn stats_answers_after_a_panicked_job_poisons_replay_totals() {
        let shared = test_shared();
        // Counters recorded before the "bad job" must survive salvage.
        shared
            .replay
            .lock()
            .unwrap()
            .merge(ReplayStats {
                replays: 7,
                records: 2,
                ..ReplayStats::default()
            });
        shared.requests.fetch_add(3, Ordering::Relaxed);
        poison(&shared.replay);

        // The regression this pins: stats_response used to panic here
        // (`expect("replay totals poisoned")`), taking the daemon's
        // stats/shutdown path down with the one bad worker.
        let stats = shared.stats_response(42);
        assert!(stats.ok);
        assert_eq!(stats.id, 42);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.replay.replays, 7);
        assert_eq!(stats.replay.records, 2);

        // And the merge path salvages too: later good jobs keep
        // accumulating into the poisoned-but-sound counters.
        shared
            .replay
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .merge(ReplayStats {
                replays: 1,
                ..ReplayStats::default()
            });
        assert_eq!(shared.stats_response(43).replay.replays, 8);
    }

    #[test]
    fn worker_loop_drains_jobs_from_a_poisoned_queue() {
        let shared = test_shared();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Mutex::new(job_rx);
        poison(&job_rx);

        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        job_tx
            .send(Job {
                id: 1,
                trace_id: 0x5eed,
                parse_start_ns: 0,
                parse_dur_ns: 0,
                request: AnalyzeRequest {
                    kernel: crate::kernels::KernelRequest::Maclaurin {
                        n: 4,
                        items: vec![0.25],
                    },
                    ratio: 0.5,
                    detail: Detail::Vars,
                },
                reply: reply_tx,
            })
            .expect("queue accepts the job");
        drop(job_tx); // run the worker dry after one job

        worker_loop(&shared, &job_rx);
        let line = reply_rx.recv().expect("worker answered despite poison");
        assert!(line.contains("\"ok\":true"), "bad reply: {line}");
    }
}
