//! Significance-driven task runtime and energy model.
//!
//! Reproduces the OpenMP-like programming model of §3.2 of the CGO'16
//! paper (`#pragma omp task significance(...) approxfun(...) label(...)`
//! plus `#pragma omp taskwait label(...) ratio(...)`) as an explicit Rust
//! API:
//!
//! * [`TaskGroup`] ≙ a `label()` task group;
//! * [`TaskGroup::spawn`] ≙ `#pragma omp task significance(s)
//!   approxfun(f)`;
//! * [`TaskGroup::taskwait`] ≙ `#pragma omp taskwait ratio(r)` — the
//!   single knob of the quality/energy trade-off: at least fraction `r`
//!   of the group's tasks execute their accurate body, most-significant
//!   first; the rest run the approximate body (or are dropped when none
//!   was provided); tasks with significance ≥ 1 always run accurately.
//!
//! Execution happens on a [`Executor`] thread pool. Every task body
//! receives a [`TaskCtx`] through which it reports its work in abstract
//! **work units**; the deterministic [`EnergyModel`] converts the counted
//! units into Joules (see DESIGN.md §5 for why a model replaces the
//! paper's RAPL measurements and what it preserves).
//!
//! The ratio knob can also be put under feedback control: the
//! [`controller`] module provides offline calibration
//! ([`controller::calibrate_ratio`]) and the closed-loop
//! [`controller::adaptive::AdaptiveController`], which
//! [`TaskGroup::taskwait_adaptive`] consults instead of a fixed ratio.
//!
//! # Example
//!
//! The Maclaurin series of Listing 7, one task per term:
//!
//! ```
//! use scorpio_runtime::{Executor, TaskGroup};
//! use std::sync::Mutex;
//!
//! let executor = Executor::new(4);
//! let n = 8usize;
//! let temp = Mutex::new(vec![0.0f64; n]);
//! let x = 0.49f64;
//!
//! let mut group = TaskGroup::new("maclaurin");
//! for i in 1..n {
//!     let temp = &temp;
//!     let significance = (n - i + 1) as f64 / (n + 2) as f64;
//!     group.spawn(
//!         significance,
//!         move |ctx| {
//!             ctx.count_accurate_ops(i as u64);
//!             temp.lock().unwrap()[i] = x.powi(i as i32);
//!         },
//!         Some(move |ctx: &scorpio_runtime::TaskCtx| {
//!             ctx.count_approx_ops(1);
//!             temp.lock().unwrap()[i] = 0.0; // drop the contribution
//!         }),
//!     );
//! }
//! let stats = group.taskwait(&executor, 0.5);
//! assert_eq!(stats.total(), 7);
//! assert!(stats.accurate >= 4); // ceil(0.5 · 7)
//! let result: f64 = 1.0 + temp.lock().unwrap().iter().sum::<f64>();
//! assert!(result > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
mod energy;
mod executor;
pub mod perforation;
mod task;

pub use energy::EnergyModel;
pub use executor::Executor;
pub use task::{ExecMode, ExecutionStats, TaskCtx, TaskGroup};

#[cfg(test)]
mod tests;
