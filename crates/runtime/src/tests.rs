//! Behavioural tests of the ratio knob and scheduling guarantees.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use crate::{EnergyModel, ExecMode, Executor, TaskGroup};

#[test]
fn taskwait_emits_one_event_per_task_plus_summary() {
    let executor = Executor::new(2);
    let mut group = TaskGroup::new("evt-group");
    for i in 0..6 {
        // Even tasks have an approximate body, odd ones will be dropped
        // when not selected as accurate.
        let approx = (i % 2 == 0).then_some(|_: &crate::TaskCtx| {});
        group.spawn(i as f64 / 6.0, |_| {}, approx);
    }
    scorpio_obs::enable();
    let stats = group.taskwait(&executor, 0.5);
    scorpio_obs::disable();
    // Only this group's events: the obs log is process-global and other
    // tests may be tracing concurrently.
    let events: Vec<scorpio_obs::TaskEvent> = scorpio_obs::take_task_events()
        .into_iter()
        .filter(|e| e.label == "evt-group")
        .collect();
    let mut task_ids = Vec::new();
    let mut classes = std::collections::HashMap::new();
    let mut summaries = 0;
    for e in &events {
        match e.kind {
            scorpio_obs::EventKind::Task { task_id, class, .. } => {
                task_ids.push(task_id);
                *classes.entry(class).or_insert(0usize) += 1;
            }
            scorpio_obs::EventKind::Taskwait {
                requested_ratio,
                achieved_ratio,
                accurate,
                approximate,
                dropped,
                ..
            } => {
                summaries += 1;
                assert_eq!(requested_ratio, 0.5);
                assert!((achieved_ratio - stats.accurate as f64 / 6.0).abs() < 1e-12);
                assert_eq!(accurate, stats.accurate as u64);
                assert_eq!(approximate, stats.approximate as u64);
                assert_eq!(dropped, stats.dropped as u64);
            }
            _ => {}
        }
    }
    // One event per spawned task, each task id exactly once, and the
    // class tallies match the returned statistics.
    task_ids.sort_unstable();
    assert_eq!(task_ids, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(summaries, 1);
    let count = |c: scorpio_obs::TaskClass| classes.get(&c).copied().unwrap_or(0);
    assert_eq!(count(scorpio_obs::TaskClass::Accurate), stats.accurate);
    assert_eq!(count(scorpio_obs::TaskClass::Approx), stats.approximate);
    assert_eq!(count(scorpio_obs::TaskClass::Dropped), stats.dropped);
    assert!(stats.dropped > 0, "odd low-significance tasks have no approx body");
}

#[test]
fn ratio_one_runs_everything_accurately() {
    let executor = Executor::new(4);
    let accurate_runs = AtomicUsize::new(0);
    let mut group = TaskGroup::new("g");
    for i in 0..10 {
        let accurate_runs = &accurate_runs;
        group.spawn(
            i as f64 / 10.0,
            move |_| {
                accurate_runs.fetch_add(1, Ordering::Relaxed);
            },
            Some(|_: &crate::TaskCtx| panic!("approx must not run at ratio 1")),
        );
    }
    let stats = group.taskwait(&executor, 1.0);
    assert_eq!(stats.accurate, 10);
    assert_eq!(stats.approximate, 0);
    assert_eq!(accurate_runs.load(Ordering::Relaxed), 10);
}

#[test]
fn ratio_zero_approximates_all_unforced_tasks() {
    let executor = Executor::new(4);
    let mut group = TaskGroup::new("g");
    for i in 0..10 {
        group.spawn(
            i as f64 / 20.0, // all < 1.0
            |_| panic!("accurate must not run at ratio 0"),
            Some(|_: &crate::TaskCtx| {}),
        );
    }
    let stats = group.taskwait(&executor, 0.0);
    assert_eq!(stats.accurate, 0);
    assert_eq!(stats.approximate, 10);
}

#[test]
fn significance_one_forces_accurate_execution() {
    // The Sobel pattern: group A at significance 1.0 always accurate,
    // even at ratio 0 (§4.1.1).
    let executor = Executor::new(2);
    let forced = AtomicUsize::new(0);
    let mut group = TaskGroup::new("sobel");
    for i in 0..9 {
        let forced = &forced;
        let sig = if i % 3 == 0 { 1.0 } else { 0.5 };
        group.spawn(
            sig,
            move |_| {
                forced.fetch_add(1, Ordering::Relaxed);
            },
            Some(|_: &crate::TaskCtx| {}),
        );
    }
    let stats = group.taskwait(&executor, 0.0);
    assert_eq!(stats.accurate, 3);
    assert_eq!(forced.load(Ordering::Relaxed), 3);
}

#[test]
fn most_significant_tasks_run_accurately_first() {
    let executor = Executor::new(2);
    // Declared before the group: the group's task closures borrow it.
    let accurate_ids = Mutex::new(Vec::new());
    let mut group = TaskGroup::new("g");
    for i in 0..10usize {
        let accurate_ids = &accurate_ids;
        group.spawn(
            i as f64 / 10.0, // significance rises with i
            move |_| accurate_ids.lock().unwrap().push(i),
            Some(|_: &crate::TaskCtx| {}),
        );
    }
    let stats = group.taskwait(&executor, 0.3);
    assert_eq!(stats.accurate, 3);
    let mut ids = accurate_ids.into_inner().unwrap();
    ids.sort_unstable();
    // ceil(0.3·10) = 3 accurate slots → the three most significant: 7, 8, 9.
    assert_eq!(ids, vec![7, 8, 9]);
}

#[test]
fn dropped_tasks_have_no_approx_body() {
    let executor = Executor::new(2);
    let mut group = TaskGroup::new("g");
    for _ in 0..4 {
        group.spawn(0.1, |_| {}, None::<fn(&crate::TaskCtx)>);
    }
    let stats = group.taskwait(&executor, 0.5);
    // ceil(0.5·4) = 2 accurate; the other 2 have no approx body → dropped.
    assert_eq!(stats.accurate, 2);
    assert_eq!(stats.approximate, 0);
    assert_eq!(stats.dropped, 2);
    assert_eq!(stats.total(), 4);
}

#[test]
fn work_units_are_accumulated_per_mode() {
    let executor = Executor::new(4);
    let mut group = TaskGroup::new("g");
    for _ in 0..6 {
        group.spawn(
            0.5,
            |ctx: &crate::TaskCtx| {
                assert_eq!(ctx.mode(), ExecMode::Accurate);
                ctx.count_accurate_ops(100);
            },
            Some(|ctx: &crate::TaskCtx| {
                assert_eq!(ctx.mode(), ExecMode::Approximate);
                ctx.count_approx_ops(10);
            }),
        );
    }
    let stats = group.taskwait(&executor, 0.5);
    assert_eq!(stats.accurate, 3);
    assert_eq!(stats.approximate, 3);
    assert_eq!(stats.accurate_ops, 300);
    assert_eq!(stats.approx_ops, 30);
}

#[test]
fn empty_group_is_fine() {
    let executor = Executor::new(2);
    let group = TaskGroup::new("empty");
    let stats = group.taskwait(&executor, 0.5);
    assert_eq!(stats.total(), 0);
}

#[test]
fn tasks_can_write_disjoint_borrowed_buffers() {
    let executor = Executor::new(4);
    let mut out = vec![0.0f64; 16];
    {
        let mut group = TaskGroup::new("g");
        for (i, chunk) in out.chunks_mut(4).enumerate() {
            group.spawn_accurate(move |_| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (i * 4 + j) as f64;
                }
            });
        }
        let stats = group.taskwait(&executor, 1.0);
        assert_eq!(stats.accurate, 4);
    }
    let want: Vec<f64> = (0..16).map(|i| i as f64).collect();
    assert_eq!(out, want);
}

#[test]
fn task_panic_propagates_to_taskwait() {
    // A panicking task body must not be swallowed: thread::scope re-raises
    // it at the join, so taskwait (and the whole run) fails loudly rather
    // than returning corrupt output.
    let result = std::panic::catch_unwind(|| {
        let executor = Executor::new(2);
        let mut group = TaskGroup::new("g");
        group.spawn_accurate(|_| panic!("task body exploded"));
        let _ = group.taskwait(&executor, 1.0);
    });
    assert!(result.is_err());
}

#[test]
fn stats_merge_adds_fields() {
    let mut a = crate::ExecutionStats {
        accurate: 1,
        approximate: 2,
        dropped: 3,
        accurate_ops: 10,
        approx_ops: 20,
    };
    let b = a.clone();
    a.merge(&b);
    assert_eq!(a.accurate, 2);
    assert_eq!(a.dropped, 6);
    assert_eq!(a.approx_ops, 40);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The ratio guarantee: at least ceil(ratio · n) accurate tasks, and
    /// the accurate set is significance-maximal.
    #[test]
    fn ratio_guarantee(n in 1usize..40, ratio in 0.0f64..=1.0, seed in 0u64..1000) {
        let executor = Executor::new(3);
        // Deterministic pseudo-random significances < 1.0.
        let sig = |i: usize| {
            let h = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
            ((h >> 33) % 1000) as f64 / 1001.0
        };
        let executed = Mutex::new(Vec::new());
        let mut group = TaskGroup::new("g");
        for i in 0..n {
            let executed = &executed;
            group.spawn(
                sig(i),
                move |_| executed.lock().unwrap().push(i),
                Some(|_: &crate::TaskCtx| {}),
            );
        }
        let stats = group.taskwait(&executor, ratio);
        let min_acc = (ratio * n as f64).ceil() as usize;
        prop_assert!(stats.accurate >= min_acc);
        prop_assert_eq!(stats.accurate + stats.approximate, n);

        // Significance-maximality: every accurate task is at least as
        // significant as every approximated task.
        let accurate: Vec<usize> = executed.into_inner().unwrap();
        let min_acc_sig = accurate.iter().map(|&i| sig(i)).fold(f64::INFINITY, f64::min);
        for i in 0..n {
            if !accurate.contains(&i) {
                prop_assert!(sig(i) <= min_acc_sig + 1e-12);
            }
        }
    }

    /// Ties break deterministically by spawn order: among equal
    /// significances, the earliest-spawned tasks win the accurate slots.
    /// With ALL significances equal the accurate set must be exactly the
    /// spawn-order prefix {0, …, ceil(ratio·n)−1}, identically on every run.
    #[test]
    fn tie_break_is_deterministic_by_spawn_order(
        n in 2usize..30,
        ratio in 0.05f64..0.95,
        sig in 0.0f64..1.0,
    ) {
        let executor = Executor::new(3);
        let run = || {
            let executed = Mutex::new(Vec::new());
            let mut group = TaskGroup::new("g");
            for i in 0..n {
                let executed = &executed;
                group.spawn(
                    sig,
                    move |_| executed.lock().unwrap().push(i),
                    Some(|_: &crate::TaskCtx| {}),
                );
            }
            let stats = group.taskwait(&executor, ratio);
            let mut accurate = executed.into_inner().unwrap();
            accurate.sort_unstable();
            (stats.accurate, accurate)
        };
        let min_acc = (ratio * n as f64).ceil() as usize;
        let (count_a, set_a) = run();
        let (count_b, set_b) = run();
        prop_assert_eq!(count_a, min_acc);
        // The winners are the first ceil(ratio·n) spawned, nothing else.
        let want: Vec<usize> = (0..min_acc).collect();
        prop_assert_eq!(&set_a, &want);
        // And a second identical run selects the identical set.
        prop_assert_eq!(count_b, count_a);
        prop_assert_eq!(set_b, set_a);
    }

    /// Energy is monotone non-increasing as ratio decreases, whenever
    /// approximate bodies do less work than accurate ones.
    #[test]
    fn energy_monotone_in_ratio(n in 4usize..24) {
        let executor = Executor::new(2);
        let model = EnergyModel::xeon_e5_2695v3();
        let run = |ratio: f64| {
            let mut group = TaskGroup::new("g");
            for i in 0..n {
                group.spawn(
                    i as f64 / n as f64,
                    |ctx: &crate::TaskCtx| ctx.count_accurate_ops(1000),
                    Some(|ctx: &crate::TaskCtx| ctx.count_approx_ops(100)),
                );
            }
            model.energy(&group.taskwait(&executor, ratio))
        };
        let e0 = run(0.0);
        let e5 = run(0.5);
        let e1 = run(1.0);
        prop_assert!(e0 <= e5 + 1e-12);
        prop_assert!(e5 <= e1 + 1e-12);
    }
}
