//! Deterministic energy model.
//!
//! The paper measures package energy with RAPL on a 14-core Intel Xeon
//! E5-2695 v3; that hardware (and RAPL access) is a measurement gate in
//! this environment, so we substitute a deterministic model priced from
//! the work units tasks report (DESIGN.md §5). The Fig. 7 *shapes* — the
//! monotone energy/ratio relationship, the task-runtime overhead that
//! makes loop perforation cheaper on Sobel/Fisheye, and the
//! quality-per-Joule advantage of significance-driven approximation —
//! depend only on relative op counts and overheads, which the model
//! preserves exactly; the absolute Joule scale comes from the calibration
//! constants below.

use crate::task::ExecutionStats;

/// Converts counted work units into energy and time.
///
/// ```
/// use scorpio_runtime::{EnergyModel, ExecutionStats};
///
/// let model = EnergyModel::xeon_e5_2695v3();
/// let mut full = ExecutionStats::default();
/// full.accurate = 100;
/// full.accurate_ops = 1_000_000;
/// let mut approx = full.clone();
/// approx.accurate = 20;
/// approx.approximate = 80;
/// approx.accurate_ops = 200_000;
/// approx.approx_ops = 160_000;
/// // Approximate execution costs less energy.
/// assert!(model.energy(&approx) < model.energy(&full));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Joules per accurate work unit (dynamic energy of the full-precision
    /// op mix).
    pub energy_per_accurate_op: f64,
    /// Joules per approximate work unit (cheaper op mix: fastmath, fewer
    /// memory touches).
    pub energy_per_approx_op: f64,
    /// Joules of runtime overhead per executed task (scheduling, closure
    /// dispatch) — this term is what lets perforation beat the task-based
    /// version on kernels with tiny tasks (§4.3).
    pub energy_per_task: f64,
    /// Modeled package static + uncore power in Watts, charged over the
    /// modeled execution time.
    pub static_power: f64,
    /// Seconds per accurate work unit on one core.
    pub seconds_per_accurate_op: f64,
    /// Seconds per approximate work unit on one core.
    pub seconds_per_approx_op: f64,
    /// Seconds of per-task scheduling latency.
    pub seconds_per_task: f64,
    /// Cores sharing the work (the paper's machine has 14).
    pub threads: usize,
}

impl EnergyModel {
    /// Calibration for the paper's Intel Xeon E5-2695 v3 (14 cores,
    /// 2.3 GHz, 120 W TDP). One work unit ≈ one kernel inner-loop
    /// iteration (tens of flops + memory traffic); the constants put a
    /// fully accurate benchmark run in the paper's tens-to-thousands of
    /// Joules range.
    pub fn xeon_e5_2695v3() -> EnergyModel {
        EnergyModel {
            energy_per_accurate_op: 40e-9,
            energy_per_approx_op: 12e-9,
            energy_per_task: 1e-6,
            static_power: 60.0,
            seconds_per_accurate_op: 8e-9,
            seconds_per_approx_op: 2.5e-9,
            seconds_per_task: 0.3e-6,
            threads: 14,
        }
    }

    /// Modeled wall-clock time in seconds for the executed work. Task
    /// dispatch overlaps across workers, so both compute and per-task
    /// latency divide by the thread count.
    pub fn time(&self, stats: &ExecutionStats) -> f64 {
        let compute = stats.accurate_ops as f64 * self.seconds_per_accurate_op
            + stats.approx_ops as f64 * self.seconds_per_approx_op;
        let overhead =
            (stats.accurate + stats.approximate) as f64 * self.seconds_per_task;
        (compute + overhead) / self.threads as f64
    }

    /// Modeled energy in Joules: dynamic op energy + per-task runtime
    /// overhead + static power over the modeled time.
    pub fn energy(&self, stats: &ExecutionStats) -> f64 {
        let dynamic = stats.accurate_ops as f64 * self.energy_per_accurate_op
            + stats.approx_ops as f64 * self.energy_per_approx_op;
        let task_overhead =
            (stats.accurate + stats.approximate) as f64 * self.energy_per_task;
        dynamic + task_overhead + self.static_power * self.time(stats)
    }

    /// Energy of `stats` relative to a reference execution (e.g. the
    /// fully accurate run): `1 − energy/reference_energy`, the "energy
    /// reduction" percentages of §4.3.
    pub fn energy_reduction(&self, stats: &ExecutionStats, reference: &ExecutionStats) -> f64 {
        let e = self.energy(stats);
        let r = self.energy(reference);
        if r == 0.0 {
            0.0
        } else {
            1.0 - e / r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(acc_tasks: usize, apx_tasks: usize, acc_ops: u64, apx_ops: u64) -> ExecutionStats {
        ExecutionStats {
            accurate: acc_tasks,
            approximate: apx_tasks,
            dropped: 0,
            accurate_ops: acc_ops,
            approx_ops: apx_ops,
        }
    }

    #[test]
    fn energy_monotone_in_work() {
        let m = EnergyModel::xeon_e5_2695v3();
        let small = stats(10, 0, 1_000, 0);
        let large = stats(10, 0, 100_000, 0);
        assert!(m.energy(&large) > m.energy(&small));
    }

    #[test]
    fn approx_ops_cheaper_than_accurate() {
        let m = EnergyModel::xeon_e5_2695v3();
        let acc = stats(10, 0, 50_000, 0);
        let apx = stats(0, 10, 0, 50_000);
        assert!(m.energy(&apx) < m.energy(&acc));
    }

    #[test]
    fn task_overhead_visible_for_tiny_tasks() {
        let m = EnergyModel::xeon_e5_2695v3();
        // Same ops split into many vs few tasks: many tasks cost more.
        let few = stats(10, 0, 10_000, 0);
        let many = stats(10_000, 0, 10_000, 0);
        assert!(m.energy(&many) > m.energy(&few));
    }

    #[test]
    fn energy_reduction_is_relative() {
        let m = EnergyModel::xeon_e5_2695v3();
        let full = stats(100, 0, 1_000_000, 0);
        let approx = stats(20, 80, 200_000, 80_000);
        let red = m.energy_reduction(&approx, &full);
        assert!(red > 0.0 && red < 1.0);
        assert_eq!(m.energy_reduction(&full, &full), 0.0);
    }

    #[test]
    fn time_scales_with_threads() {
        let mut m = EnergyModel::xeon_e5_2695v3();
        let s = stats(1, 0, 1_000_000, 0);
        let t14 = m.time(&s);
        m.threads = 1;
        let t1 = m.time(&s);
        assert!(t1 > 10.0 * t14);
    }
}
