//! Closed-loop adaptive ratio control: the online counterpart of
//! [`calibrate_ratio`](super::calibrate_ratio).
//!
//! The calibrator bisects offline against a repeatable evaluation; this
//! module closes the loop at run time instead, in the direction of the
//! follow-on runtime work (Vassiliadis et al., arXiv 1412.5150) and "On
//! Dynamic Precision Scaling" (arXiv 1709.06160): a per-task-group
//! [`AdaptiveController`] that nudges the `taskwait` ratio after every
//! execution toward an explicit [`Objective`] — a quality floor at
//! minimum energy, or an energy budget at maximum quality.
//!
//! # Control law
//!
//! The controller is a damped proportional step rule over a shrinking
//! **feasibility bracket**, built to be safe on the shapes real QoR
//! curves take (monotone ramps, hard steps from task quantisation, flat
//! plateaus) and on broken quality signals:
//!
//! * **Bracketing.** Every finite observation classifies the current
//!   ratio as *met* or *missed* and tightens a `[lo, hi]` bracket
//!   (quality is monotone in the ratio by construction of the
//!   significance-ranked schedule). Steps never leave the bracket, so
//!   the controller cannot oscillate across the whole knob range; a
//!   contradicting observation (phase change, noise) deterministically
//!   re-opens the bracket on the contradicted side instead of
//!   panicking or diverging.
//! * **Damped steps with hysteresis.** Step size is proportional to the
//!   normalised target error, clamped to `[min_step, max_step]`, and a
//!   damping factor halves on every direction flip (and slowly
//!   recovers), so noisy plateaus shrink the step instead of exciting
//!   it. Observations that meet the target within the `hysteresis`
//!   band hold the ratio rather than chasing the last decimal.
//! * **Clamped output.** The ratio is always in `[0, 1]`; a target
//!   unreachable even at ratio 1 (or trivially met at 0) pins the knob
//!   at the endpoint and converges there rather than winding up.
//! * **NaN immunity.** Non-finite quality signals are counted
//!   ([`AdaptiveController::non_finite_observations`]), reported as
//!   [`DecisionKind::NonFinite`], and otherwise ignored — they move
//!   nothing.
//!
//! Convergence is declared (and latched, until the live signal clearly
//! contradicts it) when the bracket is narrower than `ratio_tolerance`
//! with the target met, or after `settle` consecutive holds.
//!
//! Every decision is appended to an in-memory log **and** emitted as a
//! `ratio_decision` task event (see `scorpio-obs`), so controller
//! behaviour lands on the same timeline as the tasks it governed and is
//! exported in run manifests. The whole law is deterministic: no
//! clocks, no randomness — a fixed observation sequence always yields
//! the same decision sequence.
//!
//! # Example
//!
//! ```
//! use scorpio_runtime::controller::adaptive::{AdaptiveController, Objective};
//! use scorpio_runtime::controller::QualityTarget;
//!
//! let mut ctrl = AdaptiveController::new(
//!     "sobel",
//!     Objective::Quality(QualityTarget::AtLeast(30.0)),
//! );
//! // Seed from an offline QoR curve (ratio, PSNR) — the prior puts the
//! // first probe near the interpolated crossing instead of at 0.5.
//! ctrl.seed_from_curve(&[(0.0, 20.0), (0.5, 28.0), (1.0, 44.0)]);
//! // Closed loop: run at the commanded ratio, feed back the measured
//! // quality (the synthetic app here ramps 20 → 44 dB).
//! for _ in 0..32 {
//!     let quality = 20.0 + 24.0 * ctrl.ratio();
//!     ctrl.observe(quality);
//!     if ctrl.converged() {
//!         break;
//!     }
//! }
//! assert!(ctrl.converged());
//! assert!((20.0 + 24.0 * ctrl.ratio()) >= 30.0 - 1e-9);
//! ```

use std::fmt;

use super::QualityTarget;
use crate::task::ExecutionStats;

/// What the controller steers toward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Meet a quality target at minimum energy: the controller seeks
    /// the **lowest** ratio whose quality satisfies the target.
    Quality(QualityTarget),
    /// Stay under an energy budget (same units as the observed signal,
    /// e.g. modelled Joules) at maximum quality: the controller seeks
    /// the **highest** ratio whose energy stays within the budget.
    EnergyBudget(f64),
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Quality(t) => write!(f, "quality {t}"),
            Objective::EnergyBudget(b) => write!(f, "energy ≤ {b} J"),
        }
    }
}

/// Tuning knobs of the control law. [`AdaptiveConfig::default`] is the
/// configuration every harness uses; the fields exist for tests and for
/// callers with unusually cheap or expensive evaluations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Proportional gain on the normalised target error.
    pub gain: f64,
    /// Relative error band (on the met side) inside which the ratio is
    /// held instead of stepped.
    pub hysteresis: f64,
    /// Smallest nonzero step (keeps progress on shallow slopes).
    pub min_step: f64,
    /// Largest single step (bounds overshoot on steep slopes).
    pub max_step: f64,
    /// Bracket width below which (with the target met) convergence is
    /// declared.
    pub ratio_tolerance: f64,
    /// Consecutive held observations after which convergence is
    /// declared even with a wide bracket (flat/plateau curves).
    pub settle: u32,
    /// Ratio commanded before any observation or seeding.
    pub initial_ratio: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            gain: 0.5,
            hysteresis: 0.05,
            min_step: 0.01,
            max_step: 0.25,
            ratio_tolerance: 0.02,
            settle: 2,
            initial_ratio: 0.5,
        }
    }
}

/// What the controller did with one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// The ratio moved.
    Stepped,
    /// The ratio was held (in-band, or pinned by the bracket/endpoints).
    Held,
    /// The signal was non-finite and was discarded.
    NonFinite,
    /// This observation latched convergence.
    Converged,
}

impl DecisionKind {
    /// Stable lowercase name (matches the obs event encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Stepped => "stepped",
            DecisionKind::Held => "held",
            DecisionKind::NonFinite => "non_finite",
            DecisionKind::Converged => "converged",
        }
    }

    fn class(self) -> scorpio_obs::DecisionClass {
        match self {
            DecisionKind::Stepped => scorpio_obs::DecisionClass::Stepped,
            DecisionKind::Held => scorpio_obs::DecisionClass::Held,
            DecisionKind::NonFinite => scorpio_obs::DecisionClass::NonFinite,
            DecisionKind::Converged => scorpio_obs::DecisionClass::Converged,
        }
    }
}

/// One entry of the controller's decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioDecision {
    /// 0-based observation index.
    pub step: u64,
    /// Ratio in force when the observation arrived.
    pub ratio_before: f64,
    /// Ratio after the decision.
    pub ratio_after: f64,
    /// The raw observed signal (NaN preserved for non-finite entries).
    pub signal: f64,
    /// `accurate / total` of the most recent recorded execution, if
    /// [`AdaptiveController::record_execution`] was called.
    pub achieved_ratio: Option<f64>,
    /// What happened.
    pub kind: DecisionKind,
}

/// Closed-loop controller for one task group's `taskwait` ratio.
///
/// Drive it with the two-phase pattern (see
/// [`TaskGroup::taskwait_adaptive`](crate::TaskGroup::taskwait_adaptive)):
///
/// 1. execute the group at [`AdaptiveController::ratio`] (which also
///    [records](AdaptiveController::record_execution) the achieved
///    schedule), then
/// 2. measure (or cheaply proxy) the output quality and feed it to
///    [`AdaptiveController::observe`] — `observe` *is* the probe hook:
///    anything that returns an `f64` correlated with output quality
///    (full PSNR, a sampled-pixel PSNR, a residual norm) closes the
///    loop.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    label: String,
    objective: Objective,
    cfg: AdaptiveConfig,
    /// Internal knob in *met-increases-with-u* orientation: `u = ratio`
    /// for quality objectives, `u = 1 − ratio` for energy budgets.
    u: f64,
    /// Highest u observed missing the objective (bracket floor).
    lo: f64,
    /// Lowest u observed meeting the objective (bracket ceiling).
    hi: f64,
    /// Whether `lo` comes from a live observation (vs the initial 0).
    lo_observed: bool,
    /// Whether `hi` comes from a live observation (vs the initial 1).
    hi_observed: bool,
    damping: f64,
    last_direction: f64,
    settled: u32,
    steps: u64,
    non_finite: u64,
    converged: bool,
    converged_at: Option<u64>,
    last_achieved: Option<f64>,
    decisions: Vec<RatioDecision>,
}

impl AdaptiveController {
    /// Creates a controller with the [default](AdaptiveConfig::default)
    /// configuration. The label names the task group in emitted
    /// `ratio_decision` events.
    pub fn new(label: impl Into<String>, objective: Objective) -> AdaptiveController {
        AdaptiveController::with_config(label, objective, AdaptiveConfig::default())
    }

    /// Creates a controller with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if any step/tolerance knob is non-finite or out of its
    /// documented range.
    pub fn with_config(
        label: impl Into<String>,
        objective: Objective,
        cfg: AdaptiveConfig,
    ) -> AdaptiveController {
        assert!(
            cfg.gain.is_finite() && cfg.gain > 0.0,
            "gain must be positive and finite"
        );
        assert!(
            cfg.hysteresis.is_finite() && cfg.hysteresis >= 0.0,
            "hysteresis must be non-negative and finite"
        );
        assert!(
            cfg.min_step.is_finite() && cfg.min_step > 0.0 && cfg.min_step <= cfg.max_step,
            "need 0 < min_step <= max_step"
        );
        assert!(
            cfg.max_step.is_finite() && cfg.max_step <= 1.0,
            "max_step must be finite and at most 1"
        );
        assert!(
            cfg.ratio_tolerance.is_finite() && cfg.ratio_tolerance > 0.0,
            "ratio_tolerance must be positive and finite"
        );
        assert!(cfg.settle >= 1, "settle must be at least 1");
        assert!(
            (0.0..=1.0).contains(&cfg.initial_ratio),
            "initial_ratio must be within [0, 1]"
        );
        let met_at_high = matches!(objective, Objective::Quality(_));
        let u = if met_at_high {
            cfg.initial_ratio
        } else {
            1.0 - cfg.initial_ratio
        };
        AdaptiveController {
            label: label.into(),
            objective,
            cfg,
            u,
            lo: 0.0,
            hi: 1.0,
            lo_observed: false,
            hi_observed: false,
            damping: 1.0,
            last_direction: 0.0,
            settled: 0,
            steps: 0,
            non_finite: 0,
            converged: false,
            converged_at: None,
            last_achieved: None,
            decisions: Vec::new(),
        }
    }

    /// `ratio → u` for this objective's orientation (metness is
    /// non-decreasing in `u`). The transform is its own inverse.
    fn to_u(&self, ratio: f64) -> f64 {
        match self.objective {
            Objective::Quality(_) => ratio,
            Objective::EnergyBudget(_) => 1.0 - ratio,
        }
    }

    /// Normalised objective error: positive ⇒ missed (need more `u`),
    /// negative ⇒ met with margin `-e`.
    fn error(&self, signal: f64) -> f64 {
        let (reference, raw) = match self.objective {
            Objective::Quality(QualityTarget::AtLeast(t)) => (t, t - signal),
            Objective::Quality(QualityTarget::AtMost(t)) => (t, signal - t),
            Objective::EnergyBudget(b) => (b, signal - b),
        };
        raw / reference.abs().max(1e-9)
    }

    /// The task-group label decisions are emitted under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The objective being steered toward.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The ratio to command on the next `taskwait`. Always in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        self.to_u(self.u)
    }

    /// `true` once convergence is latched (it unlatches only when a
    /// later observation clearly contradicts the converged operating
    /// point — a phase change).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The observation index at which convergence latched, if it has.
    pub fn converged_at(&self) -> Option<u64> {
        self.converged_at
    }

    /// Number of observations processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of non-finite observations discarded so far.
    pub fn non_finite_observations(&self) -> u64 {
        self.non_finite
    }

    /// The full decision log, in observation order.
    pub fn decisions(&self) -> &[RatioDecision] {
        &self.decisions
    }

    /// Seeds the starting ratio from an offline QoR prior: `(ratio,
    /// signal)` points, e.g. one kernel's curve out of `BENCH_qor.json`.
    /// The seed is the inverse-interpolated cheapest point meeting the
    /// objective (plus a `min_step` safety margin on the met side);
    /// non-finite prior points are skipped. The feasibility bracket is
    /// deliberately *not* tightened — the prior may come from another
    /// workload size, so only live feedback narrows it.
    pub fn seed_from_curve(&mut self, curve: &[(f64, f64)]) {
        let mut pts: Vec<(f64, f64)> = curve
            .iter()
            .filter(|(r, s)| r.is_finite() && s.is_finite() && (0.0..=1.0).contains(r))
            .map(|&(r, s)| (self.to_u(r), s))
            .collect();
        if pts.is_empty() {
            return;
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let met = |s: f64| self.error(s) <= 0.0;
        let first_met = pts.iter().position(|&(_, s)| met(s));
        let seed_u = match first_met {
            None => 1.0,
            Some(0) => 0.0,
            Some(i) => {
                let (u0, s0) = pts[i - 1];
                let (u1, s1) = pts[i];
                // Interpolate the error zero-crossing between the last
                // missed and first met prior points.
                let e0 = self.error(s0);
                let e1 = self.error(s1);
                let t = if (e0 - e1).abs() > 1e-12 {
                    (e0 / (e0 - e1)).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                u0 + t * (u1 - u0)
            }
        };
        self.u = (seed_u + self.cfg.min_step).clamp(0.0, 1.0);
    }

    /// Records the schedule one `taskwait` actually delivered; the
    /// achieved accurate fraction is attached to the next decision (and
    /// its manifest event) so requested-vs-achieved drift is visible in
    /// the log.
    pub fn record_execution(&mut self, stats: &ExecutionStats) {
        let total = stats.total();
        if total > 0 {
            self.last_achieved = Some(stats.accurate as f64 / total as f64);
        }
    }

    /// Feeds back one quality (or energy) observation measured at the
    /// currently commanded ratio and advances the control law. Returns
    /// the decision taken; the same record is appended to
    /// [`decisions`](AdaptiveController::decisions) and emitted as a
    /// `ratio_decision` event when tracing is enabled.
    pub fn observe(&mut self, signal: f64) -> RatioDecision {
        let step_idx = self.steps;
        self.steps += 1;
        let before = self.ratio();

        let kind = if !signal.is_finite() {
            // NaN/∞ must not steer the loop: count, report, hold.
            self.non_finite += 1;
            DecisionKind::NonFinite
        } else {
            self.advance(signal)
        };

        let decision = RatioDecision {
            step: step_idx,
            ratio_before: before,
            ratio_after: self.ratio(),
            signal,
            achieved_ratio: self.last_achieved,
            kind,
        };
        scorpio_obs::ratio_decision_event(
            &self.label,
            decision.step,
            decision.ratio_before,
            decision.ratio_after,
            decision.signal,
            kind.class(),
        );
        self.decisions.push(decision.clone());
        decision
    }

    /// The control law proper, for a finite signal. Returns what
    /// happened to the ratio.
    fn advance(&mut self, signal: f64) -> DecisionKind {
        let u = self.u;
        let e = self.error(signal);
        let met = e <= 0.0;

        // Tighten (or, on contradiction, re-open) the feasibility
        // bracket. Monotonicity gives: met at u ⇒ met everywhere above,
        // missed at u ⇒ missed everywhere below.
        if met {
            if u <= self.lo {
                // Contradicts an earlier "missed" at or above u: a
                // phase change made the objective easier. Re-open the
                // floor so the controller can walk down again.
                self.lo = (u - self.cfg.max_step).max(0.0);
                self.lo_observed = false;
            }
            self.hi = self.hi.min(u);
            self.hi_observed = true;
        } else {
            if u >= self.hi {
                // Contradicts an earlier "met" at or below u: the
                // objective got harder. Re-open the ceiling.
                self.hi = (u + self.cfg.max_step).min(1.0);
                self.hi_observed = false;
            }
            self.lo = self.lo.max(u);
            self.lo_observed = true;
        }

        let in_band = met && -e <= self.cfg.hysteresis;
        let width_ok = (self.hi - self.lo) <= self.cfg.ratio_tolerance;
        // Met inside the hysteresis band, or met with the bracket
        // already narrower than the tolerance (there is provably
        // nothing usefully cheaper): hold — stepping out of a met
        // point the bracket has pinned down would only bounce back.
        let kind = if in_band || (met && width_ok) {
            self.settled += 1;
            DecisionKind::Held
        } else {
            // Out of band: step toward the boundary, damped and
            // bracket-clamped.
            let direction = if met { -1.0 } else { 1.0 };
            if self.last_direction != 0.0 && direction != self.last_direction {
                self.damping = (self.damping * 0.5).max(1.0 / 16.0);
            } else {
                self.damping = (self.damping * 1.5).min(1.0);
            }
            self.last_direction = direction;
            let magnitude = (self.cfg.gain * self.damping * e.abs())
                .clamp(self.cfg.min_step, self.cfg.max_step);
            let mut next = (u + direction * magnitude)
                .clamp(0.0, 1.0)
                .clamp(self.lo.min(self.hi), self.hi);
            // A proportional step that lands back on an already-probed
            // bracket end would ping-pong forever on hard step curves;
            // once both ends are live observations, probe the interior
            // midpoint instead (bisection), halving the bracket.
            let width = self.hi - self.lo;
            if self.lo_observed
                && self.hi_observed
                && width > self.cfg.ratio_tolerance
                && (next <= self.lo + 1e-12 || next >= self.hi - 1e-12)
            {
                next = 0.5 * (self.lo + self.hi);
            }
            if (next - u).abs() < 1e-12 {
                // Pinned by the bracket or a [0, 1] endpoint (e.g. the
                // target is unreachable even at ratio 1).
                self.settled += 1;
                DecisionKind::Held
            } else {
                self.u = next;
                self.settled = 0;
                DecisionKind::Stepped
            }
        };

        let clearly_out = !met || -e > self.cfg.hysteresis;
        if self.converged && clearly_out && kind == DecisionKind::Stepped {
            // Phase change: the latched operating point no longer
            // holds and the law actually moved. Re-adapt.
            self.converged = false;
            self.converged_at = None;
            self.damping = 1.0;
            return kind;
        }
        if !self.converged
            && ((met && width_ok)
                || (kind == DecisionKind::Held && self.settled >= self.cfg.settle))
        {
            self.converged = true;
            self.converged_at = Some(self.steps - 1);
            return DecisionKind::Converged;
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quality_ctrl(target: f64) -> AdaptiveController {
        AdaptiveController::new("test", Objective::Quality(QualityTarget::AtLeast(target)))
    }

    /// Drives the loop against a deterministic quality function until
    /// convergence (or `max` steps) and returns the step count.
    fn drive(ctrl: &mut AdaptiveController, mut quality: impl FnMut(f64, u64) -> f64, max: u64) -> u64 {
        for i in 0..max {
            let q = quality(ctrl.ratio(), i);
            ctrl.observe(q);
            if ctrl.converged() {
                return i + 1;
            }
        }
        max
    }

    #[test]
    fn converges_on_monotone_ramp() {
        // PSNR ramps 20 → 60 dB; target ≥ 30 crosses at ratio 0.25.
        let mut c = quality_ctrl(30.0);
        let steps = drive(&mut c, |r, _| 20.0 + 40.0 * r, 64);
        assert!(c.converged(), "no convergence in {steps} steps");
        let q = 20.0 + 40.0 * c.ratio();
        assert!(q >= 30.0 - 1e-9, "target missed at {q}");
        // Minimum energy: it should not sit far above the crossing.
        assert!(c.ratio() <= 0.25 + 0.2, "wasteful ratio {}", c.ratio());
        assert!(steps <= 32, "took {steps} steps");
    }

    #[test]
    fn converges_on_step_curve_without_oscillating() {
        // Hard step at 0.6 — the shape task quantisation produces.
        let mut c = quality_ctrl(50.0);
        let steps = drive(&mut c, |r, _| if r >= 0.6 { 100.0 } else { 0.0 }, 64);
        assert!(c.converged(), "no convergence in {steps} steps");
        assert!(c.ratio() >= 0.6 - 1e-9, "below the step: {}", c.ratio());
        assert!(c.ratio() <= 0.7, "overshoot persisted: {}", c.ratio());
        // Once converged, further identical feedback never moves it.
        let settled = c.ratio();
        for _ in 0..8 {
            let q = if c.ratio() >= 0.6 { 100.0 } else { 0.0 };
            let d = c.observe(q);
            assert_ne!(d.kind, DecisionKind::Stepped, "oscillated after latch");
        }
        assert_eq!(c.ratio(), settled);
    }

    #[test]
    fn hysteresis_tames_noisy_non_monotone_quality() {
        // Deterministic "noise": ±1.5 dB triangle wave on top of the
        // ramp, non-monotone in both ratio and time.
        let noise = |i: u64| match i % 4 {
            0 => 1.5,
            1 => -1.5,
            2 => 0.75,
            _ => -0.75,
        };
        let mut c = quality_ctrl(30.0);
        drive(&mut c, |r, i| 20.0 + 40.0 * r + noise(i), 64);
        // The loop must stay sane: clamped ratio, and an operating
        // point in the neighbourhood of the true crossing (0.25).
        assert!((0.0..=1.0).contains(&c.ratio()));
        assert!(
            (c.ratio() - 0.25).abs() <= 0.25,
            "ran away to {}",
            c.ratio()
        );
        // Damping must have shrunk steps: the last few decisions are
        // small or holds.
        let tail = &c.decisions()[c.decisions().len().saturating_sub(4)..];
        for d in tail {
            assert!(
                (d.ratio_after - d.ratio_before).abs() <= AdaptiveConfig::default().max_step / 2.0,
                "late step too large: {d:?}"
            );
        }
    }

    #[test]
    fn unreachable_target_pins_at_one_and_converges() {
        let mut c = quality_ctrl(50.0);
        let steps = drive(&mut c, |_, _| 10.0, 64);
        assert_eq!(c.ratio(), 1.0, "must pin at the accurate endpoint");
        assert!(c.converged(), "no convergence in {steps} steps");
    }

    #[test]
    fn trivially_met_target_pins_at_zero_and_converges() {
        let mut c = quality_ctrl(50.0);
        let steps = drive(&mut c, |_, _| 1000.0, 64);
        assert_eq!(c.ratio(), 0.0, "must pin at the cheapest endpoint");
        assert!(c.converged(), "no convergence in {steps} steps");
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let run = || {
            let mut c = quality_ctrl(30.0);
            c.seed_from_curve(&[(0.0, 20.0), (0.5, 40.0), (1.0, 60.0)]);
            let quality = |r: f64, i: u64| 20.0 + 40.0 * r + if i.is_multiple_of(2) { 0.5 } else { -0.5 };
            drive(&mut c, quality, 48);
            c.decisions().to_vec()
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same event stream must give same decisions");
    }

    #[test]
    fn nan_signals_are_counted_and_move_nothing() {
        let mut c = quality_ctrl(30.0);
        let mut i = 0u64;
        // Every third observation is NaN.
        let steps = drive(
            &mut c,
            move |r, _| {
                i += 1;
                if i.is_multiple_of(3) {
                    f64::NAN
                } else {
                    20.0 + 40.0 * r
                }
            },
            96,
        );
        assert!(c.converged(), "no convergence in {steps} steps");
        assert!(c.non_finite_observations() > 0);
        for d in c.decisions() {
            if d.signal.is_nan() {
                assert_eq!(d.kind, DecisionKind::NonFinite);
                assert_eq!(d.ratio_before, d.ratio_after, "NaN moved the ratio");
            }
        }
        assert!(20.0 + 40.0 * c.ratio() >= 30.0 - 1e-9);
    }

    #[test]
    fn energy_budget_seeks_highest_affordable_ratio() {
        // Energy rises 1 → 10 J with ratio; budget 5.5 J ⇒ the best
        // feasible ratio is 0.5.
        let mut c = AdaptiveController::new("budget", Objective::EnergyBudget(5.5));
        let steps = drive(&mut c, |r, _| 1.0 + 9.0 * r, 64);
        assert!(c.converged(), "no convergence in {steps} steps");
        let energy = 1.0 + 9.0 * c.ratio();
        assert!(energy <= 5.5 + 1e-9, "over budget: {energy}");
        // Maximum quality within budget: not far below the boundary.
        assert!(c.ratio() >= 0.5 - 0.25, "too conservative: {}", c.ratio());
    }

    #[test]
    fn seeding_starts_near_the_interpolated_crossing() {
        let mut c = quality_ctrl(45.0);
        c.seed_from_curve(&[(0.0, 20.0), (0.5, 30.0), (1.0, 60.0)]);
        // 45 dB crosses between 0.5 (30 dB) and 1.0 (60 dB) at 0.75.
        assert!(
            (c.ratio() - 0.75).abs() <= 0.05,
            "seed {} not near 0.75",
            c.ratio()
        );
        // Non-finite prior points are ignored rather than poisoning it.
        let mut d = quality_ctrl(45.0);
        d.seed_from_curve(&[(0.0, f64::NAN), (f64::NAN, 50.0)]);
        assert_eq!(d.ratio(), AdaptiveConfig::default().initial_ratio);
    }

    #[test]
    fn phase_change_unlatches_and_readapts() {
        let mut c = quality_ctrl(30.0);
        drive(&mut c, |r, _| 20.0 + 40.0 * r, 64);
        assert!(c.converged());
        let easy_ratio = c.ratio();
        // The workload gets harder: quality drops 15 dB everywhere.
        let steps = drive(&mut c, |r, _| 5.0 + 40.0 * r, 64);
        assert!(c.converged(), "no re-convergence in {steps} steps");
        assert!(
            c.ratio() > easy_ratio,
            "must move up after the phase change ({} ≤ {easy_ratio})",
            c.ratio()
        );
        assert!(5.0 + 40.0 * c.ratio() >= 30.0 - 1e-9);
    }

    #[test]
    fn achieved_ratio_lands_in_the_decision_log() {
        let mut c = quality_ctrl(30.0);
        let stats = ExecutionStats {
            accurate: 3,
            approximate: 1,
            dropped: 0,
            accurate_ops: 30,
            approx_ops: 1,
        };
        c.record_execution(&stats);
        let d = c.observe(40.0);
        assert_eq!(d.achieved_ratio, Some(0.75));
    }

    #[test]
    fn config_validation_panics_on_bad_knobs() {
        for cfg in [
            AdaptiveConfig {
                min_step: 0.0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                max_step: f64::NAN,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                initial_ratio: 1.5,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                settle: 0,
                ..AdaptiveConfig::default()
            },
        ] {
            let result = std::panic::catch_unwind(|| {
                AdaptiveController::with_config(
                    "bad",
                    Objective::Quality(QualityTarget::AtLeast(1.0)),
                    cfg,
                )
            });
            assert!(result.is_err(), "config {cfg:?} must be rejected");
        }
    }
}
