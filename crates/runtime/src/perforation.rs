//! Loop-perforation support (§4.2 of the paper — the comparison baseline
//! of Sidiroglou-Douskos et al., ESEC/FSE'11).
//!
//! Perforation skips loop iterations outright. To compare fairly against
//! the significance-driven runtime, "the same percentage of computations
//! is skipped as the percentage of computations approximated by our
//! runtime": a [`Perforator`] selects which iterations to *keep* for a
//! given keep-fraction with three properties the evaluation relies on:
//!
//! 1. **exact count** — exactly `⌊n · f⌋` iterations are kept;
//! 2. **monotonicity** — raising the fraction only adds kept iterations
//!    (matching how the ratio knob grows the accurate-task set);
//! 3. **even spreading** — kept iterations are low-discrepancy over the
//!    index space (golden-ratio sequence), the behaviour of stride
//!    perforation without the aliasing artifacts.

/// Precomputed perforation mask for a loop of `n` iterations.
///
/// ```
/// use scorpio_runtime::perforation::Perforator;
/// let p = Perforator::new(10, 0.5);
/// assert_eq!((0..10).filter(|&i| p.keep(i)).count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct Perforator {
    mask: Vec<bool>,
}

impl Perforator {
    /// Builds the mask keeping `⌊n · keep_fraction⌋` iterations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ keep_fraction ≤ 1`.
    pub fn new(n: usize, keep_fraction: f64) -> Perforator {
        assert!(
            (0.0..=1.0).contains(&keep_fraction),
            "keep_fraction must be in [0, 1], got {keep_fraction}"
        );
        let k = (n as f64 * keep_fraction).floor() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        // Golden-ratio (Fibonacci) priorities: a fixed low-discrepancy
        // ordering, so "the first k" is both monotone in k and evenly
        // spread over [0, n).
        order.sort_by(|&a, &b| {
            priority(a)
                .partial_cmp(&priority(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut mask = vec![false; n];
        for &i in order.iter().take(k) {
            mask[i] = true;
        }
        Perforator { mask }
    }

    /// `true` iff iteration `i` is kept (executed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn keep(&self, i: usize) -> bool {
        self.mask[i]
    }

    /// Number of loop iterations covered.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// `true` for a zero-iteration loop.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Number of kept iterations.
    pub fn kept(&self) -> usize {
        self.mask.iter().filter(|&&k| k).count()
    }
}

/// Per-index golden-ratio priority in `[0, 1)`.
#[inline]
fn priority(i: usize) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    ((i + 1) as f64 * INV_PHI).fract()
}

/// One-shot form of [`Perforator::keep`] — convenient for single queries
/// but O(n log n); build a [`Perforator`] for whole loops.
///
/// # Panics
///
/// Panics unless `0 ≤ keep_fraction ≤ 1` and `i < n`.
///
/// ```
/// use scorpio_runtime::perforation::keep_iteration;
/// let kept = (0..10).filter(|&i| keep_iteration(i, 10, 0.5)).count();
/// assert_eq!(kept, 5);
/// ```
pub fn keep_iteration(i: usize, n: usize, keep_fraction: f64) -> bool {
    assert!(i < n, "iteration index {i} out of range {n}");
    Perforator::new(n, keep_fraction).keep(i)
}

/// The kept-iteration indices for a perforated loop of `n` iterations.
pub fn kept_indices(n: usize, keep_fraction: f64) -> Vec<usize> {
    let p = Perforator::new(n, keep_fraction);
    (0..n).filter(|&i| p.keep(i)).collect()
}

/// Number of iterations kept: exactly `⌊n · keep_fraction⌋`.
pub fn kept_count(n: usize, keep_fraction: f64) -> usize {
    Perforator::new(n, keep_fraction).kept()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kept_fraction_matches_request() {
        for n in [1usize, 7, 64, 1000] {
            for f in [0.0, 0.2, 0.5, 0.8, 1.0] {
                let kept = kept_count(n, f);
                let want = (n as f64 * f).floor() as usize;
                assert_eq!(kept, want, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn keeps_grow_monotonically_with_fraction() {
        let n = 100;
        for (lo, hi) in [(0.1, 0.3), (0.3, 0.7), (0.7, 0.9), (0.0, 1.0)] {
            let low = kept_indices(n, lo);
            let high = kept_indices(n, hi);
            for i in &low {
                assert!(high.contains(i), "iteration {i} lost raising {lo}→{hi}");
            }
        }
    }

    #[test]
    fn skips_are_spread_not_clustered() {
        let kept = kept_indices(100, 0.5);
        // Golden-ratio spreading: no gap between consecutive kept
        // iterations exceeds 4 at keep fraction 1/2.
        for w in kept.windows(2) {
            assert!(w[1] - w[0] <= 4, "cluster at {w:?}");
        }
        // Low fractions stay spread too.
        let kept = kept_indices(1000, 0.1);
        for w in kept.windows(2) {
            assert!(w[1] - w[0] <= 25, "cluster at {w:?}");
        }
    }

    #[test]
    fn degenerate_cases() {
        assert!(kept_indices(0, 0.5).is_empty());
        assert_eq!(kept_indices(5, 1.0).len(), 5);
        assert!(kept_indices(5, 0.0).is_empty());
        let p = Perforator::new(0, 0.3);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = keep_iteration(5, 5, 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        let _ = Perforator::new(10, 1.5);
    }
}
