//! Ratio calibration: choosing the knob setting for a quality target.
//!
//! §3.2 of the paper: "The ratio serves as a single knob to enforce a
//! minimum quality in the quality / performance-energy optimization
//! space." This module automates turning that knob: given a way to
//! evaluate output quality at a candidate ratio, [`calibrate_ratio`]
//! finds the smallest ratio meeting a target — i.e. the cheapest
//! execution with acceptable output — by bisection over the knob.
//!
//! Quality is assumed monotone (non-decreasing) in the ratio, which the
//! significance-ranked schedule guarantees structurally: raising the
//! ratio only promotes tasks from approximate to accurate.

use std::fmt;

pub mod adaptive;

/// What "meeting the target" means for the application's quality metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityTarget {
    /// Quality value must be at least this (e.g. PSNR in dB).
    AtLeast(f64),
    /// Quality value must be at most this (e.g. relative error).
    AtMost(f64),
}

impl QualityTarget {
    /// `true` iff `quality` satisfies the target. A NaN quality never
    /// satisfies either direction (both comparisons are false), so NaN
    /// evaluations always read as "missed" — callers that need to react
    /// to NaN distinctly should check [`f64::is_finite`] first (the
    /// calibrator and the adaptive controller both do).
    pub fn met_by(&self, quality: f64) -> bool {
        match *self {
            QualityTarget::AtLeast(t) => quality >= t,
            QualityTarget::AtMost(t) => quality <= t,
        }
    }
}

impl fmt::Display for QualityTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityTarget::AtLeast(t) => write!(f, "≥ {t}"),
            QualityTarget::AtMost(t) => write!(f, "≤ {t}"),
        }
    }
}

/// The outcome of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The smallest evaluated ratio meeting the target, if any.
    pub ratio: Option<f64>,
    /// Quality measured at [`Calibration::ratio`] (or at 1.0 when the
    /// target was never met).
    pub quality: f64,
    /// Every `(ratio, quality)` pair evaluated, in evaluation order —
    /// each one is a full approximate execution, so callers care how
    /// many there were.
    pub evaluations: Vec<(f64, f64)>,
    /// How many evaluations returned a non-finite quality (NaN or ±∞).
    /// NaN can never satisfy a [`QualityTarget`], so a NaN-returning
    /// eval (empty-enclosure significance, PSNR of identical images)
    /// silently steers the bisection toward `ratio: None` — a nonzero
    /// count here is the signal that the result reflects a broken
    /// quality metric, not an unachievable target.
    pub non_finite_evals: usize,
}

/// Finds the smallest `ratio ∈ [0, 1]` whose quality meets `target`, to
/// within `tolerance` on the ratio axis, assuming quality is monotone
/// non-decreasing in the ratio.
///
/// `eval` runs the application at the candidate ratio and returns the
/// quality value. The search needs `⌈log₂(1/tolerance)⌉ + 2` evaluations.
///
/// Returns `Calibration { ratio: None, .. }` when even `ratio = 1.0`
/// misses the target (the quality metric then isn't achievable by this
/// approximation scheme at all).
///
/// # Panics
///
/// Panics unless `0 < tolerance < 1`.
///
/// # Examples
///
/// ```
/// use scorpio_runtime::controller::{calibrate_ratio, QualityTarget};
///
/// // A synthetic app whose PSNR rises linearly 20 → 60 dB with ratio.
/// let calibration = calibrate_ratio(
///     |r| 20.0 + 40.0 * r,
///     QualityTarget::AtLeast(30.0),
///     1e-3,
/// );
/// let r = calibration.ratio.unwrap();
/// assert!((r - 0.25).abs() < 2e-3);
/// ```
pub fn calibrate_ratio<F>(mut eval: F, target: QualityTarget, tolerance: f64) -> Calibration
where
    F: FnMut(f64) -> f64,
{
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "tolerance must be in (0, 1), got {tolerance}"
    );
    let mut evaluations = Vec::new();
    let mut non_finite_evals = 0usize;
    let mut run = |r: f64, evals: &mut Vec<(f64, f64)>, non_finite: &mut usize| {
        let q = eval(r);
        if !q.is_finite() {
            *non_finite += 1;
        }
        evals.push((r, q));
        q
    };

    // Cheapest first: maybe ratio 0 already suffices.
    let q0 = run(0.0, &mut evaluations, &mut non_finite_evals);
    if target.met_by(q0) {
        return Calibration {
            ratio: Some(0.0),
            quality: q0,
            evaluations,
            non_finite_evals,
        };
    }
    // Ceiling check: is the target achievable at all?
    let q1 = run(1.0, &mut evaluations, &mut non_finite_evals);
    if !target.met_by(q1) {
        return Calibration {
            ratio: None,
            quality: q1,
            evaluations,
            non_finite_evals,
        };
    }

    // Invariant: target missed at lo, met at hi. NaN qualities fail
    // `met_by` in both directions, so a NaN mid-probe conservatively
    // narrows toward hi (never widens the met region) and the invariant
    // is preserved; the count above tells the caller it happened.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    let mut hi_quality = q1;
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        let q = run(mid, &mut evaluations, &mut non_finite_evals);
        if target.met_by(q) {
            hi = mid;
            hi_quality = q;
        } else {
            lo = mid;
        }
    }
    Calibration {
        ratio: Some(hi),
        quality: hi_quality,
        evaluations,
        non_finite_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_threshold_of_step_function() {
        // Quality jumps from 0 to 100 at ratio 0.6.
        let c = calibrate_ratio(
            |r| if r >= 0.6 { 100.0 } else { 0.0 },
            QualityTarget::AtLeast(50.0),
            1e-4,
        );
        let r = c.ratio.unwrap();
        assert!((r - 0.6).abs() < 2e-4, "found {r}");
    }

    #[test]
    fn at_most_metric_works() {
        // Relative error decays exponentially with ratio.
        let c = calibrate_ratio(
            |r| 1e-2 * (-5.0 * r).exp(),
            QualityTarget::AtMost(1e-3),
            1e-3,
        );
        let r = c.ratio.unwrap();
        let expected = (10.0f64).ln() / 5.0;
        assert!((r - expected).abs() < 2e-3, "found {r}, want {expected}");
        assert!(c.quality <= 1e-3);
    }

    #[test]
    fn ratio_zero_shortcut() {
        let mut calls = 0;
        let c = calibrate_ratio(
            |_| {
                calls += 1;
                99.0
            },
            QualityTarget::AtLeast(10.0),
            1e-3,
        );
        assert_eq!(c.ratio, Some(0.0));
        assert_eq!(calls, 1);
    }

    #[test]
    fn unreachable_target_reports_none() {
        let c = calibrate_ratio(|r| r * 10.0, QualityTarget::AtLeast(50.0), 1e-3);
        assert_eq!(c.ratio, None);
        assert_eq!(c.quality, 10.0);
        assert_eq!(c.evaluations.len(), 2);
    }

    #[test]
    fn evaluation_budget_is_logarithmic() {
        let c = calibrate_ratio(|r| r, QualityTarget::AtLeast(0.7654321), 1e-4);
        // 2 endpoint probes + ~14 bisections.
        assert!(c.evaluations.len() <= 17, "{}", c.evaluations.len());
        assert!((c.ratio.unwrap() - 0.7654321).abs() < 2e-4);
    }

    #[test]
    fn target_display() {
        assert_eq!(QualityTarget::AtLeast(30.0).to_string(), "≥ 30");
        assert_eq!(QualityTarget::AtMost(0.01).to_string(), "≤ 0.01");
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn bad_tolerance_panics() {
        let _ = calibrate_ratio(|r| r, QualityTarget::AtLeast(0.5), 0.0);
    }

    #[test]
    fn finite_evals_report_zero_non_finite() {
        let c = calibrate_ratio(|r| 20.0 + 40.0 * r, QualityTarget::AtLeast(30.0), 1e-3);
        assert_eq!(c.non_finite_evals, 0);
        assert!(c.ratio.is_some());
    }

    #[test]
    fn nan_quality_below_threshold_is_counted_not_silent() {
        // PSNR of identical images / empty-enclosure significance: the
        // metric degenerates to NaN below the working ratio. The search
        // must still find the threshold AND report how often the metric
        // was broken.
        let c = calibrate_ratio(
            |r| if r >= 0.6 { 100.0 } else { f64::NAN },
            QualityTarget::AtLeast(50.0),
            1e-3,
        );
        let r = c.ratio.expect("target reachable at ratio 1");
        assert!((r - 0.6).abs() < 2e-3, "found {r}");
        assert!(c.quality.is_finite());
        assert!(c.non_finite_evals > 0, "NaN evals must be surfaced");
        let nan_evals = c.evaluations.iter().filter(|(_, q)| q.is_nan()).count();
        assert_eq!(c.non_finite_evals, nan_evals);
    }

    #[test]
    fn all_nan_metric_reports_none_with_full_non_finite_count() {
        // A metric that is always NaN is indistinguishable from an
        // unreachable target on `ratio` alone; `non_finite_evals` is
        // the distinguishing signal the bug report asked for.
        let c = calibrate_ratio(|_| f64::NAN, QualityTarget::AtLeast(10.0), 1e-3);
        assert_eq!(c.ratio, None);
        assert_eq!(c.non_finite_evals, c.evaluations.len());
        assert!(c.non_finite_evals >= 2);
    }

    #[test]
    fn infinite_quality_counts_as_non_finite_but_can_meet_target() {
        // +∞ (PSNR of bit-identical output) legitimately meets an
        // AtLeast target — but it is still flagged, because it usually
        // means the metric saturated rather than measured.
        let c = calibrate_ratio(|_| f64::INFINITY, QualityTarget::AtLeast(30.0), 1e-3);
        assert_eq!(c.ratio, Some(0.0));
        assert_eq!(c.non_finite_evals, 1);
    }
}
