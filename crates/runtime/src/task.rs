//! Tasks, task groups, and per-execution statistics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::executor::{Executor, Job};

/// Whether a task body is running as the accurate or the approximate
/// version (the runtime's decision at the `taskwait`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The accurate (original) body.
    Accurate,
    /// The light-weight approximate body supplied via the `approxfun`
    /// equivalent.
    Approximate,
}

/// Handle given to every running task body for work accounting.
///
/// Work units are abstract op counts; kernels report how much accurate
/// and approximate computation they actually performed, and the
/// [`EnergyModel`](crate::EnergyModel) prices them. Counting is what makes
/// the energy evaluation deterministic and testable.
#[derive(Debug)]
pub struct TaskCtx {
    mode: ExecMode,
    accurate_ops: Arc<AtomicU64>,
    approx_ops: Arc<AtomicU64>,
}

impl TaskCtx {
    /// The mode the runtime chose for this task.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Reports `n` units of accurate work.
    pub fn count_accurate_ops(&self, n: u64) {
        self.accurate_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Reports `n` units of approximate work.
    pub fn count_approx_ops(&self, n: u64) {
        self.approx_ops.fetch_add(n, Ordering::Relaxed);
    }
}

type TaskFn<'scope> = Box<dyn FnOnce(&TaskCtx) + Send + 'scope>;

pub(crate) struct Task<'scope> {
    pub significance: f64,
    pub accurate: TaskFn<'scope>,
    pub approx: Option<TaskFn<'scope>>,
    /// Spawn order, used for stable tie-breaking.
    pub seq: usize,
}

impl fmt::Debug for Task<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("significance", &self.significance)
            .field("has_approx", &self.approx.is_some())
            .field("seq", &self.seq)
            .finish()
    }
}

/// Statistics of one `taskwait` execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionStats {
    /// Tasks executed with the accurate body.
    pub accurate: usize,
    /// Tasks executed with the approximate body.
    pub approximate: usize,
    /// Tasks dropped (chosen for approximation but no approximate body).
    pub dropped: usize,
    /// Total accurate work units reported by task bodies.
    pub accurate_ops: u64,
    /// Total approximate work units reported by task bodies.
    pub approx_ops: u64,
}

impl ExecutionStats {
    /// Total number of tasks in the group.
    pub fn total(&self) -> usize {
        self.accurate + self.approximate + self.dropped
    }

    /// Merges another group's statistics into this one (used when an
    /// application runs several task groups per run).
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.accurate += other.accurate;
        self.approximate += other.approximate;
        self.dropped += other.dropped;
        self.accurate_ops += other.accurate_ops;
        self.approx_ops += other.approx_ops;
    }
}

/// A labelled group of tasks — the unit over which `taskwait ratio(r)`
/// synchronises and enforces quality (§3.2, `label()` clause).
pub struct TaskGroup<'scope> {
    label: String,
    tasks: Vec<Task<'scope>>,
}

impl fmt::Debug for TaskGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskGroup")
            .field("label", &self.label)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl<'scope> TaskGroup<'scope> {
    /// Creates an empty group with the given label.
    pub fn new(label: impl Into<String>) -> TaskGroup<'scope> {
        TaskGroup {
            label: label.into(),
            tasks: Vec::new(),
        }
    }

    /// The group's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of spawned tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if no task has been spawned yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Spawns a task with the given `significance`, accurate body and
    /// optional approximate body (`#pragma omp task significance(s)
    /// approxfun(approx)`).
    ///
    /// Significance is clamped to `[0, 1]`; a value of exactly `1.0`
    /// forces accurate execution regardless of the requested ratio (the
    /// paper's Sobel kernel uses this for its group-A convolution tasks).
    ///
    /// # Panics
    ///
    /// Panics if `significance` is NaN.
    pub fn spawn<A, B>(&mut self, significance: f64, accurate: A, approx: Option<B>)
    where
        A: FnOnce(&TaskCtx) + Send + 'scope,
        B: FnOnce(&TaskCtx) + Send + 'scope,
    {
        assert!(!significance.is_nan(), "task significance must not be NaN");
        let seq = self.tasks.len();
        self.tasks.push(Task {
            significance: significance.clamp(0.0, 1.0),
            accurate: Box::new(accurate),
            approx: approx.map(|b| Box::new(b) as TaskFn<'scope>),
            seq,
        });
    }

    /// Spawns a task that is always executed accurately (no approximate
    /// body, significance 1).
    pub fn spawn_accurate<A>(&mut self, accurate: A)
    where
        A: FnOnce(&TaskCtx) + Send + 'scope,
    {
        self.spawn(1.0, accurate, None::<fn(&TaskCtx)>);
    }

    /// Executes the group on `executor` with the quality knob `ratio`
    /// (`#pragma omp taskwait label(...) ratio(r)`), blocking until every
    /// task has run.
    ///
    /// At least `ceil(ratio · n)` tasks execute accurately, chosen in
    /// order of decreasing significance (spawn order breaks ties); tasks
    /// with significance ≥ 1 are always accurate on top of that
    /// guarantee. The rest run their approximate body, or are dropped
    /// when none exists.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `[0, 1]` or is NaN.
    pub fn taskwait(self, executor: &Executor, ratio: f64) -> ExecutionStats {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "taskwait ratio must be within [0, 1], got {ratio}"
        );
        let _span = scorpio_obs::span("taskwait");
        let tracing = scorpio_obs::enabled();
        let started = tracing.then(std::time::Instant::now);
        let n = self.tasks.len();
        if n == 0 {
            return ExecutionStats::default();
        }

        // Rank by significance (desc), stable in spawn order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ta = &self.tasks[a];
            let tb = &self.tasks[b];
            tb.significance
                .partial_cmp(&ta.significance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ta.seq.cmp(&tb.seq))
        });

        let min_accurate = (ratio * n as f64).ceil() as usize;
        let mut accurate_flags = vec![false; n];
        for (rank, &idx) in order.iter().enumerate() {
            accurate_flags[idx] = rank < min_accurate || self.tasks[idx].significance >= 1.0;
        }

        let accurate_ops = Arc::new(AtomicU64::new(0));
        let approx_ops = Arc::new(AtomicU64::new(0));

        let mut stats = ExecutionStats::default();
        let mut jobs: Vec<Job<'scope>> = Vec::with_capacity(n);
        for (task, is_accurate) in self.tasks.into_iter().zip(&accurate_flags) {
            if *is_accurate {
                stats.accurate += 1;
                jobs.push(Job {
                    mode: ExecMode::Accurate,
                    task_id: task.seq as u64,
                    significance: task.significance,
                    body: task.accurate,
                });
            } else if let Some(approx) = task.approx {
                stats.approximate += 1;
                jobs.push(Job {
                    mode: ExecMode::Approximate,
                    task_id: task.seq as u64,
                    significance: task.significance,
                    body: approx,
                });
            } else {
                stats.dropped += 1;
                // Dropped tasks never reach a worker, so the drop
                // decision is recorded here (zero duration).
                scorpio_obs::task_event(
                    &self.label,
                    task.seq as u64,
                    task.significance,
                    scorpio_obs::TaskClass::Dropped,
                    0,
                );
            }
        }

        {
            let _span = scorpio_obs::span("task_execution");
            executor.run(&self.label, jobs, &accurate_ops, &approx_ops);
        }

        stats.accurate_ops = accurate_ops.load(Ordering::Relaxed);
        stats.approx_ops = approx_ops.load(Ordering::Relaxed);
        scorpio_obs::count("tasks.accurate", stats.accurate as u64);
        scorpio_obs::count("tasks.approximate", stats.approximate as u64);
        scorpio_obs::count("tasks.dropped", stats.dropped as u64);
        scorpio_obs::count("tasks.accurate_ops", stats.accurate_ops);
        scorpio_obs::count("tasks.approx_ops", stats.approx_ops);
        if let Some(started) = started {
            scorpio_obs::taskwait_event(
                &self.label,
                ratio,
                stats.accurate as f64 / n as f64,
                stats.accurate as u64,
                stats.approximate as u64,
                stats.dropped as u64,
                started.elapsed().as_nanos() as u64,
            );
        }
        stats
    }

    /// Executes the group at the ratio currently commanded by an
    /// [`AdaptiveController`](crate::controller::adaptive::AdaptiveController)
    /// and records the achieved schedule back into it — the first half
    /// of the closed loop (`#pragma omp taskwait` with the knob under
    /// feedback control instead of a constant).
    ///
    /// The caller completes the loop by measuring (or proxying) output
    /// quality and passing it to
    /// [`observe`](crate::controller::adaptive::AdaptiveController::observe):
    ///
    /// ```
    /// use scorpio_runtime::controller::adaptive::{AdaptiveController, Objective};
    /// use scorpio_runtime::controller::QualityTarget;
    /// use scorpio_runtime::{Executor, TaskGroup};
    ///
    /// let executor = Executor::new(1);
    /// let mut ctrl = AdaptiveController::new(
    ///     "loop",
    ///     Objective::Quality(QualityTarget::AtLeast(0.5)),
    /// );
    /// for _ in 0..8 {
    ///     let mut group = TaskGroup::new("loop");
    ///     for i in 0..10 {
    ///         group.spawn(
    ///             i as f64 / 10.0,
    ///             |ctx| ctx.count_accurate_ops(10),
    ///             Some(|ctx: &scorpio_runtime::TaskCtx| ctx.count_approx_ops(1)),
    ///         );
    ///     }
    ///     let stats = group.taskwait_adaptive(&executor, &mut ctrl);
    ///     // Quality proxy: the accurate fraction itself.
    ///     let quality = stats.accurate as f64 / stats.total() as f64;
    ///     ctrl.observe(quality);
    ///     if ctrl.converged() {
    ///         break;
    ///     }
    /// }
    /// assert!(ctrl.steps() > 0);
    /// ```
    pub fn taskwait_adaptive(
        self,
        executor: &Executor,
        controller: &mut crate::controller::adaptive::AdaptiveController,
    ) -> ExecutionStats {
        let ratio = controller.ratio();
        let stats = self.taskwait(executor, ratio);
        controller.record_execution(&stats);
        stats
    }
}

pub(crate) fn make_ctx(
    mode: ExecMode,
    accurate_ops: &Arc<AtomicU64>,
    approx_ops: &Arc<AtomicU64>,
) -> TaskCtx {
    TaskCtx {
        mode,
        accurate_ops: Arc::clone(accurate_ops),
        approx_ops: Arc::clone(approx_ops),
    }
}
