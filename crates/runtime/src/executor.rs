//! The worker-pool executor behind `taskwait`.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::task::{make_ctx, ExecMode, TaskCtx};

/// A prepared job: the chosen mode plus the body to run.
type Job<'scope> = (ExecMode, Box<dyn FnOnce(&TaskCtx) + Send + 'scope>);

/// A fixed-width thread pool executing the task jobs of a `taskwait`.
///
/// The pool is scoped: worker threads are spawned per `taskwait` with
/// `std::thread::scope`, which lets task bodies borrow stack data (output
/// buffers, images) without `'static` bounds — the natural translation of
/// the paper's OpenMP tasks writing to caller-owned arrays.
pub struct Executor {
    threads: usize,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Executor {
    /// Creates an executor with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Executor {
        assert!(threads > 0, "executor needs at least one thread");
        Executor { threads }
    }

    /// Creates an executor sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 4).
    pub fn with_available_parallelism() -> Executor {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Executor::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the prepared jobs to completion, work-stealing via a shared
    /// atomic cursor. Blocks until every job has finished.
    pub(crate) fn run<'scope>(
        &self,
        jobs: Vec<Job<'scope>>,
        accurate_ops: &Arc<AtomicU64>,
        approx_ops: &Arc<AtomicU64>,
    ) {
        if jobs.is_empty() {
            return;
        }
        // Wrap each job in an Option so workers can take() them through a
        // shared slice without moving the vector.
        let slots: Vec<parking_lot::Mutex<Option<Job<'scope>>>> =
            jobs.into_iter().map(|j| parking_lot::Mutex::new(Some(j))).collect();
        let cursor = AtomicUsize::new(0);
        let n = slots.len();
        let workers = self.threads.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().take();
                    if let Some((mode, body)) = job {
                        let ctx = make_ctx(mode, accurate_ops, approx_ops);
                        body(&ctx);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_jobs_in_parallel() {
        let executor = Executor::new(4);
        let counter = AtomicUsize::new(0);
        let acc = Arc::new(AtomicU64::new(0));
        let apx = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job<'_>> = (0..100)
            .map(|_| {
                let counter = &counter;
                (
                    ExecMode::Accurate,
                    Box::new(move |ctx: &TaskCtx| {
                        ctx.count_accurate_ops(2);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce(&TaskCtx) + Send>,
                )
            })
            .collect();
        executor.run(jobs, &acc, &apx);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(acc.load(Ordering::Relaxed), 200);
        assert_eq!(apx.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn jobs_can_borrow_stack_data() {
        let executor = Executor::new(2);
        let mut out = vec![0u64; 8];
        let acc = Arc::new(AtomicU64::new(0));
        let apx = Arc::new(AtomicU64::new(0));
        {
            let jobs: Vec<Job<'_>> = out
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    (
                        ExecMode::Accurate,
                        Box::new(move |_: &TaskCtx| {
                            *slot = i as u64 * 10;
                        }) as Box<dyn FnOnce(&TaskCtx) + Send + '_>,
                    )
                })
                .collect();
            executor.run(jobs, &acc, &apx);
        }
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = Executor::new(0);
    }
}
