//! The worker-pool executor behind `taskwait`.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use scorpio_obs::TaskClass;

use crate::task::{make_ctx, ExecMode, TaskCtx};

/// A prepared job: the runtime's decision for one spawned task, carried
/// to whichever worker claims it so the executor can attribute the
/// task-event it emits (task id, significance, chosen mode).
pub(crate) struct Job<'scope> {
    /// The mode the `taskwait` ranking chose.
    pub mode: ExecMode,
    /// Spawn order within the group — the event log's task id.
    pub task_id: u64,
    /// The task's (clamped) significance.
    pub significance: f64,
    /// The body to run (accurate or approximate, per `mode`).
    pub body: Box<dyn FnOnce(&TaskCtx) + Send + 'scope>,
}

/// A fixed-width thread pool executing the task jobs of a `taskwait`.
///
/// The pool is scoped: worker threads are spawned per `taskwait` with
/// `std::thread::scope`, which lets task bodies borrow stack data (output
/// buffers, images) without `'static` bounds — the natural translation of
/// the paper's OpenMP tasks writing to caller-owned arrays.
pub struct Executor {
    threads: usize,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Executor {
    /// Creates an executor with exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Executor {
        assert!(threads > 0, "executor needs at least one thread");
        Executor { threads }
    }

    /// Creates an executor sized to the machine
    /// (`std::thread::available_parallelism`, falling back to 4).
    pub fn with_available_parallelism() -> Executor {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Executor::new(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `work` over `items` on the worker pool, each worker carrying
    /// private mutable state built once by `init` — the hook the
    /// parallel analysis engine uses to give every worker its own
    /// reusable tape arena.
    ///
    /// Items are claimed through a shared atomic cursor (the same
    /// self-scheduling the task pool uses), `work` receives the worker
    /// state, the item index and the item, and results come back in
    /// item order regardless of which worker produced them. With one
    /// thread the pool is bypassed entirely: items run inline on the
    /// caller's thread, so `threads == 1` has zero synchronisation
    /// overhead and serves as the serial baseline.
    pub fn map_with_state<T, S, R, I, W>(&self, items: &[T], init: I, work: W) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        W: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| work(&mut state, i, item))
                .collect();
        }

        let slots: Vec<parking_lot::Mutex<Option<R>>> =
            items.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let n = items.len();
        let workers = self.threads.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = work(&mut state, i, &items[i]);
                        *slots[i].lock() = Some(r);
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker pool completed without filling every result slot")
            })
            .collect()
    }

    /// Runs the prepared jobs to completion, work-stealing via a shared
    /// atomic cursor. Blocks until every job has finished. `label` is
    /// the task group's label, attributed to the per-task events the
    /// workers emit while tracing is enabled.
    pub(crate) fn run<'scope>(
        &self,
        label: &str,
        jobs: Vec<Job<'scope>>,
        accurate_ops: &Arc<AtomicU64>,
        approx_ops: &Arc<AtomicU64>,
    ) {
        if jobs.is_empty() {
            return;
        }
        // Wrap each job in an Option so workers can take() them through a
        // shared slice without moving the vector.
        let slots: Vec<parking_lot::Mutex<Option<Job<'scope>>>> =
            jobs.into_iter().map(|j| parking_lot::Mutex::new(Some(j))).collect();
        let cursor = AtomicUsize::new(0);
        let n = slots.len();
        let workers = self.threads.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i].lock().take();
                    if let Some(job) = job {
                        let ctx = make_ctx(job.mode, accurate_ops, approx_ops);
                        run_job(label, job, &ctx);
                    }
                });
            }
        });
    }
}

/// Executes one claimed job, timing it and emitting a per-task event
/// when tracing is enabled. When disabled the only overhead against
/// the uninstrumented runtime is the one relaxed atomic load of
/// [`scorpio_obs::enabled`] — no clock reads.
fn run_job(label: &str, job: Job<'_>, ctx: &TaskCtx) {
    if scorpio_obs::enabled() {
        let started = std::time::Instant::now();
        (job.body)(ctx);
        let class = match job.mode {
            ExecMode::Accurate => TaskClass::Accurate,
            ExecMode::Approximate => TaskClass::Approx,
        };
        scorpio_obs::task_event(
            label,
            job.task_id,
            job.significance,
            class,
            started.elapsed().as_nanos() as u64,
        );
    } else {
        (job.body)(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_jobs_in_parallel() {
        let executor = Executor::new(4);
        let counter = AtomicUsize::new(0);
        let acc = Arc::new(AtomicU64::new(0));
        let apx = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job<'_>> = (0..100)
            .map(|i| {
                let counter = &counter;
                Job {
                    mode: ExecMode::Accurate,
                    task_id: i,
                    significance: 1.0,
                    body: Box::new(move |ctx: &TaskCtx| {
                        ctx.count_accurate_ops(2);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }),
                }
            })
            .collect();
        executor.run("test", jobs, &acc, &apx);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(acc.load(Ordering::Relaxed), 200);
        assert_eq!(apx.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn jobs_can_borrow_stack_data() {
        let executor = Executor::new(2);
        let mut out = vec![0u64; 8];
        let acc = Arc::new(AtomicU64::new(0));
        let apx = Arc::new(AtomicU64::new(0));
        {
            let jobs: Vec<Job<'_>> = out
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| Job {
                    mode: ExecMode::Accurate,
                    task_id: i as u64,
                    significance: 1.0,
                    body: Box::new(move |_: &TaskCtx| {
                        *slot = i as u64 * 10;
                    }),
                })
                .collect();
            executor.run("test", jobs, &acc, &apx);
        }
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = Executor::new(0);
    }

    #[test]
    fn map_with_state_keeps_item_order() {
        let executor = Executor::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = executor.map_with_state(
            &items,
            || 0usize,
            |used, i, &item| {
                *used += 1;
                item * 2 + i
            },
        );
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_state_single_thread_runs_inline() {
        let executor = Executor::new(1);
        let items = [1, 2, 3, 4];
        // One thread means one state shared across all items, in order.
        let out = executor.map_with_state(
            &items,
            || 0i32,
            |acc, _, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![1, 3, 6, 10]);
    }

    #[test]
    fn map_with_state_empty_items() {
        let executor = Executor::new(4);
        let items: [u8; 0] = [];
        let out = executor.map_with_state(&items, || (), |_, i, _| i);
        assert!(out.is_empty());
    }
}
