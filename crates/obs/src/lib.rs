//! Zero-cost-when-disabled observability for the scorpio pipeline.
//!
//! The analysis pipeline (record DynDFG → interval forward sweep →
//! interval-adjoint reverse sweep → Eq. 11 significance → Algorithm 1
//! simplify/partition → ratio-driven task runtime) is instrumented with
//! three complementary facilities, all living in this dependency-free
//! crate (vendor-style, like the offline shims under `vendor/`):
//!
//! * **Structured spans** — [`span`] returns an RAII guard that records
//!   a named, nested timing into a process-global trace sink. Guards
//!   nest per thread (a span opened while another is active becomes its
//!   child), and the collected events can be exported as a
//!   Chrome-trace-format JSON file viewable in `about:tracing` or
//!   [Perfetto](https://ui.perfetto.dev) via [`chrome_trace_json`].
//! * **A metrics registry** — monotonic [`Counter`]s and log₂-bucketed
//!   [`Histogram`]s, created on first use through [`count`] /
//!   [`observe`] (or ahead of time through [`registry`]), aggregated
//!   atomically across threads.
//! * **A structured task-event log** — bounded, lock-free per-thread
//!   rings of [`TaskEvent`]s (one per task the significance runtime
//!   executes or drops, plus `taskwait`/ratio markers), merged into a
//!   monotonic timeline and exportable as JSONL via [`events_jsonl`];
//!   see the [`events`] module.
//! * **Run manifests** — [`RunSession`] snapshots the spans and metrics
//!   of one instrumented run into a machine-readable [`RunManifest`]
//!   (`RUN_<name>.json`: config, timings tree, counters, git describe,
//!   thread count) next to the Chrome trace.
//!
//! # Zero cost when disabled
//!
//! Instrumentation is **off by default**. Every entry point checks one
//! relaxed atomic load ([`enabled`]) and returns immediately when
//! tracing is off: no clock reads, no allocation, no locking. Binaries
//! opt in with [`enable`] (the bench harnesses do so behind their
//! `--trace <path>` flag).
//!
//! # Example
//!
//! ```
//! scorpio_obs::enable();
//! {
//!     let _outer = scorpio_obs::span("phase");
//!     let _inner = scorpio_obs::span("step");       // nests under "phase"
//!     scorpio_obs::count("items", 3);
//!     scorpio_obs::observe("variance", 0.25);
//! }
//! let events = scorpio_obs::events_snapshot();
//! assert!(events.iter().any(|e| e.path == "phase/step"));
//! assert_eq!(scorpio_obs::registry().counter("items").get(), 3);
//! # scorpio_obs::disable();
//! # scorpio_obs::reset();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod expose;
pub mod json;
mod manifest;
mod metrics;
mod span;
pub mod window;

pub use events::{
    events_dropped, events_jsonl, phase_event, ratio_decision_event, ratio_event, records_jsonl,
    take_task_events, task_event, task_events_snapshot, taskwait_event, DecisionClass, EventKind,
    TaskClass, TaskEvent, TaskEventRecord,
};
pub use manifest::{
    git_describe, ConfigEntry, CounterSnapshot, HistogramSnapshot, PhaseNode, RunManifest,
    RunSession,
};
pub use metrics::{
    quantile_from_buckets, registry, Counter, Histogram, Registry, HISTOGRAM_BUCKETS,
};
pub use span::{
    chrome_trace_json, current_trace_id, events_snapshot, spans_dropped, take_events, SpanGuard,
    TraceContext, TraceEvent,
};
pub use window::{
    KernelWindowStats, RequestSample, SlidingWindow, WindowSnapshot, WINDOW_SPANS,
};

#[cfg(test)]
mod tests;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(true);

/// `true` while instrumentation is collecting. One relaxed atomic load:
/// this is the *only* cost every instrumented call site pays when
/// tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` while *detail* spans ([`span_detail`]) record. Detail spans
/// sit on per-item / per-lane-block interior paths (`replay`,
/// `replay_lanes`, per-item `reverse`/`significance` sweeps, …) whose
/// volume scales with the workload; stage-level spans always record
/// while tracing is [enabled]. Detail is **on** by default so offline
/// harnesses (`--trace` exports, run manifests) see the full tree; a
/// latency-sensitive host like the serve daemon turns it off with
/// [`disable_detail`] and keeps only stage-level spans plus the
/// lock-free task-event telemetry.
#[inline(always)]
pub fn detail_enabled() -> bool {
    enabled() && DETAIL.load(Ordering::Relaxed)
}

/// Turns detail spans back on (the default); see [`detail_enabled`].
pub fn enable_detail() {
    DETAIL.store(true, Ordering::SeqCst);
}

/// Turns detail spans off; see [`detail_enabled`].
pub fn disable_detail() {
    DETAIL.store(false, Ordering::SeqCst);
}

/// Turns instrumentation on (idempotent). The first call fixes the
/// trace epoch all span timestamps are relative to.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns instrumentation off. Already-open spans still record when
/// their guards drop; new call sites become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears the trace sink, drains the task-event rings, and zeroes
/// every registered counter and histogram (handles stay valid). The
/// epoch is kept so timestamps stay monotonic within the process.
pub fn reset() {
    span::reset();
    metrics::reset();
    events::reset();
}

/// The process-wide trace epoch: all span timestamps are nanoseconds
/// since this instant.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch — the time base of
/// every span and task-event timestamp (the first caller of [`enable`]
/// or this function fixes the epoch). Lets a host splice synthetic
/// spans measured outside the guard machinery (e.g. the serve daemon's
/// connection-thread parse span) into the same timeline as captured
/// spans.
pub fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Opens a named span. Returns a guard that records the elapsed time
/// (nested under the thread's currently open span, if any) when
/// dropped. A no-op returning an inert guard when tracing is
/// [disabled](enabled).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name.to_owned())
    } else {
        SpanGuard::noop()
    }
}

/// [`span`] with a runtime-built name (e.g. a per-benchmark label).
#[inline]
pub fn span_owned(name: String) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name)
    } else {
        SpanGuard::noop()
    }
}

/// A *detail* span: like [`span`], but records only while
/// [`detail_enabled`] — use for interior spans whose count scales with
/// items or lane blocks rather than with pipeline stages. Costs the
/// same single relaxed load as [`span`] when tracing is off.
#[inline]
pub fn span_detail(name: &'static str) -> SpanGuard {
    if detail_enabled() {
        SpanGuard::open(name.to_owned())
    } else {
        SpanGuard::noop()
    }
}

/// Opens a per-request trace context on the calling thread: until the
/// returned guard drops, every span and task event recorded on this
/// thread is stamped with `trace_id` (visible as
/// [`TraceEvent::trace_id`] / [`TaskEvent::trace_id`] and in Chrome
/// traces and JSONL exports). With `capture` on, completed spans and
/// task events are *also* cloned into per-thread buffers the guard can
/// drain ([`TraceContext::take_spans`] /
/// [`TraceContext::take_task_events`]) so a request handler can
/// assemble its own span tree without scanning the global sink.
///
/// Contexts nest: dropping the guard restores the previous trace id
/// and capture buffers. Stamping and capture only happen for spans /
/// events that record at all, i.e. when tracing is [enabled]; when
/// disabled this costs the usual single relaxed atomic load at each
/// instrumented site.
#[inline]
pub fn trace_context(trace_id: u64, capture: bool) -> TraceContext {
    TraceContext::open(trace_id, capture)
}

/// Adds `n` to the monotonic counter `name`, creating it on first use.
/// A no-op when tracing is [disabled](enabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        registry().counter(name).add(n);
    }
}

/// Records `value` into the histogram `name`, creating it on first
/// use. A no-op when tracing is [disabled](enabled).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        registry().histogram(name).record(value);
    }
}
