//! Zero-cost-when-disabled observability for the scorpio pipeline.
//!
//! The analysis pipeline (record DynDFG → interval forward sweep →
//! interval-adjoint reverse sweep → Eq. 11 significance → Algorithm 1
//! simplify/partition → ratio-driven task runtime) is instrumented with
//! three complementary facilities, all living in this dependency-free
//! crate (vendor-style, like the offline shims under `vendor/`):
//!
//! * **Structured spans** — [`span`] returns an RAII guard that records
//!   a named, nested timing into a process-global trace sink. Guards
//!   nest per thread (a span opened while another is active becomes its
//!   child), and the collected events can be exported as a
//!   Chrome-trace-format JSON file viewable in `about:tracing` or
//!   [Perfetto](https://ui.perfetto.dev) via [`chrome_trace_json`].
//! * **A metrics registry** — monotonic [`Counter`]s and log₂-bucketed
//!   [`Histogram`]s, created on first use through [`count`] /
//!   [`observe`] (or ahead of time through [`registry`]), aggregated
//!   atomically across threads.
//! * **A structured task-event log** — bounded, lock-free per-thread
//!   rings of [`TaskEvent`]s (one per task the significance runtime
//!   executes or drops, plus `taskwait`/ratio markers), merged into a
//!   monotonic timeline and exportable as JSONL via [`events_jsonl`];
//!   see the [`events`] module.
//! * **Run manifests** — [`RunSession`] snapshots the spans and metrics
//!   of one instrumented run into a machine-readable [`RunManifest`]
//!   (`RUN_<name>.json`: config, timings tree, counters, git describe,
//!   thread count) next to the Chrome trace.
//!
//! # Zero cost when disabled
//!
//! Instrumentation is **off by default**. Every entry point checks one
//! relaxed atomic load ([`enabled`]) and returns immediately when
//! tracing is off: no clock reads, no allocation, no locking. Binaries
//! opt in with [`enable`] (the bench harnesses do so behind their
//! `--trace <path>` flag).
//!
//! # Example
//!
//! ```
//! scorpio_obs::enable();
//! {
//!     let _outer = scorpio_obs::span("phase");
//!     let _inner = scorpio_obs::span("step");       // nests under "phase"
//!     scorpio_obs::count("items", 3);
//!     scorpio_obs::observe("variance", 0.25);
//! }
//! let events = scorpio_obs::events_snapshot();
//! assert!(events.iter().any(|e| e.path == "phase/step"));
//! assert_eq!(scorpio_obs::registry().counter("items").get(), 3);
//! # scorpio_obs::disable();
//! # scorpio_obs::reset();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod json;
mod manifest;
mod metrics;
mod span;

pub use events::{
    events_dropped, events_jsonl, phase_event, ratio_decision_event, ratio_event, records_jsonl,
    take_task_events, task_event, task_events_snapshot, taskwait_event, DecisionClass, EventKind,
    TaskClass, TaskEvent, TaskEventRecord,
};
pub use manifest::{
    git_describe, ConfigEntry, CounterSnapshot, HistogramSnapshot, PhaseNode, RunManifest,
    RunSession,
};
pub use metrics::{registry, Counter, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::{chrome_trace_json, events_snapshot, take_events, SpanGuard, TraceEvent};

#[cfg(test)]
mod tests;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` while instrumentation is collecting. One relaxed atomic load:
/// this is the *only* cost every instrumented call site pays when
/// tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on (idempotent). The first call fixes the
/// trace epoch all span timestamps are relative to.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns instrumentation off. Already-open spans still record when
/// their guards drop; new call sites become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears the trace sink, drains the task-event rings, and zeroes
/// every registered counter and histogram (handles stay valid). The
/// epoch is kept so timestamps stay monotonic within the process.
pub fn reset() {
    span::reset();
    metrics::reset();
    events::reset();
}

/// The process-wide trace epoch: all span timestamps are nanoseconds
/// since this instant.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Opens a named span. Returns a guard that records the elapsed time
/// (nested under the thread's currently open span, if any) when
/// dropped. A no-op returning an inert guard when tracing is
/// [disabled](enabled).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name.to_owned())
    } else {
        SpanGuard::noop()
    }
}

/// [`span`] with a runtime-built name (e.g. a per-benchmark label).
#[inline]
pub fn span_owned(name: String) -> SpanGuard {
    if enabled() {
        SpanGuard::open(name)
    } else {
        SpanGuard::noop()
    }
}

/// Adds `n` to the monotonic counter `name`, creating it on first use.
/// A no-op when tracing is [disabled](enabled).
#[inline]
pub fn count(name: &'static str, n: u64) {
    if enabled() {
        registry().counter(name).add(n);
    }
}

/// Records `value` into the histogram `name`, creating it on first
/// use. A no-op when tracing is [disabled](enabled).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        registry().histogram(name).record(value);
    }
}
