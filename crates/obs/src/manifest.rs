//! Run manifests: a machine-readable record of one instrumented run.

use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;

use crate::span::{self, TraceEvent};
use crate::{chrome_trace_json, events_snapshot, json, registry};

/// One `key = value` configuration entry of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConfigEntry {
    /// Configuration key (e.g. `"threads"`).
    pub key: String,
    /// Stringified value.
    pub value: String,
}

/// One node of the aggregated phase-timing tree: every span path
/// becomes a node whose `total_ns`/`count` aggregate all events with
/// that path (across threads), with child paths nested beneath it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseNode {
    /// The phase (span) name — one path segment.
    pub name: String,
    /// Total nanoseconds across all events at this path.
    pub total_ns: u64,
    /// Number of events at this path.
    pub count: u64,
    /// Child phases, sorted by name.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: &str) -> PhaseNode {
        PhaseNode {
            name: name.to_owned(),
            total_ns: 0,
            count: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut PhaseNode {
        match self.children.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => &mut self.children[i],
            Err(i) => {
                self.children.insert(i, PhaseNode::new(name));
                &mut self.children[i]
            }
        }
    }

    /// Depth-first iteration over this node and every descendant.
    pub fn walk(&self, f: &mut impl FnMut(&PhaseNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// Snapshot of one histogram (summary statistics of the positive
/// finite samples; see [`crate::Histogram`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Samples that were zero, negative or non-finite.
    pub non_positive: u64,
    /// Sum of positive finite samples.
    pub sum: f64,
    /// Smallest positive finite sample (+∞ when none).
    pub min: f64,
    /// Largest positive finite sample (−∞ when none).
    pub max: f64,
}

/// The machine-readable record of one instrumented run, serialisable
/// to `RUN_<name>.json` via [`RunManifest::to_json`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunManifest {
    /// Run name (the `<name>` of `RUN_<name>.json`).
    pub name: String,
    /// `git describe --always --dirty` of the working tree, or
    /// `"unknown"` outside a repository.
    pub git: String,
    /// Worker-thread count the run was configured with.
    pub threads: usize,
    /// Arbitrary run configuration (flags, sizes, seeds).
    pub config: Vec<ConfigEntry>,
    /// Wall-clock nanoseconds from session start to capture.
    pub wall_clock_ns: u64,
    /// Sum of the root-level phase durations *on the session's own
    /// thread* — comparable against `wall_clock_ns` to check that the
    /// instrumented phases cover the run.
    pub phase_total_ns: u64,
    /// Aggregated phase-timing tree over every collected span.
    pub phases: Vec<PhaseNode>,
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RunManifest {
    /// Serialises the manifest as JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Flat list of every phase name in the tree (depth-first).
    pub fn phase_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for root in &self.phases {
            root.walk(&mut |n| names.push(n.name.clone()));
        }
        names
    }
}

/// Builds the aggregated phase tree from raw events.
fn phase_tree(events: &[TraceEvent]) -> Vec<PhaseNode> {
    let mut virtual_root = PhaseNode::new("");
    for e in events {
        let mut node = &mut virtual_root;
        for seg in e.path.split('/') {
            node = node.child_mut(seg);
        }
        node.total_ns += e.dur_ns;
        node.count += 1;
    }
    virtual_root.children
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// An instrumented run: [`RunSession::start`] resets and enables
/// collection; [`RunSession::finish`] snapshots everything into a
/// [`RunManifest`], writes `RUN_<name>.json` (and optionally the
/// Chrome trace), and disables collection again.
///
/// ```no_run
/// let session = scorpio_obs::RunSession::start("demo");
/// { let _s = scorpio_obs::span("work"); /* ... */ }
/// let manifest = session
///     .finish(4, &[("small".into(), "true".into())],
///             Some(std::path::Path::new("trace.json")))
///     .unwrap();
/// assert!(manifest.phase_names().contains(&"work".to_owned()));
/// ```
#[derive(Debug)]
pub struct RunSession {
    name: String,
    started: Instant,
    tid: u64,
}

impl RunSession {
    /// Clears previously collected data, enables instrumentation and
    /// starts the wall clock.
    pub fn start(name: impl Into<String>) -> RunSession {
        crate::reset();
        crate::enable();
        RunSession {
            name: name.into(),
            started: Instant::now(),
            tid: span::current_tid(),
        }
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshots the current spans and metrics into a manifest without
    /// ending the session.
    pub fn manifest(&self, threads: usize, config: &[(String, String)]) -> RunManifest {
        let events = events_snapshot();
        let phase_total_ns = events
            .iter()
            .filter(|e| e.depth == 0 && e.tid == self.tid)
            .map(|e| e.dur_ns)
            .sum();
        RunManifest {
            name: self.name.clone(),
            git: git_describe(),
            threads,
            config: config
                .iter()
                .map(|(k, v)| ConfigEntry {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect(),
            wall_clock_ns: self.started.elapsed().as_nanos() as u64,
            phase_total_ns,
            phases: phase_tree(&events),
            counters: registry()
                .counters()
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name().to_owned(),
                    value: c.get(),
                })
                .collect(),
            histograms: registry()
                .histograms()
                .iter()
                .map(|h| HistogramSnapshot {
                    name: h.name().to_owned(),
                    count: h.count(),
                    non_positive: h.non_positive(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                })
                .collect(),
        }
    }

    /// Ends the session: snapshots the manifest, writes
    /// `RUN_<name>.json` into the current directory (and the Chrome
    /// trace to `trace_path` when given), disables instrumentation and
    /// returns the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing either file.
    pub fn finish(
        self,
        threads: usize,
        config: &[(String, String)],
        trace_path: Option<&Path>,
    ) -> std::io::Result<RunManifest> {
        let manifest = self.manifest(threads, config);
        if let Some(path) = trace_path {
            std::fs::write(path, chrome_trace_json(&events_snapshot()))?;
        }
        let manifest_path = PathBuf::from(format!("RUN_{}.json", self.name));
        std::fs::write(&manifest_path, manifest.to_json())?;
        crate::disable();
        Ok(manifest)
    }
}
