//! Run manifests: a machine-readable record of one instrumented run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use serde::Serialize;

use crate::events::{self, TaskEventRecord};
use crate::span::{self, TraceEvent};
use crate::{chrome_trace_json, events_snapshot, json, registry};

/// One `key = value` configuration entry of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ConfigEntry {
    /// Configuration key (e.g. `"threads"`).
    pub key: String,
    /// Stringified value.
    pub value: String,
}

/// One node of the aggregated phase-timing tree: every span path
/// becomes a node whose `total_ns`/`count` aggregate all events with
/// that path (across threads), with child paths nested beneath it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseNode {
    /// The phase (span) name — one path segment.
    pub name: String,
    /// Total nanoseconds across all events at this path.
    pub total_ns: u64,
    /// Number of events at this path.
    pub count: u64,
    /// Child phases, sorted by name.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: &str) -> PhaseNode {
        PhaseNode {
            name: name.to_owned(),
            total_ns: 0,
            count: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut PhaseNode {
        match self.children.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => &mut self.children[i],
            Err(i) => {
                self.children.insert(i, PhaseNode::new(name));
                &mut self.children[i]
            }
        }
    }

    /// Depth-first iteration over this node and every descendant.
    pub fn walk(&self, f: &mut impl FnMut(&PhaseNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterSnapshot {
    /// Registry name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// Snapshot of one histogram (summary statistics of the positive
/// finite samples; see [`crate::Histogram`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Samples that were zero, negative or non-finite.
    pub non_positive: u64,
    /// Sum of positive finite samples.
    pub sum: f64,
    /// Smallest positive finite sample (+∞ when none).
    pub min: f64,
    /// Largest positive finite sample (−∞ when none).
    pub max: f64,
}

/// The machine-readable record of one instrumented run, serialisable
/// to `RUN_<name>.json` via [`RunManifest::to_json`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunManifest {
    /// Run name (the `<name>` of `RUN_<name>.json`).
    pub name: String,
    /// `git describe --always --dirty` of the working tree, or
    /// `"unknown"` outside a repository.
    pub git: String,
    /// Worker-thread count the run was configured with.
    pub threads: usize,
    /// Arbitrary run configuration (flags, sizes, seeds).
    pub config: Vec<ConfigEntry>,
    /// Wall-clock nanoseconds from session start to capture.
    pub wall_clock_ns: u64,
    /// Sum of the root-level phase durations *on the session's own
    /// thread* — comparable against `wall_clock_ns` to check that the
    /// instrumented phases cover the run.
    pub phase_total_ns: u64,
    /// Aggregated phase-timing tree over every collected span.
    pub phases: Vec<PhaseNode>,
    /// Every registered counter, sorted by name. Values are **deltas
    /// over the session**: each counter's total at session start is
    /// subtracted, so back-to-back sessions in one process don't
    /// double-count each other's work.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered histogram, sorted by name. `count`,
    /// `non_positive` and `sum` are session deltas; `min`/`max` are
    /// process-lifetime extremes (extremes can't be un-merged).
    pub histograms: Vec<HistogramSnapshot>,
    /// The structured task-event timeline of the session (only events
    /// emitted after session start), in sequence order.
    pub task_events: Vec<TaskEventRecord>,
    /// Task events lost to full rings during the session.
    pub task_events_dropped: u64,
}

impl RunManifest {
    /// Serialises the manifest as JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Flat list of every phase name in the tree (depth-first).
    pub fn phase_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for root in &self.phases {
            root.walk(&mut |n| names.push(n.name.clone()));
        }
        names
    }
}

/// Builds the aggregated phase tree from raw events.
fn phase_tree(events: &[TraceEvent]) -> Vec<PhaseNode> {
    let mut virtual_root = PhaseNode::new("");
    for e in events {
        let mut node = &mut virtual_root;
        for seg in e.path.split('/') {
            node = node.child_mut(seg);
        }
        node.total_ns += e.dur_ns;
        node.count += 1;
    }
    virtual_root.children
}

/// `git describe --always --dirty`, or `"unknown"` when git or the
/// repository is unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// An instrumented run: [`RunSession::start`] snapshots the current
/// state of every collector and enables collection;
/// [`RunSession::finish`] (or [`RunSession::finish_in`]) snapshots
/// everything into a [`RunManifest`], writes `RUN_<name>.json` (and
/// optionally the Chrome trace), and disables collection again.
///
/// Sessions are **delta-scoped**, not global: counters record the
/// difference against their value at session start, histograms the
/// difference of their running count/sum, and spans/task events are
/// cut at a start watermark. Two back-to-back sessions in one process
/// therefore each report only their own work — starting a session no
/// longer wipes collector state someone else may still be reading.
///
/// ```no_run
/// let session = scorpio_obs::RunSession::start("demo");
/// { let _s = scorpio_obs::span("work"); /* ... */ }
/// let manifest = session
///     .finish(4, &[("small".into(), "true".into())],
///             Some(std::path::Path::new("trace.json")))
///     .unwrap();
/// assert!(manifest.phase_names().contains(&"work".to_owned()));
/// ```
#[derive(Debug)]
pub struct RunSession {
    name: String,
    started: Instant,
    tid: u64,
    /// Span-sink length at session start: only events recorded after
    /// this index belong to the session.
    span_watermark: usize,
    /// Task-event sequence watermark at session start.
    event_watermark: u64,
    /// Dropped-event total at session start.
    dropped_base: u64,
    /// Counter totals at session start (absent = counter created
    /// during the session, base 0).
    counter_base: BTreeMap<String, u64>,
    /// Histogram `(count, non_positive, sum)` at session start.
    histogram_base: BTreeMap<String, (u64, u64, f64)>,
}

impl RunSession {
    /// Snapshots the current collector state (the session's baseline),
    /// enables instrumentation and starts the wall clock.
    pub fn start(name: impl Into<String>) -> RunSession {
        let counter_base = registry()
            .counters()
            .iter()
            .map(|c| (c.name().to_owned(), c.get()))
            .collect();
        let histogram_base = registry()
            .histograms()
            .iter()
            .map(|h| (h.name().to_owned(), (h.count(), h.non_positive(), h.sum())))
            .collect();
        let session = RunSession {
            name: name.into(),
            started: Instant::now(),
            tid: span::current_tid(),
            span_watermark: events_snapshot().len(),
            event_watermark: events::seq_watermark(),
            dropped_base: events::events_dropped(),
            counter_base,
            histogram_base,
        };
        crate::enable();
        session
    }

    /// The run's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshots the current spans and metrics into a manifest without
    /// ending the session. Everything is reported as a delta against
    /// the state captured by [`RunSession::start`].
    pub fn manifest(&self, threads: usize, config: &[(String, String)]) -> RunManifest {
        let events = self.session_spans();
        let phase_total_ns = events
            .iter()
            .filter(|e| e.depth == 0 && e.tid == self.tid)
            .map(|e| e.dur_ns)
            .sum();
        let counter_delta = |name: &str, value: u64| {
            value.saturating_sub(self.counter_base.get(name).copied().unwrap_or(0))
        };
        RunManifest {
            name: self.name.clone(),
            git: git_describe(),
            threads,
            config: config
                .iter()
                .map(|(k, v)| ConfigEntry {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect(),
            wall_clock_ns: self.started.elapsed().as_nanos() as u64,
            phase_total_ns,
            phases: phase_tree(&events),
            counters: registry()
                .counters()
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name().to_owned(),
                    value: counter_delta(c.name(), c.get()),
                })
                .collect(),
            histograms: registry()
                .histograms()
                .iter()
                .map(|h| {
                    let (count0, np0, sum0) = self
                        .histogram_base
                        .get(h.name())
                        .copied()
                        .unwrap_or((0, 0, 0.0));
                    HistogramSnapshot {
                        name: h.name().to_owned(),
                        count: h.count().saturating_sub(count0),
                        non_positive: h.non_positive().saturating_sub(np0),
                        sum: h.sum() - sum0,
                        min: h.min(),
                        max: h.max(),
                    }
                })
                .collect(),
            task_events: events::task_events_snapshot()
                .iter()
                .filter(|e| e.seq >= self.event_watermark)
                .map(|e| e.to_record())
                .collect(),
            task_events_dropped: events::events_dropped().saturating_sub(self.dropped_base),
        }
    }

    /// The span events recorded since the session started (best-effort:
    /// if another party drained the sink mid-session the watermark is
    /// clamped, so the result is never out of bounds).
    fn session_spans(&self) -> Vec<TraceEvent> {
        let mut events = events_snapshot();
        let start = self.span_watermark.min(events.len());
        events.drain(..start);
        events
    }

    /// Ends the session: snapshots the manifest, writes
    /// `RUN_<name>.json` into the current directory (and the Chrome
    /// trace to `trace_path` when given), disables instrumentation and
    /// returns the manifest. See [`RunSession::finish_in`] to choose
    /// the manifest directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing either file.
    pub fn finish(
        self,
        threads: usize,
        config: &[(String, String)],
        trace_path: Option<&Path>,
    ) -> std::io::Result<RunManifest> {
        self.finish_in(Path::new("."), threads, config, trace_path)
    }

    /// [`RunSession::finish`], but writes `RUN_<name>.json` into
    /// `out_dir` (created if missing). The Chrome trace still goes to
    /// the explicit `trace_path` when one is given.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or writing
    /// either file.
    pub fn finish_in(
        self,
        out_dir: &Path,
        threads: usize,
        config: &[(String, String)],
        trace_path: Option<&Path>,
    ) -> std::io::Result<RunManifest> {
        let manifest = self.manifest(threads, config);
        std::fs::create_dir_all(out_dir)?;
        if let Some(path) = trace_path {
            std::fs::write(path, chrome_trace_json(&self.session_spans()))?;
        }
        let manifest_path: PathBuf = out_dir.join(format!("RUN_{}.json", self.name));
        std::fs::write(&manifest_path, manifest.to_json())?;
        crate::disable();
        Ok(manifest)
    }
}
