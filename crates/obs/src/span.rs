//! Structured spans, the process-global trace sink and the per-thread
//! request trace context.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::epoch;

/// One completed span: a named, timed interval on one thread.
///
/// Events are recorded when the [`SpanGuard`](crate::SpanGuard) drops,
/// so within a thread children always precede their parent in the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slash-joined ancestry within the opening thread, e.g.
    /// `"fig7/sobel/taskwait"` — the last segment is [`name`](Self::name).
    pub path: String,
    /// The span's own name.
    pub name: String,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense id of the recording thread (0 = first thread that traced).
    pub tid: u64,
    /// Nesting depth within the thread (0 = thread-root span).
    pub depth: usize,
    /// Request trace id in force when the span opened (0 = none). Set
    /// by [`trace_context`](crate::trace_context); lets a request's
    /// spans be picked out of the merged sink and reassembled into one
    /// tree.
    pub trace_id: u64,
}

/// Bound on the global span sink. A long-lived traced process (the
/// serve daemon runs with tracing on by default) keeps the newest
/// `SINK_CAP` spans; older ones are evicted and counted in
/// [`spans_dropped`]. Short instrumented runs (benches, tests) stay far
/// below the bound and lose nothing.
const SINK_CAP: usize = 1 << 16;

static SINK: Mutex<VecDeque<TraceEvent>> = Mutex::new(VecDeque::new());
static SPANS_DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Request trace id stamped onto spans/events this thread emits
    /// (0 = no request context).
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    /// When capturing, completed spans are *also* cloned here so a
    /// request handler can assemble its own span tree without touching
    /// the global sink.
    static CAPTURE: RefCell<Option<Vec<TraceEvent>>> = const { RefCell::new(None) };
}

/// Dense id of the calling thread within the trace.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The request trace id currently in force on this thread (0 = none).
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(Cell::get)
}

/// RAII guard of one request trace context; see
/// [`trace_context`](crate::trace_context).
#[derive(Debug)]
pub struct TraceContext {
    prev_id: u64,
    prev_capture: Option<Vec<TraceEvent>>,
    prev_event_capture: Option<Vec<crate::events::Raw>>,
    capturing: bool,
}

impl TraceContext {
    pub(crate) fn open(trace_id: u64, capture: bool) -> TraceContext {
        let prev_id = TRACE_ID.with(|t| t.replace(trace_id));
        let (prev_capture, prev_event_capture) = if capture {
            (
                CAPTURE.with(|c| c.borrow_mut().replace(Vec::new())),
                crate::events::capture_replace(Some(Vec::new())),
            )
        } else {
            (None, None)
        };
        TraceContext {
            prev_id,
            prev_capture,
            prev_event_capture,
            capturing: capture,
        }
    }

    /// Drains the spans captured on this thread since the context
    /// opened (or the last call). Empty unless the context was opened
    /// with capture on *and* tracing is [enabled](crate::enabled).
    pub fn take_spans(&mut self) -> Vec<TraceEvent> {
        if !self.capturing {
            return Vec::new();
        }
        CAPTURE.with(|c| {
            c.borrow_mut()
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default()
        })
    }

    /// Drains the task events captured on this thread since the context
    /// opened (or the last call). Empty unless capturing.
    pub fn take_task_events(&mut self) -> Vec<crate::TaskEvent> {
        if !self.capturing {
            return Vec::new();
        }
        crate::events::capture_take()
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev_id));
        if self.capturing {
            let prev = self.prev_capture.take();
            CAPTURE.with(|c| *c.borrow_mut() = prev);
            crate::events::capture_replace(self.prev_event_capture.take());
        }
    }
}

/// RAII guard for an open span; records a [`TraceEvent`] when dropped.
/// Obtained from [`span`](crate::span) / [`span_owned`](crate::span_owned);
/// inert (records nothing) when tracing was disabled at open time.
#[derive(Debug)]
pub struct SpanGuard(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    path: String,
    depth: usize,
    tid: u64,
    start: Instant,
    start_ns: u64,
    trace_id: u64,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard(None)
    }

    pub(crate) fn open(name: String) -> SpanGuard {
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let tid = current_tid();
        let trace_id = current_trace_id();
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.clone()
            } else {
                format!("{}/{}", stack.join("/"), name)
            };
            let depth = stack.len();
            stack.push(name);
            (path, depth)
        });
        SpanGuard(Some(ActiveSpan {
            path,
            depth,
            tid,
            start,
            start_ns,
            trace_id,
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let name = active
            .path
            .rsplit('/')
            .next()
            .unwrap_or(&active.path)
            .to_owned();
        let event = TraceEvent {
            path: active.path,
            name,
            start_ns: active.start_ns,
            dur_ns,
            tid: active.tid,
            depth: active.depth,
            trace_id: active.trace_id,
        };
        CAPTURE.with(|c| {
            if let Some(buf) = c.borrow_mut().as_mut() {
                buf.push(event.clone());
            }
        });
        let mut sink = SINK.lock().expect("trace sink poisoned");
        if sink.len() >= SINK_CAP {
            sink.pop_front();
            SPANS_DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        sink.push_back(event);
    }
}

/// Copies the currently collected events out of the sink (sink keeps
/// them; see [`take_events`] for the draining variant).
pub fn events_snapshot() -> Vec<TraceEvent> {
    SINK.lock().expect("trace sink poisoned").iter().cloned().collect()
}

/// Drains and returns every collected event.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *SINK.lock().expect("trace sink poisoned")).into()
}

/// Spans evicted from the bounded global sink since the last
/// [`reset`](crate::reset) — nonzero means a trace export would be
/// missing the oldest spans (the per-request capture path is
/// unaffected).
pub fn spans_dropped() -> u64 {
    SPANS_DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn reset() {
    SINK.lock().expect("trace sink poisoned").clear();
    SPANS_DROPPED.store(0, Ordering::Relaxed);
}

/// Renders events as a Chrome-trace-format JSON string (`ph: "X"`
/// complete events, microsecond timestamps) loadable in
/// `about:tracing` / [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        crate::json::escape_into(&mut out, &e.name);
        out.push_str(",\"cat\":\"scorpio\",\"ph\":\"X\",\"ts\":");
        let _ = write!(out, "{:.3}", e.start_ns as f64 / 1000.0);
        out.push_str(",\"dur\":");
        let _ = write!(out, "{:.3}", e.dur_ns as f64 / 1000.0);
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", e.tid);
        out.push_str(",\"args\":{\"path\":");
        crate::json::escape_into(&mut out, &e.path);
        if e.trace_id != 0 {
            let _ = write!(out, ",\"trace_id\":\"{:016x}\"", e.trace_id);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}
