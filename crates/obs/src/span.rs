//! Structured spans and the process-global trace sink.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::epoch;

/// One completed span: a named, timed interval on one thread.
///
/// Events are recorded when the [`SpanGuard`](crate::SpanGuard) drops,
/// so within a thread children always precede their parent in the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slash-joined ancestry within the opening thread, e.g.
    /// `"fig7/sobel/taskwait"` — the last segment is [`name`](Self::name).
    pub path: String,
    /// The span's own name.
    pub name: String,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense id of the recording thread (0 = first thread that traced).
    pub tid: u64,
    /// Nesting depth within the thread (0 = thread-root span).
    pub depth: usize,
}

static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Dense id of the calling thread within the trace.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// RAII guard for an open span; records a [`TraceEvent`] when dropped.
/// Obtained from [`span`](crate::span) / [`span_owned`](crate::span_owned);
/// inert (records nothing) when tracing was disabled at open time.
#[derive(Debug)]
pub struct SpanGuard(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    path: String,
    depth: usize,
    tid: u64,
    start: Instant,
    start_ns: u64,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard(None)
    }

    pub(crate) fn open(name: String) -> SpanGuard {
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        let tid = current_tid();
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.clone()
            } else {
                format!("{}/{}", stack.join("/"), name)
            };
            let depth = stack.len();
            stack.push(name);
            (path, depth)
        });
        SpanGuard(Some(ActiveSpan {
            path,
            depth,
            tid,
            start,
            start_ns,
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let name = active
            .path
            .rsplit('/')
            .next()
            .unwrap_or(&active.path)
            .to_owned();
        let event = TraceEvent {
            path: active.path,
            name,
            start_ns: active.start_ns,
            dur_ns,
            tid: active.tid,
            depth: active.depth,
        };
        SINK.lock().expect("trace sink poisoned").push(event);
    }
}

/// Copies the currently collected events out of the sink (sink keeps
/// them; see [`take_events`] for the draining variant).
pub fn events_snapshot() -> Vec<TraceEvent> {
    SINK.lock().expect("trace sink poisoned").clone()
}

/// Drains and returns every collected event.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *SINK.lock().expect("trace sink poisoned"))
}

pub(crate) fn reset() {
    SINK.lock().expect("trace sink poisoned").clear();
}

/// Renders events as a Chrome-trace-format JSON string (`ph: "X"`
/// complete events, microsecond timestamps) loadable in
/// `about:tracing` / [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        crate::json::escape_into(&mut out, &e.name);
        out.push_str(",\"cat\":\"scorpio\",\"ph\":\"X\",\"ts\":");
        let _ = write!(out, "{:.3}", e.start_ns as f64 / 1000.0);
        out.push_str(",\"dur\":");
        let _ = write!(out, "{:.3}", e.dur_ns as f64 / 1000.0);
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", e.tid);
        out.push_str(",\"args\":{\"path\":");
        crate::json::escape_into(&mut out, &e.path);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}
