//! Sliding-window SLO telemetry: a lock-light, time-bucketed aggregator
//! answering "what happened over the last 10s / 1m / 5m" for a serving
//! process — request rate, error rate, latency quantiles, cache hit
//! rate, and achieved-vs-requested taskwait ratio.
//!
//! # Design
//!
//! A [`SlidingWindow`] is a ring of [`WINDOW_SLOTS`] one-second
//! buckets, each behind its own `Mutex`. A sample at time `t` hashes to
//! slot `⌊t/1s⌋ % WINDOW_SLOTS`; the bucket remembers which absolute
//! second it currently represents and lazily resets itself when a
//! sample from a *newer* second lands on it (rotation is driven by
//! writers — there is no timer thread). Contention is therefore one
//! short critical section (~tens of ns: a few adds and one array
//! index) on one of 300 independent locks, and readers snapshotting a
//! window only touch the buckets inside the asked-for span. Samples
//! older than what a slot currently holds (possible when a reader's
//! clock lags a full ring revolution, i.e. > 5 minutes) are dropped and
//! counted in [`SlidingWindow::stale_dropped`] rather than corrupting a
//! newer bucket.
//!
//! Timestamps are passed in explicitly (nanoseconds since an arbitrary
//! epoch — the obs [`epoch`](crate::enable) in production) so tests can
//! drive rotation deterministically; the proptest suite pins that
//! samples are never double-counted or lost across bucket boundaries.
//!
//! Latencies are stored as the same log₂ bucket layout as
//! [`crate::Histogram`], so window quantiles reuse
//! [`quantile_from_buckets`] and agree with the registry's lifetime
//! histograms to within a bucket width.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::{quantile_from_buckets, Histogram, HISTOGRAM_BUCKETS};

/// Number of one-second buckets a [`SlidingWindow`] retains — 300
/// seconds, enough to answer every span in [`WINDOW_SPANS`].
pub const WINDOW_SLOTS: usize = 300;

/// The spans the serving stack reports, as `(label, seconds)` pairs.
pub const WINDOW_SPANS: [(&str, u64); 3] = [("10s", 10), ("1m", 60), ("5m", 300)];

/// One second's worth of accumulated samples.
#[derive(Debug)]
struct Bucket {
    /// Absolute second this bucket currently represents
    /// (`u64::MAX` = never written).
    epoch_s: u64,
    requests: u64,
    errors: u64,
    cache_hits: u64,
    cache_lookups: u64,
    latency: [u64; HISTOGRAM_BUCKETS],
    latency_min_ns: f64,
    latency_max_ns: f64,
    requested_ratio_sum: f64,
    achieved_ratio_sum: f64,
    ratio_samples: u64,
}

impl Bucket {
    const fn empty() -> Bucket {
        Bucket {
            epoch_s: u64::MAX,
            requests: 0,
            errors: 0,
            cache_hits: 0,
            cache_lookups: 0,
            latency: [0; HISTOGRAM_BUCKETS],
            latency_min_ns: f64::INFINITY,
            latency_max_ns: f64::NEG_INFINITY,
            requested_ratio_sum: 0.0,
            achieved_ratio_sum: 0.0,
            ratio_samples: 0,
        }
    }

    fn reset_for(&mut self, epoch_s: u64) {
        *self = Bucket::empty();
        self.epoch_s = epoch_s;
    }
}

/// One request's contribution to a window; see
/// [`SlidingWindow::record`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestSample {
    /// End-to-end service latency in nanoseconds (0 = not measured;
    /// still counted as a request but not in the latency quantiles).
    pub latency_ns: u64,
    /// Whether the request failed.
    pub error: bool,
    /// `Some(hit)` when the request did a tape-cache lookup.
    pub cache_hit: Option<bool>,
    /// The taskwait ratio the client asked for, when the request ran
    /// an analysis.
    pub requested_ratio: Option<f64>,
    /// The ratio the runtime actually executed (tasks run / total).
    pub achieved_ratio: Option<f64>,
}

/// Aggregated view of one span; see [`SlidingWindow::snapshot`].
/// Quantile / rate fields are `NaN` when their denominator is empty.
#[derive(Debug, Clone, Copy)]
pub struct WindowSnapshot {
    /// Span length in seconds this snapshot aggregates.
    pub span_secs: u64,
    /// Requests observed inside the span.
    pub requests: u64,
    /// Failed requests inside the span.
    pub errors: u64,
    /// `requests / span_secs`.
    pub rate_per_s: f64,
    /// `errors / requests` (`NaN` when no requests).
    pub error_rate: f64,
    /// Median service latency in ns (`NaN` when no latency samples).
    pub p50_ns: f64,
    /// 90th-percentile service latency in ns.
    pub p90_ns: f64,
    /// 99th-percentile service latency in ns.
    pub p99_ns: f64,
    /// Cache lookups inside the span.
    pub cache_lookups: u64,
    /// Cache hits inside the span.
    pub cache_hits: u64,
    /// `cache_hits / cache_lookups` (`NaN` when no lookups).
    pub cache_hit_rate: f64,
    /// Mean requested taskwait ratio (`NaN` when no ratio samples).
    pub requested_ratio_mean: f64,
    /// Mean achieved taskwait ratio (`NaN` when no ratio samples).
    pub achieved_ratio_mean: f64,
    /// Requests that contributed ratio samples.
    pub ratio_samples: u64,
}

/// Per-kernel bundle of [`WindowSnapshot`]s over [`WINDOW_SPANS`], the
/// unit the `window` protocol verb and `scorpio_top` work with.
#[derive(Debug, Clone)]
pub struct KernelWindowStats {
    /// Kernel name (or `"_server"` for the all-kernel aggregate).
    pub kernel: String,
    /// `(label, snapshot)` per span in [`WINDOW_SPANS`] order.
    pub spans: Vec<(&'static str, WindowSnapshot)>,
}

/// Lock-light sliding-window aggregator; see the [module](self) docs.
#[derive(Debug)]
pub struct SlidingWindow {
    slots: Vec<Mutex<Bucket>>,
    stale_dropped: AtomicU64,
}

impl Default for SlidingWindow {
    fn default() -> SlidingWindow {
        SlidingWindow::new()
    }
}

impl SlidingWindow {
    /// An empty window ring.
    pub fn new() -> SlidingWindow {
        SlidingWindow {
            slots: (0..WINDOW_SLOTS).map(|_| Mutex::new(Bucket::empty())).collect(),
            stale_dropped: AtomicU64::new(0),
        }
    }

    /// Records one request that *ended* at `t_ns` (nanoseconds since
    /// the caller's epoch). Lock held for a handful of adds; stale
    /// samples (older than the slot's current second) are dropped and
    /// counted instead.
    pub fn record(&self, t_ns: u64, sample: &RequestSample) {
        let sec = t_ns / 1_000_000_000;
        let slot = (sec % WINDOW_SLOTS as u64) as usize;
        let mut b = match self.slots[slot].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if b.epoch_s != sec {
            if b.epoch_s != u64::MAX && b.epoch_s > sec {
                drop(b);
                self.stale_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            b.reset_for(sec);
        }
        b.requests += 1;
        if sample.error {
            b.errors += 1;
        }
        if let Some(hit) = sample.cache_hit {
            b.cache_lookups += 1;
            if hit {
                b.cache_hits += 1;
            }
        }
        if sample.latency_ns > 0 {
            let v = sample.latency_ns as f64;
            b.latency[Histogram::bucket_of(v)] += 1;
            b.latency_min_ns = b.latency_min_ns.min(v);
            b.latency_max_ns = b.latency_max_ns.max(v);
        }
        if let (Some(req), Some(ach)) = (sample.requested_ratio, sample.achieved_ratio) {
            b.requested_ratio_sum += req;
            b.achieved_ratio_sum += ach;
            b.ratio_samples += 1;
        }
    }

    /// Aggregates the buckets covering `(now - span_secs, now]` — the
    /// current (possibly partial) second counts toward the span.
    /// `span_secs` is clamped to the ring's retention
    /// ([`WINDOW_SLOTS`] seconds).
    pub fn snapshot(&self, now_ns: u64, span_secs: u64) -> WindowSnapshot {
        let span_secs = span_secs.clamp(1, WINDOW_SLOTS as u64);
        let now_s = now_ns / 1_000_000_000;
        let oldest = now_s.saturating_sub(span_secs - 1);
        let mut requests = 0u64;
        let mut errors = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_lookups = 0u64;
        let mut latency = [0u64; HISTOGRAM_BUCKETS];
        let mut lat_min = f64::INFINITY;
        let mut lat_max = f64::NEG_INFINITY;
        let mut req_ratio = 0.0f64;
        let mut ach_ratio = 0.0f64;
        let mut ratio_samples = 0u64;
        for sec in oldest..=now_s {
            let slot = (sec % WINDOW_SLOTS as u64) as usize;
            let b = match self.slots[slot].lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if b.epoch_s != sec {
                continue;
            }
            requests += b.requests;
            errors += b.errors;
            cache_hits += b.cache_hits;
            cache_lookups += b.cache_lookups;
            for (agg, cnt) in latency.iter_mut().zip(b.latency.iter()) {
                *agg += cnt;
            }
            lat_min = lat_min.min(b.latency_min_ns);
            lat_max = lat_max.max(b.latency_max_ns);
            req_ratio += b.requested_ratio_sum;
            ach_ratio += b.achieved_ratio_sum;
            ratio_samples += b.ratio_samples;
        }
        WindowSnapshot {
            span_secs,
            requests,
            errors,
            rate_per_s: requests as f64 / span_secs as f64,
            error_rate: errors as f64 / requests as f64,
            p50_ns: quantile_from_buckets(&latency, 0.5, lat_min, lat_max),
            p90_ns: quantile_from_buckets(&latency, 0.9, lat_min, lat_max),
            p99_ns: quantile_from_buckets(&latency, 0.99, lat_min, lat_max),
            cache_lookups,
            cache_hits,
            cache_hit_rate: cache_hits as f64 / cache_lookups as f64,
            requested_ratio_mean: req_ratio / ratio_samples as f64,
            achieved_ratio_mean: ach_ratio / ratio_samples as f64,
            ratio_samples,
        }
    }

    /// Snapshots every span in [`WINDOW_SPANS`] at `now_ns`.
    pub fn snapshot_all(&self, now_ns: u64) -> Vec<(&'static str, WindowSnapshot)> {
        WINDOW_SPANS
            .iter()
            .map(|&(label, secs)| (label, self.snapshot(now_ns, secs)))
            .collect()
    }

    /// Samples dropped because they were older than what their slot
    /// currently holds (only possible when a writer lags the ring's
    /// full retention, > [`WINDOW_SLOTS`] seconds).
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped.load(Ordering::Relaxed)
    }
}
