//! Quality-of-result task telemetry: a bounded, per-thread event log.
//!
//! The spans of [`crate::span`] time *phases*; this module records
//! *decisions* — one structured event per task the significance-driven
//! runtime executes or drops, plus `taskwait` summaries and sweep
//! markers. Together they answer the question the paper's Figure 7
//! asks: *which* tasks were approximated or dropped at a given ratio,
//! and what it cost in output quality (the join with `scorpio-quality`
//! metrics happens in the `fig7_sweep` harness, which writes the
//! curves to `BENCH_qor.json`).
//!
//! # Design
//!
//! Every emitting thread owns one **bounded ring** of fixed-size event
//! records stored as plain `AtomicU64` words (a struct-of-words
//! layout), so the hot path is entirely lock-free and allocation-free:
//!
//! * the owning thread appends with relaxed stores and publishes each
//!   record with one release store of the ring length — no CAS, no
//!   mutex, no other thread ever writes the ring;
//! * when the ring is full, further events are **counted as drops**
//!   (see [`events_dropped`]) instead of blocking or reallocating;
//! * a global atomic sequence number stamps every event, so merging
//!   the per-thread rings yields one monotonic timeline in which
//!   within-thread order is preserved exactly;
//! * labels are interned once per thread into a process-wide table;
//!   records store a 4-byte id, not a `String`;
//! * threads that exit (the executor's scoped workers live for one
//!   `taskwait`) flush their ring into a spill list from their
//!   thread-local destructor, so no event is lost when a worker dies
//!   before collection.
//!
//! Like every other `scorpio-obs` facility the emission entry points
//! ([`task_event`], [`taskwait_event`], [`ratio_event`],
//! [`phase_event`]) cost one relaxed atomic load when instrumentation
//! is [disabled](crate::enabled) — no clock reads, no ring allocation,
//! nothing.
//!
//! # Collection
//!
//! [`task_events_snapshot`] merges (without draining) and
//! [`take_task_events`] drains by bumping a global generation: rings
//! notice the stale generation on their owner's next append and reset
//! themselves, so draining never touches memory another thread is
//! writing. [`events_jsonl`] renders events one-JSON-object-per-line
//! for offline analysis; [`TaskEvent::to_record`] produces the
//! serialisable row embedded in [`crate::RunManifest`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::Serialize;

use crate::span::current_tid;

/// How the runtime executed (or didn't execute) a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskClass {
    /// The accurate (original) body ran.
    Accurate,
    /// The approximate (`approxfun`) body ran.
    Approx,
    /// The task was elided: chosen for approximation with no
    /// approximate body available.
    Dropped,
}

impl TaskClass {
    /// Stable lowercase name used in JSONL/manifest exports.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskClass::Accurate => "accurate",
            TaskClass::Approx => "approx",
            TaskClass::Dropped => "dropped",
        }
    }

    fn from_u64(v: u64) -> TaskClass {
        match v {
            0 => TaskClass::Accurate,
            1 => TaskClass::Approx,
            _ => TaskClass::Dropped,
        }
    }
}

/// What the adaptive controller did with one quality observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionClass {
    /// The controller moved the ratio.
    Stepped,
    /// The observation landed inside the hysteresis band (or the
    /// bracket pinned the ratio); the ratio was left alone.
    Held,
    /// The quality signal was NaN/∞ and was discarded without
    /// influencing the ratio.
    NonFinite,
    /// The controller latched convergence on this observation.
    Converged,
}

impl DecisionClass {
    /// Stable lowercase name used in JSONL/manifest exports.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionClass::Stepped => "stepped",
            DecisionClass::Held => "held",
            DecisionClass::NonFinite => "non_finite",
            DecisionClass::Converged => "converged",
        }
    }

    fn from_u64(v: u64) -> DecisionClass {
        match v {
            0 => DecisionClass::Stepped,
            1 => DecisionClass::Held,
            2 => DecisionClass::NonFinite,
            _ => DecisionClass::Converged,
        }
    }
}

/// The event-specific payload of a [`TaskEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// One task's execution decision and cost. Emitted by the executor
    /// (executed tasks, timed) and by `taskwait` itself (dropped
    /// tasks, zero duration).
    Task {
        /// Spawn-order id of the task within its group.
        task_id: u64,
        /// The task's (clamped) significance.
        significance: f64,
        /// How the runtime ran the task.
        class: TaskClass,
        /// Body wall time in nanoseconds (0 for dropped tasks).
        duration_ns: u64,
    },
    /// One `taskwait` summary: the requested quality knob against what
    /// the schedule actually delivered.
    Taskwait {
        /// The `ratio` knob the caller passed.
        requested_ratio: f64,
        /// `accurate / total` the schedule achieved (≥ requested —
        /// significance-1 tasks run accurately on top of the quota).
        achieved_ratio: f64,
        /// Tasks that ran their accurate body.
        accurate: u64,
        /// Tasks that ran their approximate body.
        approximate: u64,
        /// Tasks dropped outright.
        dropped: u64,
        /// Wall time of the whole `taskwait` in nanoseconds.
        duration_ns: u64,
    },
    /// A sweep-point marker: a harness is about to run the labelled
    /// workload at this requested ratio (lets offline tooling cut the
    /// timeline into per-ratio segments).
    Ratio {
        /// The ratio the following tasks will be scheduled at.
        requested: f64,
    },
    /// A coarse phase marker with a duration (for harness-level phases
    /// that want to appear in the event timeline as well as the span
    /// tree).
    Phase {
        /// Phase wall time in nanoseconds.
        duration_ns: u64,
    },
    /// One adaptive-controller decision: the quality signal it observed
    /// and how it moved (or held) the ratio in response. Emitted by
    /// `scorpio_runtime::controller::adaptive` so every online
    /// adjustment is on the same timeline as the tasks it governs.
    RatioDecision {
        /// Controller step counter (0-based observation index).
        step: u64,
        /// Ratio in force when the observation arrived.
        ratio_before: f64,
        /// Ratio after the decision (equals `ratio_before` on holds).
        ratio_after: f64,
        /// The raw quality/energy signal observed (may be NaN for
        /// [`DecisionClass::NonFinite`] decisions).
        signal: f64,
        /// What the controller did.
        decision: DecisionClass,
    },
}

/// One structured telemetry event on the merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskEvent {
    /// Global monotonic sequence number (the merge key: sorting by
    /// `seq` yields one timeline that preserves per-thread order).
    pub seq: u64,
    /// Emission time in nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Dense id of the emitting thread (shared with span `tid`s).
    pub worker: u64,
    /// The task-group label (or phase/kernel name) the event belongs to.
    pub label: String,
    /// Request trace id in force when the event was emitted (0 = none);
    /// see [`trace_context`](crate::trace_context).
    pub trace_id: u64,
    /// The payload.
    pub kind: EventKind,
}

/// Flat, serialisable form of a [`TaskEvent`] — the row format of the
/// JSONL export and of the `task_events` array in
/// [`crate::RunManifest`]. Fields not applicable to the event type are
/// `null`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskEventRecord {
    /// Global sequence number.
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Dense emitting-thread id.
    pub worker: u64,
    /// Task-group / phase label.
    pub label: String,
    /// Request trace id as 16 hex digits (`None` when the event was
    /// emitted outside any request context). Hex keeps full u64
    /// fidelity through JSON parsers that read numbers as f64.
    pub trace_id: Option<String>,
    /// `"task"`, `"taskwait"`, `"ratio"`, `"phase"` or
    /// `"ratio_decision"`.
    pub event: &'static str,
    /// Spawn-order task id (task events only).
    pub task_id: Option<u64>,
    /// Task significance (task events only).
    pub significance: Option<f64>,
    /// `"accurate"` / `"approx"` / `"dropped"` (task events only).
    pub class: Option<&'static str>,
    /// Requested ratio (taskwait and ratio events).
    pub requested_ratio: Option<f64>,
    /// Achieved accurate fraction (taskwait events only).
    pub achieved_ratio: Option<f64>,
    /// Accurate-task count (taskwait events only).
    pub accurate: Option<u64>,
    /// Approximate-task count (taskwait events only).
    pub approximate: Option<u64>,
    /// Dropped-task count (taskwait events only).
    pub dropped: Option<u64>,
    /// Duration in nanoseconds (task, taskwait and phase events).
    pub duration_ns: Option<u64>,
    /// Controller step counter (ratio-decision events only).
    pub step: Option<u64>,
    /// Ratio before the decision (ratio-decision events only).
    pub ratio_before: Option<f64>,
    /// Ratio after the decision (ratio-decision events only).
    pub ratio_after: Option<f64>,
    /// Observed quality/energy signal (ratio-decision events only).
    pub signal: Option<f64>,
    /// `"stepped"` / `"held"` / `"non_finite"` / `"converged"`
    /// (ratio-decision events only).
    pub decision: Option<&'static str>,
}

impl TaskEvent {
    /// Flattens the event into its serialisable row form.
    pub fn to_record(&self) -> TaskEventRecord {
        let mut r = TaskEventRecord {
            seq: self.seq,
            t_ns: self.t_ns,
            worker: self.worker,
            label: self.label.clone(),
            trace_id: (self.trace_id != 0).then(|| format!("{:016x}", self.trace_id)),
            event: "task",
            task_id: None,
            significance: None,
            class: None,
            requested_ratio: None,
            achieved_ratio: None,
            accurate: None,
            approximate: None,
            dropped: None,
            duration_ns: None,
            step: None,
            ratio_before: None,
            ratio_after: None,
            signal: None,
            decision: None,
        };
        match self.kind {
            EventKind::Task {
                task_id,
                significance,
                class,
                duration_ns,
            } => {
                r.event = "task";
                r.task_id = Some(task_id);
                r.significance = Some(significance);
                r.class = Some(class.as_str());
                r.duration_ns = Some(duration_ns);
            }
            EventKind::Taskwait {
                requested_ratio,
                achieved_ratio,
                accurate,
                approximate,
                dropped,
                duration_ns,
            } => {
                r.event = "taskwait";
                r.requested_ratio = Some(requested_ratio);
                r.achieved_ratio = Some(achieved_ratio);
                r.accurate = Some(accurate);
                r.approximate = Some(approximate);
                r.dropped = Some(dropped);
                r.duration_ns = Some(duration_ns);
            }
            EventKind::Ratio { requested } => {
                r.event = "ratio";
                r.requested_ratio = Some(requested);
            }
            EventKind::Phase { duration_ns } => {
                r.event = "phase";
                r.duration_ns = Some(duration_ns);
            }
            EventKind::RatioDecision {
                step,
                ratio_before,
                ratio_after,
                signal,
                decision,
            } => {
                r.event = "ratio_decision";
                r.step = Some(step);
                r.ratio_before = Some(ratio_before);
                r.ratio_after = Some(ratio_after);
                r.signal = Some(signal);
                r.decision = Some(decision.as_str());
            }
        }
        r
    }
}

// ───────────────────────── raw record layout ─────────────────────────

/// Words per ring record. Kind-dependent payload lives in `a..=f`; the
/// last word carries the request trace id; see `encode`/`decode` for
/// the per-kind assignment.
const WORDS: usize = 13;

const K_TASK: u64 = 0;
const K_TASKWAIT: u64 = 1;
const K_RATIO: u64 = 2;
const K_PHASE: u64 = 3;
const K_DECISION: u64 = 4;

/// One decoded raw record: `[seq, t_ns, kind, class, worker, label,
/// a, b, c, d, e, f, trace_id]`.
pub(crate) type Raw = [u64; WORDS];

fn encode(seq: u64, t_ns: u64, worker: u64, label: u32, trace_id: u64, kind: &EventKind) -> Raw {
    let mut w = [0u64; WORDS];
    w[0] = seq;
    w[1] = t_ns;
    w[4] = worker;
    w[5] = label as u64;
    w[12] = trace_id;
    match *kind {
        EventKind::Task {
            task_id,
            significance,
            class,
            duration_ns,
        } => {
            w[2] = K_TASK;
            w[3] = class as u64;
            w[6] = task_id;
            w[9] = significance.to_bits();
            w[11] = duration_ns;
        }
        EventKind::Taskwait {
            requested_ratio,
            achieved_ratio,
            accurate,
            approximate,
            dropped,
            duration_ns,
        } => {
            w[2] = K_TASKWAIT;
            w[6] = accurate;
            w[7] = approximate;
            w[8] = dropped;
            w[9] = requested_ratio.to_bits();
            w[10] = achieved_ratio.to_bits();
            w[11] = duration_ns;
        }
        EventKind::Ratio { requested } => {
            w[2] = K_RATIO;
            w[9] = requested.to_bits();
        }
        EventKind::Phase { duration_ns } => {
            w[2] = K_PHASE;
            w[11] = duration_ns;
        }
        EventKind::RatioDecision {
            step,
            ratio_before,
            ratio_after,
            signal,
            decision,
        } => {
            w[2] = K_DECISION;
            w[3] = decision as u64;
            w[6] = step;
            w[7] = ratio_before.to_bits();
            w[8] = ratio_after.to_bits();
            w[9] = signal.to_bits();
        }
    }
    w
}

fn decode(w: &Raw) -> TaskEvent {
    let kind = match w[2] {
        K_TASK => EventKind::Task {
            task_id: w[6],
            significance: f64::from_bits(w[9]),
            class: TaskClass::from_u64(w[3]),
            duration_ns: w[11],
        },
        K_TASKWAIT => EventKind::Taskwait {
            requested_ratio: f64::from_bits(w[9]),
            achieved_ratio: f64::from_bits(w[10]),
            accurate: w[6],
            approximate: w[7],
            dropped: w[8],
            duration_ns: w[11],
        },
        K_RATIO => EventKind::Ratio {
            requested: f64::from_bits(w[9]),
        },
        K_DECISION => EventKind::RatioDecision {
            step: w[6],
            ratio_before: f64::from_bits(w[7]),
            ratio_after: f64::from_bits(w[8]),
            signal: f64::from_bits(w[9]),
            decision: DecisionClass::from_u64(w[3]),
        },
        _ => EventKind::Phase { duration_ns: w[11] },
    };
    TaskEvent {
        seq: w[0],
        t_ns: w[1],
        worker: w[4],
        label: label_name(w[5] as u32),
        trace_id: w[12],
        kind,
    }
}

// ───────────────────────── label interning ─────────────────────────

/// Process-wide label table: id → name, plus reverse lookup.
struct Labels {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

fn labels() -> &'static Mutex<Labels> {
    static LABELS: OnceLock<Mutex<Labels>> = OnceLock::new();
    LABELS.get_or_init(|| {
        Mutex::new(Labels {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

thread_local! {
    /// Per-thread intern cache so the steady state never takes the
    /// global label lock.
    static LABEL_CACHE: RefCell<HashMap<String, u32>> = RefCell::new(HashMap::new());
}

fn intern(label: &str) -> u32 {
    LABEL_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&id) = cache.get(label) {
            return id;
        }
        let mut table = labels().lock().expect("label table poisoned");
        let id = match table.ids.get(label) {
            Some(&id) => id,
            None => {
                let id = table.names.len() as u32;
                table.names.push(label.to_owned());
                table.ids.insert(label.to_owned(), id);
                id
            }
        };
        cache.insert(label.to_owned(), id);
        id
    })
}

fn label_name(id: u32) -> String {
    let table = labels().lock().expect("label table poisoned");
    table
        .names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("<label#{id}>"))
}

// ─────────────────────────── the ring ───────────────────────────

/// Default per-thread ring capacity (records). At 12 words a record,
/// the default ring is 768 KiB per emitting thread.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Sets the capacity (in records) used by event rings **created after
/// this call** — existing rings keep their size. Intended for tests
/// exercising the full-ring drop path; the default is
/// [`DEFAULT_RING_CAPACITY`].
///
/// # Panics
///
/// Panics if `records` is zero.
pub fn set_ring_capacity(records: usize) {
    assert!(records > 0, "event ring capacity must be at least 1");
    RING_CAPACITY.store(records, Ordering::SeqCst);
}

/// Global generation: bumping it logically clears every ring (owners
/// reset lazily on their next append; readers ignore stale rings).
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Global monotonic event sequence — the timeline merge key.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Events counted as dropped because a ring was full.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// One thread's bounded event buffer. Only the owning thread writes
/// `words` and publishes `len`; any thread may read the published
/// prefix (all words are atomics, so concurrent reads are safe — a
/// stale-generation check discards logically-invalid snapshots).
struct EventRing {
    /// Generation the current contents belong to.
    gen: AtomicU64,
    /// Published record count (release-stored by the owner).
    len: AtomicUsize,
    /// Flat `capacity × WORDS` word storage.
    words: Box<[AtomicU64]>,
}

impl EventRing {
    fn new(capacity: usize) -> EventRing {
        EventRing {
            gen: AtomicU64::new(GENERATION.load(Ordering::SeqCst)),
            len: AtomicUsize::new(0),
            words: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.words.len() / WORDS
    }

    /// Owner-only append. Returns `false` (and counts a drop) when full.
    fn push(&self, raw: &Raw) -> bool {
        // Lazy generation reset: a drain happened since our last append.
        let current_gen = GENERATION.load(Ordering::Relaxed);
        if self.gen.load(Ordering::Relaxed) != current_gen {
            // Order matters for racing readers: invalidate first (gen
            // change makes any in-flight snapshot of this ring discard
            // itself), then reset the length.
            self.gen.store(current_gen, Ordering::SeqCst);
            self.len.store(0, Ordering::SeqCst);
        }
        let len = self.len.load(Ordering::Relaxed);
        if len >= self.capacity() {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = len * WORDS;
        for (i, &w) in raw.iter().enumerate() {
            self.words[base + i].store(w, Ordering::Relaxed);
        }
        self.len.store(len + 1, Ordering::Release);
        true
    }

    /// Reads the published records, or `None` when the ring's contents
    /// are from another generation (or changed generation mid-read).
    fn snapshot(&self, want_gen: u64) -> Option<Vec<Raw>> {
        if self.gen.load(Ordering::SeqCst) != want_gen {
            return None;
        }
        let n = self.len.load(Ordering::Acquire).min(self.capacity());
        let mut out = Vec::with_capacity(n);
        for rec in 0..n {
            let base = rec * WORDS;
            let mut raw = [0u64; WORDS];
            for (i, slot) in raw.iter_mut().enumerate() {
                *slot = self.words[base + i].load(Ordering::Relaxed);
            }
            out.push(raw);
        }
        // If the owner reset the ring while we read, the data may mix
        // generations — discard.
        if self.gen.load(Ordering::SeqCst) != want_gen {
            return None;
        }
        Some(out)
    }
}

/// Default bound on the spill list (records). Scoped executor workers
/// live for one `taskwait` and flush their ring on exit, so over a long
/// traced run the spill — not the rings — is where the volume ends up;
/// past the bound further spilled records are counted as dropped, the
/// same graceful degradation as a full ring.
pub const DEFAULT_SPILL_CAPACITY: usize = 1 << 20;

static SPILL_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_SPILL_CAPACITY);

/// Sets the bound (in records) of the exited-thread spill list.
/// Records flushed beyond it are counted in [`events_dropped`].
///
/// # Panics
///
/// Panics if `records` is zero.
pub fn set_spill_capacity(records: usize) {
    assert!(records > 0, "event spill capacity must be at least 1");
    SPILL_CAPACITY.store(records, Ordering::SeqCst);
}

/// Registry of live rings plus the spill list of rings whose threads
/// exited (spilled records are tagged with their generation).
struct Collector {
    rings: Vec<Arc<EventRing>>,
    spill: Vec<(u64, Raw)>,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(Collector {
            rings: Vec::new(),
            spill: Vec::new(),
        })
    })
}

/// Thread-local handle: owns the Arc and flushes on thread exit.
struct RingHandle {
    ring: Arc<EventRing>,
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        // Flush this thread's records into the spill list so scoped
        // executor workers (one taskwait's lifetime) don't lose events,
        // and drop the ring from the live registry.
        let gen = self.ring.gen.load(Ordering::SeqCst);
        let records = self.ring.snapshot(gen).unwrap_or_default();
        let cap = SPILL_CAPACITY.load(Ordering::SeqCst);
        let mut c = collector().lock().expect("event collector poisoned");
        let room = cap.saturating_sub(c.spill.len());
        if records.len() > room {
            DROPPED.fetch_add((records.len() - room) as u64, Ordering::Relaxed);
        }
        c.spill
            .extend(records.into_iter().take(room).map(|r| (gen, r)));
        c.rings.retain(|r| !Arc::ptr_eq(r, &self.ring));
    }
}

thread_local! {
    static RING: RingHandle = {
        let ring = Arc::new(EventRing::new(RING_CAPACITY.load(Ordering::SeqCst)));
        collector()
            .lock()
            .expect("event collector poisoned")
            .rings
            .push(Arc::clone(&ring));
        RingHandle { ring }
    };
}

#[inline]
fn emit(label: &str, kind: EventKind) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let t_ns = crate::epoch().elapsed().as_nanos() as u64;
    let trace_id = crate::current_trace_id();
    let worker = current_tid();
    let raw = encode(seq, t_ns, worker, intern(label), trace_id, &kind);
    // When a request context is capturing on this thread, copy the raw
    // (alloc-free) record into its buffer; it is decoded when the
    // context drains, off the hot path. This is how exemplars carry a
    // request's task events without a global-ring scan.
    EVENT_CAPTURE.with(|c| {
        if let Some(buf) = c.borrow_mut().as_mut() {
            buf.push(raw);
        }
    });
    // Accessing a TLS with a destructor from within another TLS's
    // destructor can fail; count the event as dropped rather than
    // panicking in that (teardown-only) corner.
    if RING.try_with(|h| h.ring.push(&raw)).is_err() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

thread_local! {
    /// Per-thread task-event capture buffer (raw records; decoded at
    /// drain time); managed by [`TraceContext`](crate::TraceContext).
    static EVENT_CAPTURE: RefCell<Option<Vec<Raw>>> = const { RefCell::new(None) };
}

/// Swaps this thread's event-capture buffer, returning the previous one
/// (`TraceContext` uses this to nest contexts correctly).
pub(crate) fn capture_replace(new: Option<Vec<Raw>>) -> Option<Vec<Raw>> {
    EVENT_CAPTURE.with(|c| std::mem::replace(&mut *c.borrow_mut(), new))
}

/// Drains and decodes the events captured on this thread (empty when
/// not capturing).
pub(crate) fn capture_take() -> Vec<TaskEvent> {
    let raws: Vec<Raw> = EVENT_CAPTURE.with(|c| {
        c.borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    });
    raws.iter().map(decode).collect()
}

// ───────────────────────── public emission ─────────────────────────

/// Records one task-execution event (see [`EventKind::Task`]). A no-op
/// costing one relaxed atomic load when tracing is
/// [disabled](crate::enabled).
#[inline]
pub fn task_event(label: &str, task_id: u64, significance: f64, class: TaskClass, duration_ns: u64) {
    if crate::enabled() {
        emit(
            label,
            EventKind::Task {
                task_id,
                significance,
                class,
                duration_ns,
            },
        );
    }
}

/// Records one `taskwait` summary event (see [`EventKind::Taskwait`]).
/// A no-op when tracing is [disabled](crate::enabled).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn taskwait_event(
    label: &str,
    requested_ratio: f64,
    achieved_ratio: f64,
    accurate: u64,
    approximate: u64,
    dropped: u64,
    duration_ns: u64,
) {
    if crate::enabled() {
        emit(
            label,
            EventKind::Taskwait {
                requested_ratio,
                achieved_ratio,
                accurate,
                approximate,
                dropped,
                duration_ns,
            },
        );
    }
}

/// Records a sweep-point marker (see [`EventKind::Ratio`]). A no-op
/// when tracing is [disabled](crate::enabled).
#[inline]
pub fn ratio_event(label: &str, requested: f64) {
    if crate::enabled() {
        emit(label, EventKind::Ratio { requested });
    }
}

/// Records a coarse phase marker (see [`EventKind::Phase`]). A no-op
/// when tracing is [disabled](crate::enabled).
#[inline]
pub fn phase_event(label: &str, duration_ns: u64) {
    if crate::enabled() {
        emit(label, EventKind::Phase { duration_ns });
    }
}

/// Records one adaptive-controller decision (see
/// [`EventKind::RatioDecision`]). A no-op when tracing is
/// [disabled](crate::enabled).
#[inline]
pub fn ratio_decision_event(
    label: &str,
    step: u64,
    ratio_before: f64,
    ratio_after: f64,
    signal: f64,
    decision: DecisionClass,
) {
    if crate::enabled() {
        emit(
            label,
            EventKind::RatioDecision {
                step,
                ratio_before,
                ratio_after,
                signal,
                decision,
            },
        );
    }
}

// ───────────────────────── collection ─────────────────────────

fn collect(gen: u64) -> Vec<TaskEvent> {
    let c = collector().lock().expect("event collector poisoned");
    let mut raws: Vec<Raw> = c
        .spill
        .iter()
        .filter(|(g, _)| *g == gen)
        .map(|(_, r)| *r)
        .collect();
    for ring in &c.rings {
        if let Some(records) = ring.snapshot(gen) {
            raws.extend(records);
        }
    }
    drop(c);
    raws.sort_unstable_by_key(|r| r[0]);
    raws.iter().map(decode).collect()
}

/// Merges every thread's events into one timeline sorted by [`TaskEvent::seq`]
/// (rings keep their contents; see [`take_task_events`] to drain).
pub fn task_events_snapshot() -> Vec<TaskEvent> {
    collect(GENERATION.load(Ordering::SeqCst))
}

/// Drains and returns the merged timeline: the current events are
/// collected, then the global generation is bumped so every ring
/// logically empties (owners reset lazily on their next append).
pub fn take_task_events() -> Vec<TaskEvent> {
    let gen = GENERATION.load(Ordering::SeqCst);
    let events = collect(gen);
    GENERATION.fetch_add(1, Ordering::SeqCst);
    collector()
        .lock()
        .expect("event collector poisoned")
        .spill
        .retain(|(g, _)| *g > gen);
    events
}

/// Total events dropped so far because a thread's ring was full (or a
/// thread emitted during TLS teardown). Monotonic until [`reset`](crate::reset).
pub fn events_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// The current global event sequence watermark: events emitted from
/// now on have `seq >=` this value. Used by sessions to scope the
/// timeline to one run.
pub fn seq_watermark() -> u64 {
    SEQ.load(Ordering::SeqCst)
}

pub(crate) fn reset() {
    let gen = GENERATION.load(Ordering::SeqCst);
    GENERATION.fetch_add(1, Ordering::SeqCst);
    DROPPED.store(0, Ordering::Relaxed);
    collector()
        .lock()
        .expect("event collector poisoned")
        .spill
        .retain(|(g, _)| *g > gen);
}

/// Renders events as JSON Lines: one flat [`TaskEventRecord`] object
/// per line, in timeline order — `grep`/`jq`-friendly and
/// concatenation-safe across runs.
pub fn events_jsonl(events: &[TaskEvent]) -> String {
    records_jsonl(&events.iter().map(TaskEvent::to_record).collect::<Vec<_>>())
}

/// [`events_jsonl`] over already-flattened records (e.g. the
/// `task_events` embedded in a [`RunManifest`](crate::RunManifest)).
pub fn records_jsonl(records: &[TaskEventRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160);
    for r in records {
        out.push_str(&crate::json::to_string(r));
        out.push('\n');
    }
    out
}
