//! A minimal JSON backend over serde's data model, plus a small parser.
//!
//! The workspace vendors an offline `serde` shim (serialization half
//! only) and has no JSON crate; this module is the single shared
//! encoder behind every machine-readable artefact the workspace writes
//! (`RUN_<name>.json` manifests, `trace.json`, `scorpio-core`'s report
//! export). The [`parse`] half exists so tests can round-trip what the
//! writers produce; it accepts exactly the subset the writers emit
//! (objects, arrays, strings, finite numbers, `1e999` infinities,
//! booleans, `null`).

use serde::ser::{self, Serialize};
use std::fmt::Write as _;

/// Serialises any `Serialize` value to a JSON string.
///
/// # Panics
///
/// Panics on types outside the subset the workspace's records use
/// (maps with non-string keys, bytes).
///
/// ```
/// use serde::Serialize;
/// #[derive(Serialize)]
/// struct P { x: f64, name: String }
/// let json = scorpio_obs::json::to_string(&P { x: 1.5, name: "a".into() });
/// assert_eq!(json, r#"{"x":1.5,"name":"a"}"#);
/// ```
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    value
        .serialize(&mut Ser { out: &mut out })
        .expect("record serialisation cannot fail");
    out
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("null");
    } else if v > 0.0 {
        out.push_str("1e999"); // renders as Infinity in lenient parsers
    } else {
        out.push_str("-1e999");
    }
}

/// Serializer error (unreachable for the record types the workspace
/// serialises; required by the trait).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}
impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

#[derive(Debug)]
struct Ser<'a> {
    out: &'a mut String,
}

impl<'a, 'b> ser::Serializer for &'b mut Ser<'a> {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Seq<'a, 'b>;
    type SerializeTuple = Seq<'a, 'b>;
    type SerializeTupleStruct = Seq<'a, 'b>;
    type SerializeTupleVariant = Seq<'a, 'b>;
    type SerializeMap = Map<'a, 'b>;
    type SerializeStruct = Map<'a, 'b>;
    type SerializeStructVariant = Map<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), Error> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), Error> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        fmt_f64(self.out, v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        fmt_f64(self.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), Error> {
        escape_into(self.out, &v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), Error> {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<(), Error> {
        Err(ser::Error::custom("bytes unsupported"))
    }
    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Error> {
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), Error> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        escape_into(self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        variant: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        v.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Seq<'a, 'b>, Error> {
        self.out.push('[');
        Ok(Seq {
            ser: self,
            first: true,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Seq<'a, 'b>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(self, _: &'static str, len: usize) -> Result<Seq<'a, 'b>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        len: usize,
    ) -> Result<Seq<'a, 'b>, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Map<'a, 'b>, Error> {
        self.out.push('{');
        Ok(Map {
            ser: self,
            first: true,
        })
    }
    fn serialize_struct(self, _: &'static str, _: usize) -> Result<Map<'a, 'b>, Error> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Map<'a, 'b>, Error> {
        self.serialize_map(None)
    }
}

/// Sequence serializer state (implementation detail of [`to_string`]).
#[derive(Debug)]
pub struct Seq<'a, 'b> {
    ser: &'b mut Ser<'a>,
    first: bool,
}

impl ser::SerializeSeq for Seq<'_, '_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        v.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), Error> {
        self.ser.out.push(']');
        Ok(())
    }
}

macro_rules! seq_like {
    ($trait:ident, $method:ident) => {
        impl ser::$trait for Seq<'_, '_> {
            type Ok = ();
            type Error = Error;
            fn $method<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
                ser::SerializeSeq::serialize_element(self, v)
            }
            fn end(self) -> Result<(), Error> {
                ser::SerializeSeq::end(self)
            }
        }
    };
}
seq_like!(SerializeTuple, serialize_element);
seq_like!(SerializeTupleStruct, serialize_field);
seq_like!(SerializeTupleVariant, serialize_field);

/// Map/struct serializer state (implementation detail of [`to_string`]).
#[derive(Debug)]
pub struct Map<'a, 'b> {
    ser: &'b mut Ser<'a>,
    first: bool,
}

impl ser::SerializeMap for Map<'_, '_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
        key.serialize(&mut *self.ser)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Error> {
        self.ser.out.push(':');
        v.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), Error> {
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeStruct for Map<'_, '_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        ser::SerializeMap::serialize_key(self, key)?;
        ser::SerializeMap::serialize_value(self, v)
    }
    fn end(self) -> Result<(), Error> {
        ser::SerializeMap::end(self)
    }
}

impl ser::SerializeStructVariant for Map<'_, '_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        v: &T,
    ) -> Result<(), Error> {
        ser::SerializeStruct::serialize_field(self, key, v)
    }
    fn end(self) -> Result<(), Error> {
        self.ser.out.push('}');
        Ok(())
    }
}

// ───────────────────────────── parser ─────────────────────────────

/// A parsed JSON value (see [`parse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced for serialised NaN).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (including the `±1e999` infinity spellings).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keeping key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document (trailing whitespace allowed, nothing else
/// after the value).
///
/// ```
/// use scorpio_obs::json::{parse, Value};
/// let v = parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
/// assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
/// ```
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u escape at {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        Ok(Value::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y","d":null},"e":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Value::as_str),
            Some("x\"y")
        );
    }

    #[test]
    fn parses_infinity_spelling() {
        let v = parse("[1e999,-1e999]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(f64::INFINITY));
        assert_eq!(items[1].as_f64(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_and_parse_agree() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }
}
