//! Prometheus text-exposition rendering (format version 0.0.4) for the
//! metrics [`Registry`](crate::Registry) and any caller-supplied
//! gauges, plus a small validating parser the smoke tests and the
//! `metrics`-verb consumers use to check scrape output.
//!
//! Registry names like `serve.latency_ns.fisheye` are flattened to
//! exposition-legal names (`scorpio_serve_latency_ns_fisheye`);
//! dimensional data (per-kernel windows) is emitted with labels
//! instead, e.g. `scorpio_window_requests{kernel="dct",span="1m"}`.
//! Histograms keep their log₂ layout: bucket `i` becomes a cumulative
//! `_bucket` sample with `le="2^(i-31)"`, zero-count buckets elided.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::HISTOGRAM_BUCKETS;

/// Streaming renderer for one scrape; call the emit methods then
/// [`finish`](PrometheusRenderer::finish).
#[derive(Debug, Default)]
pub struct PrometheusRenderer {
    out: String,
    typed: BTreeSet<String>,
}

/// Flattens an internal metric name (`serve.latency_ns.dct`) into an
/// exposition-legal one (`scorpio_serve_latency_ns_dct`).
pub fn metric_name(raw: &str) -> String {
    let mut name = String::with_capacity(raw.len() + 8);
    name.push_str("scorpio_");
    for ch in raw.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            name.push(ch);
        } else {
            name.push('_');
        }
    }
    name
}

/// Formats a sample value per the exposition format (`+Inf` / `-Inf` /
/// `NaN` spellings, integers without a trailing `.0`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

impl PrometheusRenderer {
    /// An empty renderer.
    pub fn new() -> PrometheusRenderer {
        PrometheusRenderer::default()
    }

    fn type_line(&mut self, name: &str, kind: &str, help: &str) {
        if self.typed.insert(name.to_owned()) {
            if !help.is_empty() {
                let _ = writeln!(self.out, "# HELP {name} {help}");
            }
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for ch in v.chars() {
                    match ch {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        _ => self.out.push(ch),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// Emits one counter sample (TYPE line on first use of `name`).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.type_line(name, "counter", help);
        self.sample(name, labels, value);
    }

    /// Emits one gauge sample (TYPE line on first use of `name`).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.type_line(name, "gauge", help);
        self.sample(name, labels, value);
    }

    /// Emits a full Prometheus histogram from log₂ bucket counts laid
    /// out as in [`Histogram`](crate::Histogram): cumulative `_bucket`
    /// samples (zero-count buckets elided), `_sum` and `_count`.
    pub fn histogram_from_log2(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
        sum: f64,
        count: u64,
    ) {
        self.type_line(name, "histogram", help);
        let bucket_name = format!("{name}_bucket");
        let mut cum = 0u64;
        for (i, &cnt) in buckets.iter().take(HISTOGRAM_BUCKETS).enumerate() {
            if cnt == 0 {
                continue;
            }
            cum += cnt;
            let le = fmt_value((i as f64 - 31.0).exp2());
            let mut all = labels.to_vec();
            all.push(("le", &le));
            self.sample(&bucket_name, &all, cum as f64);
        }
        let mut all = labels.to_vec();
        all.push(("le", "+Inf"));
        self.sample(&bucket_name, &all, count as f64);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, count as f64);
    }

    /// Renders every counter and histogram in the global
    /// [`registry`](crate::registry) under flattened names.
    pub fn render_registry(&mut self) {
        for c in crate::registry().counters() {
            let name = metric_name(c.name());
            self.counter(&name, "scorpio counter (lifetime total)", &[], c.get() as f64);
        }
        for h in crate::registry().histograms() {
            let name = metric_name(h.name());
            self.histogram_from_log2(
                &name,
                "scorpio histogram (log2 buckets, lifetime)",
                &[],
                &h.bucket_counts(),
                h.sum(),
                h.count(),
            );
        }
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates `text` against the exposition grammar this module emits:
/// every non-empty line is either a `# HELP` / `# TYPE` comment or a
/// `name[{labels}] value` sample with a legal metric name, balanced
/// label quoting, and a parseable value; every sample's base name must
/// have a preceding `# TYPE`. Returns the number of samples, or a
/// message naming the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if name.is_empty()
                    || !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                {
                    return Err(format!("line {}: bad TYPE declaration", lineno + 1));
                }
                typed.insert(name.to_owned());
            } else if !rest.starts_with("HELP ") {
                return Err(format!("line {}: unknown comment form", lineno + 1));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {}: unclosed label block", lineno + 1))?;
                let labels = &line[i + 1..close];
                if labels.matches('"').count() % 2 != 0 {
                    return Err(format!("line {}: unbalanced label quotes", lineno + 1));
                }
                (&line[..i], line[close + 1..].trim())
            }
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(format!("line {}: sample without value", lineno + 1)),
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name_part.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {}: illegal metric name {name_part:?}", lineno + 1));
        }
        let ok_value = matches!(value_part, "NaN" | "+Inf" | "-Inf")
            || value_part.parse::<f64>().is_ok();
        if !ok_value {
            return Err(format!("line {}: unparseable value {value_part:?}", lineno + 1));
        }
        let base = name_part
            .strip_suffix("_bucket")
            .or_else(|| name_part.strip_suffix("_sum"))
            .or_else(|| name_part.strip_suffix("_count"))
            .filter(|b| typed.contains(*b))
            .unwrap_or(name_part);
        if !typed.contains(base) {
            return Err(format!("line {}: sample {name_part:?} without TYPE", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}
