//! Monotonic counters and log₂-bucketed histograms, aggregated
//! atomically across threads.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonic counter. Handles are `&'static`: once created through
/// the [`Registry`] a counter lives for the process, so hot paths can
/// cache the reference and skip the registry lookup.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Counter {
        Counter {
            name: name.to_owned(),
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` (relaxed; counters are totals, not synchronisation).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets a [`Histogram`] tracks. Bucket `i` holds
/// values `v` with `⌊log₂ v⌋ = i - 32`, so the representable range
/// spans `2⁻³² ..= 2³¹` with under- and overflow clamped to the edge
/// buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram of `f64` samples: per-bucket counts on a log₂
/// scale plus exact running count/sum/min/max. Non-positive and
/// non-finite samples land in bucket 0 and are tracked in
/// [`Histogram::non_positive`]; they still update the count (but not
/// sum/min/max, which summarise the positive finite mass).
#[derive(Debug)]
pub struct Histogram {
    name: String,
    count: AtomicU64,
    non_positive: AtomicU64,
    /// f64 bit patterns updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Adds `v` into an `AtomicU64` holding f64 bits.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Folds `v` into an f64-bits cell with `pick` (min or max).
fn fold_f64(cell: &AtomicU64, v: f64, pick: fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = pick(f64::from_bits(cur), v).to_bits();
        if new == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

impl Histogram {
    fn new(name: &str) -> Histogram {
        Histogram {
            name: name.to_owned(),
            count: AtomicU64::new(0),
            non_positive: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The histogram's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bucket index for a sample (see [`HISTOGRAM_BUCKETS`]).
    pub fn bucket_of(value: f64) -> usize {
        if value.is_finite() && value > 0.0 {
            (value.log2().floor() as i64 + 32).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
        } else {
            0
        }
    }

    /// Records one sample.
    pub fn record(&self, value: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() && value > 0.0 {
            self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            add_f64(&self.sum_bits, value);
            fold_f64(&self.min_bits, value, f64::min);
            fold_f64(&self.max_bits, value, f64::max);
        } else {
            self.non_positive.fetch_add(1, Ordering::Relaxed);
            self.buckets[0].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Samples that were zero, negative, or non-finite.
    pub fn non_positive(&self) -> u64 {
        self.non_positive.load(Ordering::Relaxed)
    }

    /// Sum of the positive finite samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest positive finite sample (`+∞` when none recorded).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits.load(Ordering::Relaxed))
    }

    /// Largest positive finite sample (`-∞` when none recorded).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Mean of the positive finite samples (`NaN` when none recorded).
    pub fn mean(&self) -> f64 {
        let positive = self.count().saturating_sub(self.non_positive());
        self.sum() / positive as f64
    }

    /// Current per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Interpolated `q`-quantile (`0.0 ..= 1.0`) of the positive finite
    /// samples, estimated from the log₂ buckets and clamped to the
    /// exact observed `[min, max]`. `NaN` when no positive finite
    /// sample was recorded or `q` is not in `[0, 1]`. The estimate is
    /// exact for single-sample buckets at the edges (clamping) and
    /// otherwise off by at most one bucket width (a factor of 2); the
    /// unit tests pin that bound.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.bucket_counts(), q, self.min(), self.max())
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.non_positive.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Interpolated `q`-quantile over log₂ bucket counts laid out as in
/// [`Histogram`] (bucket `i` spans `[2^(i-32), 2^(i-31))`). Walks the
/// cumulative mass to the bucket holding rank `q·total`, interpolates
/// linearly within it, then clamps into `[min, max]` when those bounds
/// are finite (pass `+∞`/`-∞` to skip clamping). `NaN` on empty mass
/// or `q` outside `[0, 1]`. Shared by [`Histogram::quantile`] and the
/// sliding-window aggregator, which stores the same bucket layout.
pub fn quantile_from_buckets(buckets: &[u64], q: f64, min: f64, max: f64) -> f64 {
    if !(0.0..=1.0).contains(&q) {
        return f64::NAN;
    }
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let rank = q * total as f64;
    let mut cum = 0.0f64;
    for (i, &cnt) in buckets.iter().enumerate() {
        if cnt == 0 {
            continue;
        }
        let cnt = cnt as f64;
        if cum + cnt >= rank {
            let lo = (i as f64 - 32.0).exp2();
            let hi = (i as f64 - 31.0).exp2();
            let frac = ((rank - cum) / cnt).clamp(0.0, 1.0);
            let mut v = lo + frac * (hi - lo);
            if min.is_finite() {
                v = v.max(min);
            }
            if max.is_finite() {
                v = v.min(max);
            }
            return v;
        }
        cum += cnt;
    }
    // Numerically unreachable (rank ≤ total), but fall back to max.
    if max.is_finite() {
        max
    } else {
        f64::NAN
    }
}

/// The process-wide metrics registry: named counters and histograms,
/// created on first use and alive for the process (instances are
/// leaked, so handles are `&'static` and lock-free after creation).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

/// The global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// The counter named `name`, created (at zero) on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        if let Some(c) = map.get(name) {
            return c;
        }
        let leaked: &'static Counter = Box::leak(Box::new(Counter::new(name)));
        map.insert(name.to_owned(), leaked);
        leaked
    }

    /// The histogram named `name`, created (empty) on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        if let Some(h) = map.get(name) {
            return h;
        }
        let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
        map.insert(name.to_owned(), leaked);
        leaked
    }

    /// Every registered counter, sorted by name.
    pub fn counters(&self) -> Vec<&'static Counter> {
        self.counters
            .lock()
            .expect("counter registry poisoned")
            .values()
            .copied()
            .collect()
    }

    /// Every registered histogram, sorted by name.
    pub fn histograms(&self) -> Vec<&'static Histogram> {
        self.histograms
            .lock()
            .expect("histogram registry poisoned")
            .values()
            .copied()
            .collect()
    }
}

/// Zeroes every registered metric (handles stay valid).
pub(crate) fn reset() {
    for c in registry().counters() {
        c.reset();
    }
    for h in registry().histograms() {
        h.reset();
    }
}
