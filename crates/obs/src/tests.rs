//! Unit tests for the observability crate.
//!
//! The sink and registry are process-global, so every test that
//! touches them serialises on [`lock`] and resets state first.

use std::sync::Mutex;

use crate::json::{parse, Value};
use crate::*;

/// Global test lock: obs state is process-wide, and the Rust test
/// harness runs tests on parallel threads.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[test]
fn disabled_span_records_nothing() {
    let _guard = lock();
    reset();
    disable();
    {
        let _s = span("ghost");
    }
    assert!(events_snapshot().is_empty());
    count("ghost_counter", 5);
    // The counter is created lazily only when enabled; look it up
    // directly to show nothing was counted either way.
    assert_eq!(registry().counter("ghost_counter").get(), 0);
}

#[test]
fn span_nesting_builds_paths_and_depths() {
    let _guard = lock();
    reset();
    enable();
    {
        let _a = span("outer");
        {
            let _b = span("middle");
            let _c = span("inner");
        }
        let _d = span("sibling");
    }
    disable();
    let events = take_events();
    let find = |path: &str| {
        events
            .iter()
            .find(|e| e.path == path)
            .unwrap_or_else(|| panic!("missing path {path}: {events:?}"))
    };
    assert_eq!(find("outer").depth, 0);
    assert_eq!(find("outer/middle").depth, 1);
    assert_eq!(find("outer/middle/inner").depth, 2);
    assert_eq!(find("outer/sibling").depth, 1);
    // Children close before parents, so they are recorded first.
    let pos = |path: &str| events.iter().position(|e| e.path == path).unwrap();
    assert!(pos("outer/middle/inner") < pos("outer/middle"));
    assert!(pos("outer/middle") < pos("outer"));
    // A child's interval is contained in its parent's.
    let outer = find("outer");
    let inner = find("outer/middle/inner");
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1);
}

#[test]
fn counters_aggregate_across_threads() {
    let _guard = lock();
    reset();
    enable();
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    count("agg_test_total", 1);
                }
                count("agg_test_batches", 1);
            });
        }
    });
    disable();
    assert_eq!(
        registry().counter("agg_test_total").get(),
        threads * per_thread
    );
    assert_eq!(registry().counter("agg_test_batches").get(), threads);
}

#[test]
fn histograms_aggregate_across_threads() {
    let _guard = lock();
    reset();
    enable();
    let threads = 4usize;
    let per_thread = 1_000usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Values 1.0 ..= 1000.0, identical per thread.
                    observe("hist_agg_test", (i + 1) as f64);
                    let _ = t;
                }
            });
        }
    });
    disable();
    let h = registry().histogram("hist_agg_test");
    assert_eq!(h.count(), (threads * per_thread) as u64);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 1000.0);
    let expected_sum = threads as f64 * (per_thread * (per_thread + 1)) as f64 / 2.0;
    // CAS-addition is exact here: every value is an integer ≤ 2^53.
    assert_eq!(h.sum(), expected_sum);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
}

#[test]
fn histogram_buckets_follow_log2() {
    assert_eq!(Histogram::bucket_of(1.0), 32);
    assert_eq!(Histogram::bucket_of(2.0), 33);
    assert_eq!(Histogram::bucket_of(3.9), 33);
    assert_eq!(Histogram::bucket_of(0.5), 31);
    assert_eq!(Histogram::bucket_of(0.0), 0);
    assert_eq!(Histogram::bucket_of(-1.0), 0);
    assert_eq!(Histogram::bucket_of(f64::NAN), 0);
    assert_eq!(Histogram::bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
}

#[test]
fn histogram_tracks_non_positive_separately() {
    let _guard = lock();
    reset();
    enable();
    observe("hist_np_test", 2.0);
    observe("hist_np_test", 0.0);
    observe("hist_np_test", f64::NAN);
    disable();
    let h = registry().histogram("hist_np_test");
    assert_eq!(h.count(), 3);
    assert_eq!(h.non_positive(), 2);
    assert_eq!(h.sum(), 2.0);
    assert_eq!(h.mean(), 2.0);
}

#[test]
fn manifest_aggregates_phases_counters_and_wallclock() {
    let _guard = lock();
    let session = RunSession::start("unit");
    {
        let _a = span("alpha");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _b = span("beta");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    {
        let _a = span("alpha"); // second event on the same path
        count("manifest_items", 7);
    }
    let manifest = session.manifest(3, &[("k".to_owned(), "v".to_owned())]);
    disable();

    assert_eq!(manifest.name, "unit");
    assert_eq!(manifest.threads, 3);
    assert_eq!(manifest.config[0].key, "k");
    let alpha = manifest
        .phases
        .iter()
        .find(|p| p.name == "alpha")
        .expect("alpha phase");
    assert_eq!(alpha.count, 2);
    assert_eq!(alpha.children.len(), 1);
    assert_eq!(alpha.children[0].name, "beta");
    assert!(alpha.total_ns >= alpha.children[0].total_ns);
    // Root phases on the session thread account for (almost) the whole
    // wall clock here, and can never exceed it.
    assert!(manifest.phase_total_ns <= manifest.wall_clock_ns);
    assert!(manifest.phase_total_ns > 0);
    assert!(manifest
        .counters
        .iter()
        .any(|c| c.name == "manifest_items" && c.value == 7));
    assert!(manifest.phase_names().contains(&"beta".to_owned()));
}

#[test]
fn manifest_json_round_trips_through_parser() {
    let _guard = lock();
    let session = RunSession::start("roundtrip");
    {
        let _a = span("phase_one");
        observe("rt_hist", 1.5);
    }
    let manifest = session.manifest(1, &[("quick".to_owned(), "true".to_owned())]);
    disable();

    let json = manifest.to_json();
    let v = parse(&json).expect("manifest JSON must parse");
    assert_eq!(v.get("name").and_then(Value::as_str), Some("roundtrip"));
    assert_eq!(v.get("threads").and_then(Value::as_f64), Some(1.0));
    let phases = v.get("phases").and_then(Value::as_arr).unwrap();
    assert!(phases
        .iter()
        .any(|p| p.get("name").and_then(Value::as_str) == Some("phase_one")));
    // Serialising the parsed-equal manifest again is byte-stable.
    assert_eq!(json, manifest.to_json());
}

#[test]
fn chrome_trace_is_valid_json_with_one_event_per_span() {
    let _guard = lock();
    reset();
    enable();
    {
        let _a = span("outer");
        let _b = span_owned("inner dynamic \"quoted\"".to_owned());
    }
    disable();
    let events = take_events();
    let trace = chrome_trace_json(&events);
    let v = parse(&trace).expect("chrome trace must parse");
    let list = v.get("traceEvents").and_then(Value::as_arr).unwrap();
    assert_eq!(list.len(), 2);
    for e in list {
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
        assert!(e.get("ts").and_then(Value::as_f64).is_some());
        assert!(e.get("dur").and_then(Value::as_f64).is_some());
        assert!(e.get("name").and_then(Value::as_str).is_some());
    }
    assert!(list
        .iter()
        .any(|e| e.get("name").and_then(Value::as_str) == Some("inner dynamic \"quoted\"")));
}

#[test]
fn reset_clears_events_and_zeroes_metrics() {
    let _guard = lock();
    reset();
    enable();
    {
        let _s = span("to_clear");
        count("reset_counter", 3);
        observe("reset_hist", 1.0);
    }
    disable();
    assert!(!events_snapshot().is_empty());
    reset();
    assert!(events_snapshot().is_empty());
    assert_eq!(registry().counter("reset_counter").get(), 0);
    assert_eq!(registry().histogram("reset_hist").count(), 0);
}
