//! Unit tests for the observability crate.
//!
//! The sink and registry are process-global, so every test that
//! touches them serialises on [`lock`] and resets state first.

use std::sync::Mutex;

use proptest::prelude::*;

use crate::json::{parse, Value};
use crate::*;

/// Global test lock: obs state is process-wide, and the Rust test
/// harness runs tests on parallel threads.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

#[test]
fn disabled_span_records_nothing() {
    let _guard = lock();
    reset();
    disable();
    {
        let _s = span("ghost");
    }
    assert!(events_snapshot().is_empty());
    count("ghost_counter", 5);
    // The counter is created lazily only when enabled; look it up
    // directly to show nothing was counted either way.
    assert_eq!(registry().counter("ghost_counter").get(), 0);
}

#[test]
fn span_nesting_builds_paths_and_depths() {
    let _guard = lock();
    reset();
    enable();
    {
        let _a = span("outer");
        {
            let _b = span("middle");
            let _c = span("inner");
        }
        let _d = span("sibling");
    }
    disable();
    let events = take_events();
    let find = |path: &str| {
        events
            .iter()
            .find(|e| e.path == path)
            .unwrap_or_else(|| panic!("missing path {path}: {events:?}"))
    };
    assert_eq!(find("outer").depth, 0);
    assert_eq!(find("outer/middle").depth, 1);
    assert_eq!(find("outer/middle/inner").depth, 2);
    assert_eq!(find("outer/sibling").depth, 1);
    // Children close before parents, so they are recorded first.
    let pos = |path: &str| events.iter().position(|e| e.path == path).unwrap();
    assert!(pos("outer/middle/inner") < pos("outer/middle"));
    assert!(pos("outer/middle") < pos("outer"));
    // A child's interval is contained in its parent's.
    let outer = find("outer");
    let inner = find("outer/middle/inner");
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns + 1);
}

#[test]
fn counters_aggregate_across_threads() {
    let _guard = lock();
    reset();
    enable();
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    count("agg_test_total", 1);
                }
                count("agg_test_batches", 1);
            });
        }
    });
    disable();
    assert_eq!(
        registry().counter("agg_test_total").get(),
        threads * per_thread
    );
    assert_eq!(registry().counter("agg_test_batches").get(), threads);
}

#[test]
fn histograms_aggregate_across_threads() {
    let _guard = lock();
    reset();
    enable();
    let threads = 4usize;
    let per_thread = 1_000usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Values 1.0 ..= 1000.0, identical per thread.
                    observe("hist_agg_test", (i + 1) as f64);
                    let _ = t;
                }
            });
        }
    });
    disable();
    let h = registry().histogram("hist_agg_test");
    assert_eq!(h.count(), (threads * per_thread) as u64);
    assert_eq!(h.min(), 1.0);
    assert_eq!(h.max(), 1000.0);
    let expected_sum = threads as f64 * (per_thread * (per_thread + 1)) as f64 / 2.0;
    // CAS-addition is exact here: every value is an integer ≤ 2^53.
    assert_eq!(h.sum(), expected_sum);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
}

#[test]
fn histogram_buckets_follow_log2() {
    assert_eq!(Histogram::bucket_of(1.0), 32);
    assert_eq!(Histogram::bucket_of(2.0), 33);
    assert_eq!(Histogram::bucket_of(3.9), 33);
    assert_eq!(Histogram::bucket_of(0.5), 31);
    assert_eq!(Histogram::bucket_of(0.0), 0);
    assert_eq!(Histogram::bucket_of(-1.0), 0);
    assert_eq!(Histogram::bucket_of(f64::NAN), 0);
    assert_eq!(Histogram::bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
}

#[test]
fn histogram_tracks_non_positive_separately() {
    let _guard = lock();
    reset();
    enable();
    observe("hist_np_test", 2.0);
    observe("hist_np_test", 0.0);
    observe("hist_np_test", f64::NAN);
    disable();
    let h = registry().histogram("hist_np_test");
    assert_eq!(h.count(), 3);
    assert_eq!(h.non_positive(), 2);
    assert_eq!(h.sum(), 2.0);
    assert_eq!(h.mean(), 2.0);
}

#[test]
fn manifest_aggregates_phases_counters_and_wallclock() {
    let _guard = lock();
    let session = RunSession::start("unit");
    {
        let _a = span("alpha");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _b = span("beta");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    {
        let _a = span("alpha"); // second event on the same path
        count("manifest_items", 7);
    }
    let manifest = session.manifest(3, &[("k".to_owned(), "v".to_owned())]);
    disable();

    assert_eq!(manifest.name, "unit");
    assert_eq!(manifest.threads, 3);
    assert_eq!(manifest.config[0].key, "k");
    let alpha = manifest
        .phases
        .iter()
        .find(|p| p.name == "alpha")
        .expect("alpha phase");
    assert_eq!(alpha.count, 2);
    assert_eq!(alpha.children.len(), 1);
    assert_eq!(alpha.children[0].name, "beta");
    assert!(alpha.total_ns >= alpha.children[0].total_ns);
    // Root phases on the session thread account for (almost) the whole
    // wall clock here, and can never exceed it.
    assert!(manifest.phase_total_ns <= manifest.wall_clock_ns);
    assert!(manifest.phase_total_ns > 0);
    assert!(manifest
        .counters
        .iter()
        .any(|c| c.name == "manifest_items" && c.value == 7));
    assert!(manifest.phase_names().contains(&"beta".to_owned()));
}

#[test]
fn manifest_json_round_trips_through_parser() {
    let _guard = lock();
    let session = RunSession::start("roundtrip");
    {
        let _a = span("phase_one");
        observe("rt_hist", 1.5);
    }
    let manifest = session.manifest(1, &[("quick".to_owned(), "true".to_owned())]);
    disable();

    let json = manifest.to_json();
    let v = parse(&json).expect("manifest JSON must parse");
    assert_eq!(v.get("name").and_then(Value::as_str), Some("roundtrip"));
    assert_eq!(v.get("threads").and_then(Value::as_f64), Some(1.0));
    let phases = v.get("phases").and_then(Value::as_arr).unwrap();
    assert!(phases
        .iter()
        .any(|p| p.get("name").and_then(Value::as_str) == Some("phase_one")));
    // Serialising the parsed-equal manifest again is byte-stable.
    assert_eq!(json, manifest.to_json());
}

#[test]
fn chrome_trace_is_valid_json_with_one_event_per_span() {
    let _guard = lock();
    reset();
    enable();
    {
        let _a = span("outer");
        let _b = span_owned("inner dynamic \"quoted\"".to_owned());
    }
    disable();
    let events = take_events();
    let trace = chrome_trace_json(&events);
    let v = parse(&trace).expect("chrome trace must parse");
    let list = v.get("traceEvents").and_then(Value::as_arr).unwrap();
    assert_eq!(list.len(), 2);
    for e in list {
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
        assert!(e.get("ts").and_then(Value::as_f64).is_some());
        assert!(e.get("dur").and_then(Value::as_f64).is_some());
        assert!(e.get("name").and_then(Value::as_str).is_some());
    }
    assert!(list
        .iter()
        .any(|e| e.get("name").and_then(Value::as_str) == Some("inner dynamic \"quoted\"")));
}

#[test]
fn reset_clears_events_and_zeroes_metrics() {
    let _guard = lock();
    reset();
    enable();
    {
        let _s = span("to_clear");
        count("reset_counter", 3);
        observe("reset_hist", 1.0);
        task_event("to_clear", 0, 0.5, TaskClass::Accurate, 10);
    }
    disable();
    assert!(!events_snapshot().is_empty());
    assert!(!task_events_snapshot().is_empty());
    reset();
    assert!(events_snapshot().is_empty());
    assert!(task_events_snapshot().is_empty());
    assert_eq!(registry().counter("reset_counter").get(), 0);
    assert_eq!(registry().histogram("reset_hist").count(), 0);
}

// ───────────────────────── task-event log ─────────────────────────

#[test]
fn disabled_task_event_records_nothing() {
    let _guard = lock();
    reset();
    disable();
    task_event("ghost", 1, 0.5, TaskClass::Accurate, 100);
    taskwait_event("ghost", 0.5, 0.6, 3, 1, 1, 500);
    ratio_event("ghost", 0.5);
    phase_event("ghost", 1);
    assert!(task_events_snapshot().is_empty());
    assert_eq!(events_dropped(), 0);
}

#[test]
fn task_events_merge_into_one_sequenced_timeline() {
    let _guard = lock();
    reset();
    enable();
    ratio_event("sweep", 0.5);
    task_event("g", 0, 0.9, TaskClass::Accurate, 120);
    task_event("g", 1, 0.4, TaskClass::Approx, 80);
    task_event("g", 2, 0.1, TaskClass::Dropped, 0);
    taskwait_event("g", 0.5, 2.0 / 3.0, 1, 1, 1, 400);
    disable();
    let events = take_task_events();
    assert_eq!(events.len(), 5);
    // Timeline is sorted by the global sequence; same-thread emission
    // order is preserved.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
    assert!(matches!(events[0].kind, EventKind::Ratio { requested } if requested == 0.5));
    match events[1].kind {
        EventKind::Task {
            task_id,
            significance,
            class,
            duration_ns,
        } => {
            assert_eq!(task_id, 0);
            assert_eq!(significance, 0.9);
            assert_eq!(class, TaskClass::Accurate);
            assert_eq!(duration_ns, 120);
        }
        ref k => panic!("expected task event, got {k:?}"),
    }
    assert_eq!(events[1].label, "g");
    match events[4].kind {
        EventKind::Taskwait {
            requested_ratio,
            achieved_ratio,
            accurate,
            approximate,
            dropped,
            duration_ns,
        } => {
            assert_eq!(requested_ratio, 0.5);
            assert!((achieved_ratio - 2.0 / 3.0).abs() < 1e-12);
            assert_eq!((accurate, approximate, dropped), (1, 1, 1));
            assert_eq!(duration_ns, 400);
        }
        ref k => panic!("expected taskwait event, got {k:?}"),
    }
    // The drain emptied the log.
    assert!(task_events_snapshot().is_empty());
    reset();
}

#[test]
fn task_events_survive_worker_thread_exit() {
    let _guard = lock();
    reset();
    enable();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                for i in 0..16u64 {
                    task_event("worker", t * 100 + i, 0.5, TaskClass::Accurate, 1);
                }
            });
        }
    });
    disable();
    // All 64 events collected although every emitting thread is gone.
    let events = take_task_events();
    assert_eq!(events.len(), 64);
    // Per-thread order is intact after the merge.
    for t in 0..4u64 {
        let ids: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Task { task_id, .. } if task_id / 100 == t => Some(task_id % 100),
                _ => None,
            })
            .collect();
        assert_eq!(ids, (0..16).collect::<Vec<_>>(), "thread {t} reordered");
    }
    reset();
}

#[test]
fn full_ring_counts_drops_instead_of_losing_silently() {
    let _guard = lock();
    reset();
    events::set_ring_capacity(8);
    enable();
    // A fresh thread gets a fresh (small) ring.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..20u64 {
                task_event("overflow", i, 0.5, TaskClass::Accurate, 1);
            }
        });
    });
    disable();
    events::set_ring_capacity(events::DEFAULT_RING_CAPACITY);
    let events = take_task_events();
    let kept: Vec<u64> = events
        .iter()
        .filter(|e| e.label == "overflow")
        .filter_map(|e| match e.kind {
            EventKind::Task { task_id, .. } => Some(task_id),
            _ => None,
        })
        .collect();
    // The first `capacity` events survive in order; the rest are counted.
    assert_eq!(kept, (0..8).collect::<Vec<_>>());
    assert_eq!(events_dropped(), 12);
    reset();
    assert_eq!(events_dropped(), 0);
}

#[test]
fn bounded_spill_counts_overflow_from_exited_threads() {
    let _guard = lock();
    reset();
    events::set_spill_capacity(10);
    enable();
    // Two sequential short-lived threads, 8 events each: the first
    // flushes 8 into the spill, the second has room for only 2.
    // Plain spawn+join (not thread::scope): join waits for the TLS
    // destructor that performs the flush, scope does not.
    for t in 0..2u64 {
        std::thread::spawn(move || {
            for i in 0..8u64 {
                task_event("spill", t * 10 + i, 0.5, TaskClass::Accurate, 1);
            }
        })
        .join()
        .expect("emitter thread");
    }
    disable();
    events::set_spill_capacity(events::DEFAULT_SPILL_CAPACITY);
    let events = take_task_events();
    assert_eq!(events.len(), 10);
    assert_eq!(events_dropped(), 6);
    reset();
}

#[test]
fn ratio_decision_events_round_trip_through_ring_and_jsonl() {
    let _guard = lock();
    reset();
    enable();
    ratio_decision_event("adapt", 0, 0.5, 0.64, 21.7, DecisionClass::Stepped);
    ratio_decision_event("adapt", 1, 0.64, 0.64, f64::NAN, DecisionClass::NonFinite);
    ratio_decision_event("adapt", 2, 0.64, 0.64, 25.3, DecisionClass::Converged);
    disable();
    let events = take_task_events();
    assert_eq!(events.len(), 3);
    match events[0].kind {
        EventKind::RatioDecision {
            step,
            ratio_before,
            ratio_after,
            signal,
            decision,
        } => {
            assert_eq!(step, 0);
            assert_eq!(ratio_before, 0.5);
            assert_eq!(ratio_after, 0.64);
            assert_eq!(signal, 21.7);
            assert_eq!(decision, DecisionClass::Stepped);
        }
        ref k => panic!("expected ratio_decision event, got {k:?}"),
    }
    // NaN signals survive the bit-level ring encoding.
    match events[1].kind {
        EventKind::RatioDecision {
            signal, decision, ..
        } => {
            assert!(signal.is_nan());
            assert_eq!(decision, DecisionClass::NonFinite);
        }
        ref k => panic!("expected ratio_decision event, got {k:?}"),
    }
    let record = events[2].to_record();
    assert_eq!(record.event, "ratio_decision");
    assert_eq!(record.step, Some(2));
    assert_eq!(record.decision, Some("converged"));
    let jsonl = events_jsonl(&events);
    let v = parse(jsonl.lines().last().unwrap()).expect("jsonl line parses");
    assert_eq!(v.get("event").and_then(Value::as_str), Some("ratio_decision"));
    assert_eq!(v.get("ratio_after").and_then(Value::as_f64), Some(0.64));
    assert_eq!(v.get("decision").and_then(Value::as_str), Some("converged"));
    reset();
}

#[test]
fn jsonl_export_is_one_parsable_object_per_line() {
    let _guard = lock();
    reset();
    enable();
    ratio_event("kernel \"x\"", 0.2);
    task_event("kernel \"x\"", 7, 0.25, TaskClass::Approx, 42);
    disable();
    let events = take_task_events();
    let jsonl = events_jsonl(&events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 2);
    let v = parse(lines[1]).expect("jsonl line parses");
    assert_eq!(v.get("event").and_then(Value::as_str), Some("task"));
    assert_eq!(v.get("label").and_then(Value::as_str), Some("kernel \"x\""));
    assert_eq!(v.get("task_id").and_then(Value::as_f64), Some(7.0));
    assert_eq!(v.get("class").and_then(Value::as_str), Some("approx"));
    assert_eq!(v.get("significance").and_then(Value::as_f64), Some(0.25));
    assert_eq!(v.get("duration_ns").and_then(Value::as_f64), Some(42.0));
    // Non-applicable fields serialise as null, keeping one flat schema.
    assert_eq!(v.get("achieved_ratio"), Some(&Value::Null));
    reset();
}

#[test]
fn back_to_back_sessions_report_deltas_not_totals() {
    let _guard = lock();
    reset();

    // Session A does 100 units of work and two spans.
    let a = RunSession::start("delta_a");
    {
        let _s = span("work_a");
        count("delta_items", 100);
        observe("delta_hist", 4.0);
        task_event("a", 0, 1.0, TaskClass::Accurate, 5);
    }
    let manifest_a = a.manifest(1, &[]);
    disable();

    // Session B — without any reset in between — does 30 more.
    let b = RunSession::start("delta_b");
    {
        let _s = span("work_b");
        count("delta_items", 30);
        observe("delta_hist", 8.0);
        task_event("b", 1, 1.0, TaskClass::Accurate, 5);
    }
    let manifest_b = b.manifest(1, &[]);
    disable();

    let counter = |m: &RunManifest, name: &str| {
        m.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert_eq!(counter(&manifest_a, "delta_items"), 100);
    // The regression this pins: B must see 30, not the global 130.
    assert_eq!(counter(&manifest_b, "delta_items"), 30);

    let hist = |m: &RunManifest, name: &str| {
        m.histograms
            .iter()
            .find(|h| h.name == name)
            .cloned()
            .expect("histogram present")
    };
    assert_eq!(hist(&manifest_b, "delta_hist").count, 1);
    assert_eq!(hist(&manifest_b, "delta_hist").sum, 8.0);

    // Span and event scoping: B only sees its own phase and task event.
    assert!(manifest_b.phase_names().contains(&"work_b".to_owned()));
    assert!(!manifest_b.phase_names().contains(&"work_a".to_owned()));
    assert_eq!(manifest_b.task_events.len(), 1);
    assert_eq!(manifest_b.task_events[0].label, "b");
    reset();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Multi-thread stress: with T threads each emitting K events, the
    /// merged timeline never loses or reorders events within a thread,
    /// and when rings overflow the losses are exactly counted.
    #[test]
    fn ring_never_loses_or_reorders_within_a_thread(
        threads in 1usize..6,
        per_thread in 1usize..400,
        capacity in 1usize..512,
    ) {
        let _guard = lock();
        reset();
        events::set_ring_capacity(capacity);
        enable();
        std::thread::scope(|scope| {
            for t in 0..threads {
                scope.spawn(move || {
                    for i in 0..per_thread {
                        task_event(
                            "prop",
                            (t * 1_000_000 + i) as u64,
                            0.5,
                            TaskClass::Approx,
                            1,
                        );
                    }
                });
            }
        });
        disable();
        events::set_ring_capacity(events::DEFAULT_RING_CAPACITY);
        let events = take_task_events();
        let dropped = events_dropped();
        prop_assert_eq!(
            events.len() as u64 + dropped,
            (threads * per_thread) as u64,
            "recorded + dropped must equal emitted"
        );
        // Per-thread: the recorded ids are a strictly increasing prefix
        // of that thread's emission order (bounded rings drop from the
        // tail, never from the middle).
        for t in 0..threads {
            let ids: Vec<u64> = events
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Task { task_id, .. }
                        if task_id / 1_000_000 == t as u64 =>
                    {
                        Some(task_id % 1_000_000)
                    }
                    _ => None,
                })
                .collect();
            let expected: Vec<u64> = (0..ids.len() as u64).collect();
            prop_assert_eq!(&ids, &expected, "thread {} lost or reordered", t);
            prop_assert!(ids.len() <= per_thread);
            prop_assert!(ids.len() <= capacity.max(1));
        }
        reset();
    }
}

#[test]
fn quantile_clamps_to_observed_extremes_and_stays_within_a_bucket() {
    let _guard = lock();
    reset();
    enable();
    let h = registry().histogram("q_test");
    let samples = [3.0, 5.0, 9.0, 17.0, 33.0, 120.0, 900.0, 1500.0];
    for s in samples {
        h.record(s);
    }
    // Edge quantiles clamp to the exact observed extremes.
    assert_eq!(h.quantile(0.0), 3.0);
    assert_eq!(h.quantile(1.0), 1500.0);
    // Interior quantiles come from log2 buckets: the estimate must sit
    // within one bucket (a factor of 2) of the true sample quantile.
    for (q, exact) in [(0.25, 5.0), (0.5, 17.0), (0.75, 120.0), (0.9, 900.0)] {
        let est = h.quantile(q);
        assert!(
            est >= exact / 2.0 && est <= exact * 2.0,
            "q{q}: estimate {est} not within a bucket of exact {exact}"
        );
    }
    // Degenerate cases.
    assert!(h.quantile(-0.1).is_nan());
    assert!(h.quantile(1.1).is_nan());
    assert!(registry().histogram("q_empty").quantile(0.5).is_nan());
    reset();
}

#[test]
fn quantile_from_buckets_is_monotone_in_q() {
    // Direct layout check, no registry: 4 samples in bucket 32
    // ([1, 2)), 4 in bucket 34 ([4, 8)).
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    buckets[32] = 4;
    buckets[34] = 4;
    let mut prev = f64::NEG_INFINITY;
    for i in 0..=10 {
        let v = quantile_from_buckets(&buckets, i as f64 / 10.0, f64::INFINITY, f64::NEG_INFINITY);
        assert!(v >= prev, "quantile must be monotone in q ({v} < {prev})");
        prev = v;
    }
    assert!(quantile_from_buckets(&buckets, 0.25, f64::INFINITY, f64::NEG_INFINITY) < 2.0);
    assert!(quantile_from_buckets(&buckets, 0.9, f64::INFINITY, f64::NEG_INFINITY) >= 4.0);
}

#[test]
fn prometheus_exposition_matches_golden_text() {
    use crate::expose::{validate_exposition, PrometheusRenderer};
    let mut r = PrometheusRenderer::new();
    r.counter("scorpio_requests_total", "Requests served.", &[], 42.0);
    r.gauge(
        "scorpio_window_rate_per_s",
        "Request rate.",
        &[("kernel", "maclaurin"), ("span", "10s")],
        1.5,
    );
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    buckets[32] = 2; // [1, 2)
    buckets[33] = 1; // [2, 4)
    r.histogram_from_log2(
        "scorpio_latency_us",
        "Latency.",
        &[],
        &buckets,
        5.5,
        3,
    );
    let text = r.finish();
    let golden = "\
# HELP scorpio_requests_total Requests served.
# TYPE scorpio_requests_total counter
scorpio_requests_total 42
# HELP scorpio_window_rate_per_s Request rate.
# TYPE scorpio_window_rate_per_s gauge
scorpio_window_rate_per_s{kernel=\"maclaurin\",span=\"10s\"} 1.5
# HELP scorpio_latency_us Latency.
# TYPE scorpio_latency_us histogram
scorpio_latency_us_bucket{le=\"2\"} 2
scorpio_latency_us_bucket{le=\"4\"} 3
scorpio_latency_us_bucket{le=\"+Inf\"} 3
scorpio_latency_us_sum 5.5
scorpio_latency_us_count 3
";
    assert_eq!(text, golden, "exposition drifted from the golden format");
    assert_eq!(validate_exposition(&text), Ok(7), "golden must validate");
}

#[test]
fn sliding_window_rotates_samples_out_by_span() {
    let w = SlidingWindow::new();
    let s = |latency_ns: u64| RequestSample {
        latency_ns,
        error: false,
        cache_hit: Some(true),
        requested_ratio: Some(0.7),
        achieved_ratio: Some(0.75),
    };
    w.record(5_000_000_000, &s(1000)); // at second 5
    // Still inside all three spans at second 8.
    assert_eq!(w.snapshot(8_000_000_000, 10).requests, 1);
    // At second 20 the 10s span has rotated it out; 1m still holds it.
    assert_eq!(w.snapshot(20_000_000_000, 10).requests, 0);
    assert_eq!(w.snapshot(20_000_000_000, 60).requests, 1);
    // At second 100 only the 5m span holds it.
    assert_eq!(w.snapshot(100_000_000_000, 60).requests, 0);
    assert_eq!(w.snapshot(100_000_000_000, 300).requests, 1);
    // Past the ring's 300s retention it is gone everywhere.
    assert_eq!(w.snapshot(400_000_000_000, 300).requests, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rotation correctness: for a monotone stream of samples, every
    /// span's snapshot must count exactly the samples whose second
    /// falls inside `(now - span, now]` — no double counting across
    /// bucket rotation, no leakage from evicted seconds.
    #[test]
    fn sliding_window_snapshot_matches_naive_model(
        mut secs in proptest::collection::vec(0u64..600, 1..80),
        errors in proptest::collection::vec(any::<bool>(), 80),
    ) {
        secs.sort_unstable();
        let now_s = *secs.last().unwrap() + 1;
        let w = SlidingWindow::new();
        for (i, &sec) in secs.iter().enumerate() {
            w.record(
                sec * 1_000_000_000 + 500,
                &RequestSample {
                    latency_ns: 1000 + i as u64,
                    error: errors[i % errors.len()],
                    cache_hit: Some(i % 2 == 0),
                    requested_ratio: Some(0.5),
                    achieved_ratio: Some(0.5),
                },
            );
        }
        for (_, span_secs) in WINDOW_SPANS {
            let snap = w.snapshot(now_s * 1_000_000_000, span_secs);
            let oldest = now_s.saturating_sub(span_secs - 1);
            // The ring retains WINDOW_SLOTS seconds: a second is still
            // counted only if no later sample evicted its slot. With a
            // monotone stream ending at now_s - 1, eviction cannot have
            // happened for any second inside the span, so the model is
            // a plain range filter.
            let expected = secs
                .iter()
                .filter(|&&sec| sec >= oldest && sec <= now_s)
                .count() as u64;
            prop_assert_eq!(
                snap.requests,
                expected,
                "span {}s: snapshot disagrees with model",
                span_secs
            );
            let expected_errors = secs
                .iter()
                .enumerate()
                .filter(|(i, &sec)| sec >= oldest && sec <= now_s && errors[i % errors.len()])
                .count() as u64;
            prop_assert_eq!(snap.errors, expected_errors);
        }
    }
}

#[test]
fn trace_context_stamps_and_captures_spans_and_events() {
    let _guard = lock();
    reset();
    enable();
    enable_detail();
    // Outside any context: no stamp.
    assert_eq!(current_trace_id(), 0);
    {
        let mut ctx = trace_context(0xbeef, true);
        assert_eq!(current_trace_id(), 0xbeef);
        {
            let _outer = span("req");
            let _inner = span_detail("step");
            task_event("traced", 7, 0.5, TaskClass::Accurate, 10);
        }
        // Nested context: inner id wins, then the outer is restored.
        {
            let _nested = trace_context(0xf00d, false);
            assert_eq!(current_trace_id(), 0xf00d);
        }
        assert_eq!(current_trace_id(), 0xbeef);

        let spans = ctx.take_spans();
        assert_eq!(spans.len(), 2, "both spans captured");
        assert!(spans.iter().all(|s| s.trace_id == 0xbeef));
        assert!(spans.iter().any(|s| s.path == "req/step"));
        let events = ctx.take_task_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, 0xbeef);
        assert_eq!(events[0].label, "traced");
        // Draining is destructive: a second take is empty.
        assert!(ctx.take_spans().is_empty());
        assert!(ctx.take_task_events().is_empty());
    }
    assert_eq!(current_trace_id(), 0);
    // The global sink got the same stamped spans.
    let sunk = events_snapshot();
    assert!(sunk.iter().all(|s| s.trace_id == 0xbeef));
    reset();
}

#[test]
fn detail_spans_gate_off_while_stage_spans_keep_recording() {
    let _guard = lock();
    reset();
    enable();
    disable_detail();
    {
        let _stage = span("stage");
        let _interior = span_detail("interior");
    }
    let spans = events_snapshot();
    assert!(spans.iter().any(|s| s.path == "stage"));
    assert!(
        !spans.iter().any(|s| s.name == "interior"),
        "detail span must not record while detail is off"
    );
    enable_detail();
    {
        let _interior = span_detail("interior");
    }
    assert!(events_snapshot().iter().any(|s| s.name == "interior"));
    reset();
}
