//! Offline shim for the subset of `proptest` the workspace uses.
//!
//! The build environment has no crate-registry access, so this in-repo
//! stand-in provides the pieces the test suites call: the [`proptest!`]
//! macro (`fn name(pat in strategy, ...) { body }` with an optional
//! `#![proptest_config(...)]`), [`Strategy`] for numeric ranges and
//! tuples, `prop_map`, and the `prop_assert!` family.
//!
//! Unlike upstream proptest there is no shrinking and no persisted
//! failure file: cases are drawn from a generator seeded by the test's
//! fully qualified name, so every run replays the same sequence and a
//! failure message always reproduces on the next run.

use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test's fully qualified name — the per-test seed.
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-block test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case, carrying the failure message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy: empty range");
        let t = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + t * (hi - lo)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical strategy, usable as `any::<T>()` (the shimmed
/// subset of upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` — `any::<bool>()`, `any::<u32>()`, …
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy behind `any::<bool>()`: a fair coin.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> RangeInclusive<$t> {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategies over collections: the shimmed subset of upstream
/// `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact length or a
    /// half-open range, mirroring upstream's `Into<SizeRange>`
    /// conversions.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> SizeRange {
            SizeRange { lo: len, hi: len }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`
    /// and whose length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64 + 1;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// cases (the `#[test]` attribute is written inside the block, matching
/// upstream proptest usage).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config is bound outside
/// the per-test repetition so it can be referenced in every test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::TestRng::seed($crate::test_seed(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(unreachable_code)]
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when `cond` does not hold. Without shrinking
/// or rejection accounting, a skipped case simply counts as passing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        // `if c {} else { .. }` rather than `if !c { .. }`: `c` may be a
        // partial-ord comparison, where the negated form changes meaning
        // for NaN (and trips clippy::neg_cmp_op_on_partial_ord).
        if $cond {
        } else {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_seed;

    fn pair_with_sum() -> impl Strategy<Value = (f64, f64, f64)> {
        (0.0f64..10.0, 0.0f64..10.0).prop_map(|(a, b)| (a, b, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0.1f64..10.0, n in 1usize..40, s in 0u64..1000) {
            prop_assert!((0.1..10.0).contains(&x), "x = {}", x);
            prop_assert!((1..40).contains(&n));
            prop_assert!(s < 1000);
        }

        #[test]
        fn mapped_tuples((a, b, sum) in pair_with_sum()) {
            prop_assert_eq!(sum, a + b);
            prop_assume!(sum > 0.0);
            prop_assert!(sum >= a && sum >= b);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(test_seed("x"), test_seed("x"));
        assert_ne!(test_seed("x"), test_seed("y"));
        let mut a = TestRng::seed(9);
        let mut b = TestRng::seed(9);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
