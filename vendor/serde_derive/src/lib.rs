//! Offline shim for `serde_derive`'s `#[derive(Serialize)]`.
//!
//! The build environment has no crate-registry access, so syn/quote are
//! unavailable; this macro hand-parses the token stream instead. It
//! supports exactly what the workspace derives on: plain structs with
//! named fields and no generics. Anything else panics at expansion time
//! with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a non-generic named-field struct by
/// emitting `serialize_struct` / `serialize_field` calls per field.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                // Scan forward to the brace-delimited field block. A `<`
                // right after the name would mean generics, which the
                // shim does not support.
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("derive(Serialize) shim: generic structs are unsupported")
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            panic!("derive(Serialize) shim: tuple/unit structs are unsupported")
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(g.stream());
                            break;
                        }
                        _ => {}
                    }
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("derive(Serialize) shim: only structs are supported")
            }
            _ => {}
        }
    }

    let name = name.expect("derive(Serialize): no struct found in input");
    let body = body.expect("derive(Serialize): no named-field block found");
    let fields = field_names(body);
    assert!(
        !fields.is_empty(),
        "derive(Serialize) shim: struct {name} has no named fields"
    );

    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         let mut __st = ::serde::ser::Serializer::serialize_struct(\
         __serializer, \"{name}\", {n})?;\n",
        n = fields.len()
    ));
    for f in &fields {
        out.push_str(&format!(
            "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
        ));
    }
    out.push_str("::serde::ser::SerializeStruct::end(__st)\n}\n}\n");
    out.parse()
        .expect("derive(Serialize) shim: generated impl failed to parse")
}

/// Extracts field names from the token stream inside a struct's braces.
///
/// Grammar handled per field: optional `#[...]` attributes, optional
/// `pub` / `pub(...)` visibility, then `name : Type`, fields separated
/// by top-level commas (commas inside `<...>` belong to the type).
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pending: Option<String> = None;
    let mut saw_colon = false;
    let mut angle_depth = 0i32;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && !saw_colon => {
                // Attribute: consume the following [...] group.
                iter.next();
            }
            TokenTree::Ident(id) if !saw_colon => {
                let s = id.to_string();
                if s == "pub" {
                    // Skip a visibility scope group like `pub(crate)`.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else {
                    pending = Some(s);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !saw_colon => {
                // A lone `:` ends the field name; `::` never appears
                // before the colon in a named-field declaration.
                saw_colon = true;
                if let Some(name) = pending.take() {
                    fields.push(name);
                }
            }
            TokenTree::Punct(p) if saw_colon && p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if saw_colon && p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if saw_colon && p.as_char() == ',' && angle_depth == 0 => {
                saw_colon = false;
            }
            _ => {}
        }
    }
    fields
}
