//! Offline shim for the subset of `crossbeam` the workspace declares.
//!
//! The build environment has no crate-registry access. Since Rust 1.63,
//! `std::thread::scope` provides the scoped-thread functionality the
//! runtime's worker pool needs, so this shim simply re-exports it under
//! crossbeam-compatible names.

/// Scoped threads (std-backed).
pub mod thread {
    pub use std::thread::{Scope, ScopedJoinHandle};

    /// Runs `f` with a [`Scope`] allowing borrowing spawns; joins every
    /// spawned thread before returning. Unlike `crossbeam::thread::scope`
    /// this never returns `Err` — panics propagate as panics — but the
    /// `Result` wrapper keeps call sites source-compatible.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Re-export mirroring `crossbeam::scope`.
pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|| data.iter().sum::<u64>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
