//! Offline shim for the subset of `criterion` the workspace's benches
//! use.
//!
//! The build environment has no crate-registry access, so this in-repo
//! stand-in keeps the bench sources compiling and producing useful
//! numbers: each benchmark is warmed up, then timed over enough
//! iterations to fill a short measurement window, and the median
//! per-iteration time across samples is printed. There are no HTML
//! reports, statistics beyond the median, or CLI filters.

use std::time::{Duration, Instant};

/// Identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms elapsed (at least once) to reach
        // steady state and estimate the per-call cost.
        let warmup_start = Instant::now();
        let mut warmup_calls = 0u64;
        loop {
            std::hint::black_box(routine());
            warmup_calls += 1;
            if warmup_start.elapsed() >= Duration::from_millis(20) {
                break;
            }
        }
        let per_call = warmup_start.elapsed().as_secs_f64() / warmup_calls as f64;

        // Aim each sample at ~2ms of work, bounded to keep fast and
        // slow benchmarks alike within a sane budget.
        let iters_per_sample = ((0.002 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.measured = Some(Duration::from_secs_f64(samples[samples.len() / 2]));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_named(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        match bencher.measured {
            Some(t) => println!("{}/{:<40} {:>12.1?}/iter", self.name, id, t),
            None => println!("{}/{:<40} (no measurement)", self.name, id),
        }
    }

    /// Runs the benchmark closure under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_named(id, f);
        self
    }

    /// Runs the benchmark closure with an input value under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.id.clone();
        self.run_named(&name, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; the shim's
    /// output is already printed per benchmark).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- bench group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (CLI arguments from `cargo bench`
/// are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
