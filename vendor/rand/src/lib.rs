//! Offline shim for the subset of `rand` 0.8 the workspace uses.
//!
//! The build environment has no crate-registry access, so this in-repo
//! stand-in provides `rngs::StdRng`, [`SeedableRng::seed_from_u64`] and
//! the [`Rng`] convenience methods (`gen`, `gen_range`, `gen_bool`) over
//! a SplitMix64 generator. Streams differ numerically from upstream
//! rand's ChaCha-based `StdRng` — every consumer in this workspace is
//! seed-deterministic and property-based, none pins exact values.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of `T` from a range type — the shim's analogue of
/// rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types samplable by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample of the type's standard distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The random-number-generator trait: one required source method plus
/// the convenience surface the workspace calls.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A sample of `T`'s standard distribution (`u64`: full range;
    /// `f64`: uniform on `[0, 1)`; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // Top-inclusive via one extra representable step; indistinguishable
        // from the half-open draw for analysis purposes.
        let t = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + t * (hi - lo)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}
impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64 — tiny state,
    /// passes BigCrush-level smoke statistics, fully seed-deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(5.0..120.0);
            assert!((5.0..120.0).contains(&f));
            let g = rng.gen_range(-0.05..=0.05);
            assert!((-0.05..=0.05).contains(&g));
            let i = rng.gen_range(-5i32..8);
            assert!((-5..8).contains(&i));
            let u = rng.gen_range(1usize..=9);
            assert!((1..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_samples_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
        let _: u64 = rng.gen();
    }
}
