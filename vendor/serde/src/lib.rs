//! Offline shim for the serialization half of `serde`'s data model.
//!
//! The build environment has no crate-registry access. The workspace's
//! only serde consumer is `scorpio-core`'s JSON exporter, which derives
//! [`Serialize`] on three plain-old-data records and implements
//! [`ser::Serializer`] by hand; this shim provides exactly that trait
//! surface — same method names, signatures and associated types as
//! upstream serde 1.x — plus `Serialize` impls for the primitive and
//! container types the records contain.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A value serialisable through serde's data model.
pub trait Serialize {
    /// Feeds this value into `serializer`.
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The serializer side of the data model.
pub mod ser {
    pub use super::Serialize;

    /// Errors a serializer may produce.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error carrying an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Compound serializer for sequences.
    pub trait SerializeSeq {
        type Ok;
        type Error: Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuples.
    pub trait SerializeTuple {
        type Ok;
        type Error: Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuple structs.
    pub trait SerializeTupleStruct {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for tuple enum variants.
    pub trait SerializeTupleVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for maps.
    pub trait SerializeMap {
        type Ok;
        type Error: Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for structs with named fields.
    pub trait SerializeStruct {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Compound serializer for struct enum variants.
    pub trait SerializeStructVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// A sink for serde's data model. All methods are required — the
    /// shim declares only the surface the workspace implements.
    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T)
            -> Result<Self::Ok, Self::Error>;
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }
}

macro_rules! primitive_impls {
    ($($t:ty => $method:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    )*};
}
primitive_impls! {
    bool => serialize_bool,
    i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32, i64 => serialize_i64,
    u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32, u64 => serialize_u64,
    f32 => serialize_f32, f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_slice<T: Serialize, S: ser::Serializer>(
    slice: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    use ser::SerializeSeq as _;
    let mut seq = serializer.serialize_seq(Some(slice.len()))?;
    for item in slice {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}
