//! Offline shim for the subset of `parking_lot` the workspace uses.
//!
//! The build environment has no crate-registry access, so this in-repo
//! stand-in wraps `std::sync` primitives behind parking_lot's
//! non-poisoning API surface. Only what the workspace actually calls is
//! provided (`Mutex::new`/`lock`, `RwLock::new`/`read`/`write`).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
